"""CI telemetry lint: expositions and benchmark JSON must parse cleanly.

Pure python, no third-party scraper or schema library:

* boots a minimal in-process :class:`PCORServer` (and a thread-manager
  router fleet) and runs :func:`repro.obs.validate_exposition` over their
  ``/v1/metrics/prometheus`` bodies — a malformed sample line would
  otherwise only surface when a real Prometheus scrape breaks in prod;
* validates every ``BENCH_*.json`` under ``benchmarks/results/`` and
  ``benchmarks/baselines/`` against the ``pcor-bench/1`` schema, and every
  line of ``trajectory.jsonl`` as parseable JSON.

Exit status is the number of problems (0 = clean), each printed on its
own line.  Run from the repo root:  PYTHONPATH=src python tools/lint_telemetry.py
"""

import importlib.util
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.obs import validate_exposition  # noqa: E402
from repro.server import PCORServer, ServerConfig  # noqa: E402

LINT_DATASET = {
    "source": "salary_reduced",
    "records": 300,
    "seed": 3,
    "budget": 10.0,
}


def load_harness():
    spec = importlib.util.spec_from_file_location(
        "pcor_bench_harness", REPO / "benchmarks" / "harness.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def lint_expositions() -> list:
    """Server and router-fleet Prometheus bodies through the linter."""
    problems = []

    config = ServerConfig.from_dict(
        {"server": {"port": 0}, "datasets": {"salary": LINT_DATASET}}
    )
    server = PCORServer(config)
    try:
        for issue in validate_exposition(server.prometheus_metrics()):
            problems.append(f"server exposition: {issue}")
    finally:
        server.shutdown()

    from repro.cluster import PCORRouter

    cluster = ServerConfig.from_dict(
        {
            "server": {"port": 0},
            "datasets": {
                "salary": LINT_DATASET,
                "other": {**LINT_DATASET, "seed": 9},
            },
            "cluster": {"workers": 2, "manager": "thread"},
        }
    )
    with PCORRouter(cluster) as router:
        for issue in validate_exposition(router.prometheus_metrics()):
            problems.append(f"router exposition: {issue}")
    return problems


def lint_bench_json() -> list:
    harness = load_harness()
    problems = []
    for directory in (harness.RESULTS_DIR, harness.BASELINES_DIR):
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("BENCH_*.json")):
            rel = path.relative_to(REPO)
            try:
                doc = json.loads(path.read_text())
            except ValueError as exc:
                problems.append(f"{rel}: invalid JSON: {exc}")
                continue
            problems.extend(f"{rel}: {p}" for p in harness.validate_bench(doc))
    trajectory = harness.TRAJECTORY
    if trajectory.is_file():
        for lineno, line in enumerate(
            trajectory.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                json.loads(line)
            except ValueError as exc:
                problems.append(
                    f"{trajectory.relative_to(REPO)}:{lineno}: "
                    f"invalid JSON line: {exc}"
                )
    return problems


def main() -> int:
    problems = lint_expositions() + lint_bench_json()
    for problem in problems:
        print(f"LINT: {problem}")
    if problems:
        print(f"telemetry lint: {len(problems)} problem(s)")
    else:
        print("telemetry lint: expositions and bench JSON are clean")
    return min(len(problems), 99)


if __name__ == "__main__":
    raise SystemExit(main())

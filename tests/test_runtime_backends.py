"""Execution-backend tests: the determinism contract and the registry.

The acceptance property of the parallel runtime: for a fixed seed, every
backend (serial / thread / process) at every worker count (1 / 2 / 4)
releases **bit-identical** results across all four samplers.  Process pools
are module-scoped so the spawn cost is paid once per worker count.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ExecutionError, SpecError
from repro.runtime import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    chunk_evenly,
    make_backend,
    plan_task_rngs,
    resolve_backend,
    rng_from_token,
)
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

ZSCORE_KWARGS = {"z_threshold": 2.5, "min_population": 8}
SAMPLERS = ["uniform", "random_walk", "dfs", "bfs"]


def spec_for(sampler: str, **overrides) -> PipelineSpec:
    base = dict(
        detector="zscore",
        detector_kwargs=ZSCORE_KWARGS,
        sampler=sampler,
        epsilon=0.5,
        n_samples=5,
    )
    base.update(overrides)
    return PipelineSpec(**base)


def release_batch(dataset, backend, record_id, sampler, seed):
    """One 3-request batch on a fresh engine over ``backend``."""
    engine = ReleaseEngine(dataset, backend=backend)
    gen = np.random.default_rng(seed)
    results = engine.submit_many(
        [
            ReleaseRequest(record_id, spec_for(sampler), seed=gen)
            for _ in range(3)
        ]
    )
    return [
        (
            r.context.bits,
            r.utility_value,
            r.n_candidates,
            r.algorithm,
            None if r.starting_context is None else r.starting_context.bits,
            r.stats.candidates_collected,
            r.stats.contexts_examined,
            r.stats.mechanism_invocations,
            r.stats.steps,
        )
        for r in results
    ]


@pytest.fixture(scope="module")
def process_pools():
    """One ProcessBackend per tested worker count, spawned once."""
    pools = {w: ProcessBackend(workers=w) for w in (1, 2, 4)}
    yield pools
    for pool in pools.values():
        pool.close()


@pytest.fixture(scope="module")
def serial_releases(mini_dataset, mini_outlier):
    """Reference results: serial backend, one entry per sampler."""
    return {
        sampler: release_batch(mini_dataset, SerialBackend(), mini_outlier, sampler, 77)
        for sampler in SAMPLERS
    }


class TestBitIdenticalReleases:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_thread_matches_serial(
        self, mini_dataset, mini_outlier, serial_releases, sampler, workers
    ):
        backend = ThreadBackend(workers=workers)
        try:
            got = release_batch(mini_dataset, backend, mini_outlier, sampler, 77)
        finally:
            backend.close()
        assert got == serial_releases[sampler]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_process_matches_serial(
        self, mini_dataset, mini_outlier, serial_releases, process_pools, sampler, workers
    ):
        got = release_batch(
            mini_dataset, process_pools[workers], mini_outlier, sampler, 77
        )
        assert got == serial_releases[sampler]

    def test_profile_fanout_does_not_change_matching(
        self, mini_dataset, mini_detector, mini_outlier
    ):
        """Forcing the inner profile fan-out through a thread pool yields the
        same profiles/matching answers as inline computation."""
        from repro.core.verification import OutlierVerifier

        plain = OutlierVerifier(mini_dataset, mini_detector)
        backend = ThreadBackend(workers=4)
        backend.min_profile_fanout = 1  # fan out even tiny batches
        fanned = OutlierVerifier(mini_dataset, mini_detector, backend=backend)
        try:
            batch = list(range(0, 512, 3))
            assert (
                fanned.is_matching_many(batch, mini_outlier).tolist()
                == plain.is_matching_many(batch, mini_outlier).tolist()
            )
            assert fanned.profiles(batch) == plain.profiles(batch)
        finally:
            backend.close()


class TestHypothesisBackendIdentity:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        sampler=st.sampled_from(SAMPLERS),
    )
    def test_all_backends_identical(
        self, mini_dataset, mini_outlier, process_pools, seed, sampler
    ):
        serial = release_batch(mini_dataset, SerialBackend(), mini_outlier, sampler, seed)
        thread = ThreadBackend(workers=2)
        try:
            assert (
                release_batch(mini_dataset, thread, mini_outlier, sampler, seed)
                == serial
            )
        finally:
            thread.close()
        assert (
            release_batch(mini_dataset, process_pools[2], mini_outlier, sampler, seed)
            == serial
        )


class TestSeedPlanning:
    def test_int_seed_matches_default_rng(self):
        (token,) = plan_task_rngs([123])
        assert (
            rng_from_token(token).integers(0, 1 << 30, 8).tolist()
            == np.random.default_rng(123).integers(0, 1 << 30, 8).tolist()
        )

    def test_shared_generator_spawns_per_occurrence(self):
        gen_a, gen_b = np.random.default_rng(5), np.random.default_rng(5)
        tokens = plan_task_rngs([gen_a, gen_a, gen_a])
        children = gen_b.spawn(3)
        for token, child in zip(tokens, children):
            assert (
                rng_from_token(token).integers(0, 1 << 30, 4).tolist()
                == child.integers(0, 1 << 30, 4).tolist()
            )
        # The parent advanced identically through either path.
        assert gen_a.bit_generator.seed_seq.n_children_spawned == 3

    def test_substreams_are_pairwise_distinct(self):
        gen = np.random.default_rng(0)
        draws = {
            tuple(rng_from_token(t).integers(0, 1 << 30, 4).tolist())
            for t in plan_task_rngs([gen] * 8 + list(range(8)))
        }
        assert len(draws) == 16

    def test_none_seed_is_fresh_entropy(self):
        a, b = plan_task_rngs([None, None])
        assert a.entropy != b.entropy

    def test_rejects_bad_seed(self):
        with pytest.raises(TypeError, match="seed must be"):
            plan_task_rngs(["nope"])


class TestRegistry:
    def test_builtins_registered(self):
        assert {"serial", "thread", "process"} <= set(available_backends())

    def test_make_backend_workers(self):
        backend = make_backend("thread", workers=3)
        try:
            assert backend.name == "thread" and backend.workers == 3
        finally:
            backend.close()

    def test_unknown_backend(self):
        with pytest.raises(ExecutionError, match="unknown backend"):
            make_backend("gpu")

    def test_resolve_instance_conflicting_workers(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend
        thread = ThreadBackend(workers=2)
        try:
            with pytest.raises(ExecutionError, match="conflicts"):
                resolve_backend(thread, workers=3)
        finally:
            thread.close()

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("PCOR_BACKEND", "thread")
        monkeypatch.setenv("PCOR_WORKERS", "2")
        backend = resolve_backend()
        try:
            assert backend.name == "thread" and backend.workers == 2
        finally:
            backend.close()

    def test_serial_is_never_parallel(self):
        assert SerialBackend(workers=8).workers == 1

    def test_workers_alone_implies_process(self, monkeypatch):
        """Asking for workers must never silently run serial."""
        monkeypatch.delenv("PCOR_BACKEND", raising=False)
        monkeypatch.delenv("PCOR_WORKERS", raising=False)
        backend = resolve_backend(None, workers=2)
        try:
            assert backend.name == "process" and backend.workers == 2
        finally:
            backend.close()
        assert resolve_backend(None, workers=1).name == "serial"
        assert resolve_backend(None).name == "serial"

    def test_chunk_evenly_preserves_order(self):
        items = list(range(11))
        chunks = chunk_evenly(items, 4)
        assert len(chunks) == 4
        assert [x for chunk in chunks for x in chunk] == items
        assert max(map(len, chunks)) - min(map(len, chunks)) <= 1
        assert chunk_evenly([], 4) == []
        assert chunk_evenly([1, 2], 8) == [[1], [2]]


class TestSpecBackendSelection:
    def test_spec_backend_field_validated(self):
        with pytest.raises(SpecError, match="unknown backend"):
            spec_for("bfs", backend="gpu")
        with pytest.raises(SpecError, match="workers must be"):
            spec_for("bfs", backend="thread", workers=0)

    def test_spec_backend_round_trips(self):
        spec = spec_for("bfs", backend="thread", workers=2)
        rehydrated = PipelineSpec.from_dict(spec.to_dict())
        assert rehydrated.backend == "thread" and rehydrated.workers == 2

    def test_spec_backend_drives_batch(self, mini_dataset, mini_outlier):
        spec = spec_for("bfs", backend="thread", workers=2)
        engine = ReleaseEngine(mini_dataset)
        try:
            gen = np.random.default_rng(4)
            results = engine.submit_many(
                [ReleaseRequest(mini_outlier, spec, seed=gen) for _ in range(3)]
            )
            assert len(results) == 3
            metrics = engine.metrics()
            assert metrics.release_tasks == 3  # ran on the spec's backend
        finally:
            engine.close()

    def test_spec_backend_identical_to_serial(self, mini_dataset, mini_outlier):
        def run(**spec_overrides):
            engine = ReleaseEngine(mini_dataset)
            try:
                gen = np.random.default_rng(21)
                return [
                    r.context.bits
                    for r in engine.submit_many(
                        [
                            ReleaseRequest(
                                mini_outlier,
                                spec_for("dfs", **spec_overrides),
                                seed=gen,
                            )
                            for _ in range(3)
                        ]
                    )
                ]
            finally:
                engine.close()

        assert run(backend="thread", workers=4) == run()

    def test_spec_workers_alone_implies_process(self, mini_dataset, mini_outlier):
        """A spec asking for workers must never silently run serial."""
        engine = ReleaseEngine(mini_dataset)
        try:
            backend = engine._backend_for(
                [ReleaseRequest(mini_outlier, spec_for("bfs", workers=2), seed=1)]
            )
            assert backend.name == "process" and backend.workers == 2
        finally:
            engine.close()

    def test_mixed_spec_backends_rejected(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset)
        requests = [
            ReleaseRequest(mini_outlier, spec_for("bfs", backend="thread"), seed=1),
            ReleaseRequest(mini_outlier, spec_for("bfs", backend="serial"), seed=2),
        ]
        with pytest.raises(ExecutionError, match="mixes execution backends"):
            engine.submit_many(requests)

    def test_explicit_engine_backend_wins(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset, backend="serial")
        gen = np.random.default_rng(4)
        results = engine.submit_many(
            [
                ReleaseRequest(
                    mini_outlier, spec_for("bfs", backend="thread"), seed=gen
                )
                for _ in range(2)
            ]
        )
        assert len(results) == 2
        assert engine.metrics().backend == "serial"


class TestEngineMetricsPhases:
    def test_phases_recorded(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset, backend="thread", workers=2)
        try:
            gen = np.random.default_rng(9)
            engine.submit_many(
                [
                    ReleaseRequest(mini_outlier, spec_for("bfs"), seed=gen)
                    for _ in range(3)
                ]
            )
            metrics = engine.metrics()
            assert metrics.backend == "thread"
            assert metrics.backend_workers == 2
            assert metrics.phase_tasks.get("release") == 3
            assert metrics.phase_wall_s.get("release", 0.0) > 0.0
            assert metrics.phase_wall_s.get("admission", -1.0) >= 0.0
            assert metrics.release_tasks == 3
            snapshot = metrics.to_dict()
            import json

            assert json.dumps(snapshot)
        finally:
            engine.close()

    def test_serial_batch_records_warm_phase(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset, backend="serial")
        gen = np.random.default_rng(9)
        engine.submit_many(
            [ReleaseRequest(mini_outlier, spec_for("bfs"), seed=gen) for _ in range(2)]
        )
        metrics = engine.metrics()
        assert metrics.phase_tasks.get("warm_profiles") == 2
        assert metrics.phase_tasks.get("release") == 2


class TestPCORFacadeBackends:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_release_many_matches_serial(
        self, mini_dataset, mini_detector, outlier_pair, backend, process_pools
    ):
        from repro.core.pcor import PCOR
        from repro.core.sampling import BFSSampler

        def run(chosen_backend):
            pcor = PCOR(
                mini_dataset,
                mini_detector,
                epsilon=0.2,
                sampler=BFSSampler(n_samples=5),
                backend=chosen_backend,
            )
            try:
                return [
                    r.context.bits
                    for r in pcor.release_many(outlier_pair, seed=13)
                ]
            finally:
                pcor.close()

        chosen = process_pools[2] if backend == "process" else "thread"
        assert run(chosen) == run(None)


@pytest.fixture(scope="module")
def outlier_pair(mini_reference):
    ids = mini_reference.outlier_records()
    assert len(ids) >= 2
    return ids[:2]

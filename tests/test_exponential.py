"""Unit tests for the Exponential mechanism."""

import math

import numpy as np
import pytest

from repro.exceptions import MechanismError, PrivacyBudgetError
from repro.mechanisms import ExponentialMechanism


class TestConstruction:
    def test_bad_epsilon(self):
        for eps in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(PrivacyBudgetError):
                ExponentialMechanism(eps)

    def test_bad_sensitivity(self):
        with pytest.raises(PrivacyBudgetError):
            ExponentialMechanism(0.1, sensitivity=0.0)

    def test_scale_paper_parameterisation(self):
        mech = ExponentialMechanism(0.1)
        assert mech.scale == 0.1
        assert mech.privacy_cost == pytest.approx(0.2)

    def test_scale_half_sensitivity(self):
        mech = ExponentialMechanism(0.1, sensitivity=2.0, half_sensitivity=True)
        assert mech.scale == pytest.approx(0.1 / 4.0)
        assert mech.privacy_cost == pytest.approx(0.1)

    def test_probability_ratio_bound(self):
        mech = ExponentialMechanism(0.1)
        assert mech.probability_ratio_bound() == pytest.approx(math.exp(0.2))


class TestProbabilities:
    def test_sum_to_one(self):
        mech = ExponentialMechanism(0.5)
        p = mech.probabilities([1.0, 2.0, 3.0])
        assert p.sum() == pytest.approx(1.0)

    def test_monotone_in_utility(self):
        mech = ExponentialMechanism(0.5)
        p = mech.probabilities([1.0, 2.0, 3.0])
        assert p[0] < p[1] < p[2]

    def test_exact_two_candidate_ratio(self):
        mech = ExponentialMechanism(0.7)
        p = mech.probabilities([0.0, 2.0])
        assert p[1] / p[0] == pytest.approx(math.exp(0.7 * 2.0))

    def test_shift_invariance(self):
        mech = ExponentialMechanism(0.3)
        a = mech.probabilities([1.0, 5.0, 9.0])
        b = mech.probabilities([1001.0, 1005.0, 1009.0])
        assert np.allclose(a, b)

    def test_neg_inf_gets_zero_probability(self):
        mech = ExponentialMechanism(0.5)
        p = mech.probabilities([1.0, -math.inf, 2.0])
        assert p[1] == 0.0
        assert p.sum() == pytest.approx(1.0)

    def test_huge_utilities_do_not_overflow(self):
        mech = ExponentialMechanism(1.0)
        p = mech.probabilities([1e6, 1e6 + 1.0])
        assert np.isfinite(p).all()
        assert p[1] / p[0] == pytest.approx(math.e)

    def test_all_neg_inf_raises(self):
        mech = ExponentialMechanism(0.5)
        with pytest.raises(MechanismError, match="-inf"):
            mech.probabilities([-math.inf, -math.inf])

    def test_nan_rejected(self):
        with pytest.raises(MechanismError, match="NaN"):
            ExponentialMechanism(0.5).probabilities([1.0, math.nan])

    def test_pos_inf_rejected(self):
        with pytest.raises(MechanismError):
            ExponentialMechanism(0.5).probabilities([1.0, math.inf])

    def test_empty_rejected(self):
        with pytest.raises(MechanismError):
            ExponentialMechanism(0.5).probabilities([])


class TestSelection:
    def test_select_respects_zero_probability(self, rng):
        mech = ExponentialMechanism(0.5)
        for _ in range(200):
            idx = mech.select_index([1.0, -math.inf, 1.0], rng)
            assert idx != 1

    def test_select_returns_candidate_and_index(self, rng):
        mech = ExponentialMechanism(0.5)
        candidate, idx = mech.select(["a", "b", "c"], [0.0, 0.0, 100.0], rng)
        assert candidate == "c"
        assert idx == 2

    def test_select_length_mismatch(self, rng):
        with pytest.raises(MechanismError, match="candidates"):
            ExponentialMechanism(0.5).select(["a"], [1.0, 2.0], rng)

    def test_gumbel_sampling_matches_softmax(self):
        """Empirical selection frequencies match the exact probabilities."""
        mech = ExponentialMechanism(0.8)
        utilities = [0.0, 1.0, 2.0, 3.0]
        expected = mech.probabilities(utilities)
        gen = np.random.default_rng(99)
        n = 20_000
        counts = np.zeros(4)
        for _ in range(n):
            counts[mech.select_index(utilities, gen)] += 1
        freqs = counts / n
        # Standard error ~ sqrt(p(1-p)/n) <= 0.0036; allow 5 sigma.
        assert np.all(np.abs(freqs - expected) < 0.02)

    def test_deterministic_with_seeded_rng(self):
        mech = ExponentialMechanism(0.5)
        a = [mech.select_index([1.0, 2.0, 3.0], np.random.default_rng(7)) for _ in range(10)]
        b = [mech.select_index([1.0, 2.0, 3.0], np.random.default_rng(7)) for _ in range(10)]
        assert a == b


class TestPrivacyProperty:
    def test_dp_ratio_bound_on_neighboring_utilities(self, rng):
        """The defining DP inequality on utility vectors differing by <= 1.

        For any two utility vectors u1, u2 with ||u1 - u2||_inf <= Delta_u
        over the same candidate set, every output probability changes by at
        most e^(2 * eps * Delta_u)  (Equation 5 of the paper).
        """
        eps = 0.3
        mech = ExponentialMechanism(eps, sensitivity=1.0)
        bound = math.exp(2.0 * eps)
        for _ in range(50):
            u1 = rng.uniform(0.0, 50.0, size=8)
            u2 = u1 + rng.uniform(-1.0, 1.0, size=8)  # Delta_u <= 1
            p1 = mech.probabilities(u1)
            p2 = mech.probabilities(u2)
            ratios = p1 / p2
            assert ratios.max() <= bound * (1 + 1e-9)
            assert ratios.min() >= 1.0 / bound * (1 - 1e-9)

    def test_expected_utility_monotone_in_epsilon(self):
        utilities = [0.0, 5.0, 10.0]
        values = [
            ExponentialMechanism(eps).expected_utility(utilities)
            for eps in (0.01, 0.1, 1.0, 10.0)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(10.0, abs=1e-3)

    def test_expected_utility_ignores_neg_inf(self):
        mech = ExponentialMechanism(0.5)
        val = mech.expected_utility([1.0, -math.inf])
        assert val == pytest.approx(1.0)

"""Property-based tests for the DP mechanisms."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.mechanisms import ExponentialMechanism, LaplaceMechanism

finite_utilities = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=20),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)

epsilons = st.floats(min_value=1e-3, max_value=5.0)


@given(utilities=finite_utilities, eps=epsilons)
@settings(max_examples=100)
def test_probabilities_form_distribution(utilities, eps):
    p = ExponentialMechanism(eps).probabilities(utilities)
    assert p.shape == utilities.shape
    assert (p >= 0.0).all()
    assert p.sum() == np.float64(1.0) or abs(p.sum() - 1.0) < 1e-9


@given(utilities=finite_utilities, eps=epsilons, shift=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
@settings(max_examples=100)
def test_probabilities_shift_invariant(utilities, eps, shift):
    mech = ExponentialMechanism(eps)
    a = mech.probabilities(utilities)
    b = mech.probabilities(utilities + shift)
    assert np.allclose(a, b, atol=1e-9)


@given(utilities=finite_utilities, eps=epsilons)
@settings(max_examples=100)
def test_argmax_utility_has_max_probability(utilities, eps):
    p = ExponentialMechanism(eps).probabilities(utilities)
    assert np.argmax(p) == np.argmax(utilities) or math.isclose(
        p[np.argmax(p)], p[np.argmax(utilities)], rel_tol=1e-9
    )


@given(
    utilities=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=2, max_value=12),
        elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    eps=st.floats(min_value=1e-2, max_value=2.0),
    perturbation=arrays(
        dtype=np.float64,
        shape=st.shared(st.integers(min_value=2, max_value=12), key="n"),
        elements=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    ),
)
@settings(max_examples=100)
def test_dp_inequality_for_bounded_perturbations(utilities, eps, perturbation):
    """Pointwise-bounded utility changes move probabilities by <= e^(2 eps)."""
    n = utilities.shape[0]
    pert = perturbation[:n] if perturbation.shape[0] >= n else np.resize(perturbation, n)
    mech = ExponentialMechanism(eps, sensitivity=1.0)
    p1 = mech.probabilities(utilities)
    p2 = mech.probabilities(utilities + pert)
    bound = math.exp(2.0 * eps)
    ratio = p1 / p2
    assert ratio.max() <= bound * (1 + 1e-7)
    assert ratio.min() >= (1 / bound) * (1 - 1e-7)


@given(
    eps=epsilons,
    sensitivity=st.floats(min_value=0.1, max_value=10.0),
    value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=100)
def test_laplace_noise_centred_and_scaled(eps, sensitivity, value, seed):
    mech = LaplaceMechanism(eps, sensitivity)
    gen = np.random.default_rng(seed)
    draws = np.array([mech.release(value, gen) for _ in range(200)])
    # Sample median of Laplace noise concentrates around the true value.
    assert abs(np.median(draws) - value) < 10.0 * mech.scale
    assert mech.scale == sensitivity / eps


@given(eps=epsilons, conf=st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=100)
def test_laplace_confidence_halfwidth_inverts_cdf(eps, conf):
    mech = LaplaceMechanism(eps)
    h = mech.confidence_halfwidth(conf)
    # P(|X| <= h) for Laplace(b) is 1 - exp(-h/b).
    assert 1.0 - math.exp(-h / mech.scale) == np.float64(conf) or math.isclose(
        1.0 - math.exp(-h / mech.scale), conf, rel_tol=1e-9
    )

"""Unit tests for privacy-budget accounting (the theorems' epsilon splits)."""

import pytest

from repro.exceptions import PrivacyBudgetError
from repro.mechanisms import PrivacyAccountant, epsilon_one_for, total_epsilon_for
from repro.mechanisms.accounting import budget_multiplier


class TestBudgetSplit:
    def test_direct_theorem_4_1(self):
        # total = 2 * eps1
        assert epsilon_one_for("direct", 0.2) == pytest.approx(0.1)

    def test_uniform_theorem_5_1(self):
        assert epsilon_one_for("uniform", 0.2) == pytest.approx(0.1)

    def test_random_walk_theorem_5_3(self):
        assert epsilon_one_for("random_walk", 0.2) == pytest.approx(0.1)

    def test_dfs_theorem_5_5(self):
        # total = (2n + 2) * eps1; Section 6.3: eps=0.2, n=50 -> eps1 ~ 0.002
        eps1 = epsilon_one_for("dfs", 0.2, n_samples=50)
        assert eps1 == pytest.approx(0.2 / 102)
        assert eps1 == pytest.approx(0.002, rel=0.05)

    def test_bfs_theorem_5_7(self):
        assert epsilon_one_for("bfs", 0.2, n_samples=50) == pytest.approx(0.2 / 102)

    def test_round_trip(self):
        for algo, n in [("direct", 0), ("uniform", 0), ("dfs", 25), ("bfs", 200)]:
            eps1 = epsilon_one_for(algo, 0.4, n)
            assert total_epsilon_for(algo, eps1, n) == pytest.approx(0.4)

    def test_multiplier_values(self):
        assert budget_multiplier("direct") == 2.0
        assert budget_multiplier("bfs", 50) == 102.0

    def test_case_insensitive(self):
        assert epsilon_one_for("BFS", 0.2, 50) == epsilon_one_for("bfs", 0.2, 50)

    def test_unknown_algorithm(self):
        with pytest.raises(PrivacyBudgetError, match="unknown"):
            epsilon_one_for("simulated_annealing", 0.2)

    def test_search_needs_n_samples(self):
        with pytest.raises(PrivacyBudgetError, match="n_samples"):
            epsilon_one_for("dfs", 0.2, n_samples=0)

    def test_bad_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            epsilon_one_for("direct", 0.0)
        with pytest.raises(PrivacyBudgetError):
            total_epsilon_for("direct", -0.1)


class TestAccountant:
    def test_charges_accumulate(self):
        acc = PrivacyAccountant(budget=1.0)
        acc.charge("a", 0.3)
        acc.charge("b", 0.4)
        assert acc.spent == pytest.approx(0.7)
        assert acc.remaining == pytest.approx(0.3)

    def test_overdraw_rejected(self):
        acc = PrivacyAccountant(budget=0.5)
        acc.charge("a", 0.4)
        with pytest.raises(PrivacyBudgetError, match="exceeds"):
            acc.charge("b", 0.2)

    def test_exact_budget_allowed(self):
        acc = PrivacyAccountant(budget=0.5)
        acc.charge("a", 0.25)
        acc.charge("b", 0.25)
        assert acc.remaining == pytest.approx(0.0)

    def test_float_dust_tolerated(self):
        # Splitting a budget into (2n+2) pieces must add back up cleanly.
        n = 50
        eps1 = epsilon_one_for("bfs", 0.2, n)
        acc = PrivacyAccountant(budget=0.2)
        for i in range(n + 1):
            acc.charge(f"exp-{i}", 2 * eps1)
        assert acc.remaining == pytest.approx(0.0, abs=1e-12)

    def test_ledger_copies(self):
        acc = PrivacyAccountant(budget=1.0)
        acc.charge("a", 0.1)
        ledger = acc.ledger()
        ledger.append(("tamper", 99.0))
        assert acc.spent == pytest.approx(0.1)

    def test_negative_charge_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyAccountant(budget=1.0).charge("a", -0.1)

    def test_bad_budget(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyAccountant(budget=0.0)


class TestPersistenceHooks:
    """The sink/restore/can_charge trio the durable server ledgers ride."""

    def test_sink_sees_admitted_charges_in_order(self):
        seen = []
        acc = PrivacyAccountant(budget=1.0, sink=lambda label, cost: seen.append((label, cost)))
        acc.charge("a", 0.1)
        acc.charge_many([("b", 0.2), ("c", 0.3)])
        assert seen == [("a", 0.1), ("b", 0.2), ("c", 0.3)]

    def test_sink_not_called_for_rejected_charges(self):
        seen = []
        acc = PrivacyAccountant(budget=0.1, sink=lambda *c: seen.append(c))
        with pytest.raises(PrivacyBudgetError):
            acc.charge("too-big", 0.5)
        assert seen == []

    def test_restore_bypasses_budget_check_and_sink(self):
        seen = []
        acc = PrivacyAccountant(budget=0.5, sink=lambda *c: seen.append(c))
        acc.restore([("old-1", 0.4), ("old-2", 0.4)])  # replay exceeds budget
        assert seen == []
        assert acc.spent == pytest.approx(0.8)
        assert acc.remaining == pytest.approx(-0.3)
        # Over-restored ledgers reject everything going forward.
        with pytest.raises(PrivacyBudgetError):
            acc.charge("new", 0.01)
        assert len(acc.ledger()) == 2

    def test_restore_rejects_corrupt_costs(self):
        acc = PrivacyAccountant(budget=1.0)
        for bad in (-0.1, float("nan"), float("inf")):
            with pytest.raises(PrivacyBudgetError, match="replayed"):
                acc.restore([("x", bad)])
        assert acc.spent == 0.0

    def test_can_charge_matches_charge_admission(self):
        acc = PrivacyAccountant(budget=0.5)
        acc.charge("a", 0.3)
        assert acc.can_charge(0.2)  # exactly fits (with dust tolerance)
        assert not acc.can_charge(0.2000001)
        assert not acc.can_charge(-0.1)
        assert not acc.can_charge(float("nan"))
        acc.charge("b", 0.2)
        assert not acc.can_charge(1e-6)

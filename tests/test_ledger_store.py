"""Durable ledger stores: append, fsync, crash replay, torn-tail recovery.

The privacy guarantee of the serving layer is exactly as strong as these
tests: a charge the store acknowledged must survive process death, and a
crash mid-append must cost at most the single unacknowledged record.
"""

import json
import threading

import pytest

from repro.exceptions import LedgerError
from repro.server.ledger import (
    LEDGER_FORMAT_VERSION,
    InMemoryLedgerStore,
    JsonlLedgerStore,
    LedgerStore,
)


def charge(tenant="alice", epsilon=0.1, label="r1"):
    return {"tenant": tenant, "dataset": "d", "label": label, "epsilon": epsilon}


class TestInMemoryLedgerStore:
    def test_round_trip_and_isolation(self):
        store = InMemoryLedgerStore()
        record = charge()
        store.append(record)
        replayed = store.replay()
        assert replayed == [record]
        # Mutating the replayed copy must not corrupt the store.
        replayed[0]["epsilon"] = 99.0
        assert store.replay()[0]["epsilon"] == 0.1
        assert len(store) == 1

    def test_satisfies_protocol(self):
        assert isinstance(InMemoryLedgerStore(), LedgerStore)
        assert isinstance(
            JsonlLedgerStore.__new__(JsonlLedgerStore), LedgerStore
        )


class TestJsonlLedgerStore:
    def test_append_persists_jsonl_lines(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        with JsonlLedgerStore(path) as store:
            store.append(charge(label="r1"))
            store.append(charge(tenant="bob", epsilon=0.2, label="r2"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["tenant"] == "alice"
        assert first["epsilon"] == 0.1
        assert first["v"] == LEDGER_FORMAT_VERSION

    def test_reopen_replays_in_order(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        with JsonlLedgerStore(path) as store:
            for i in range(5):
                store.append(charge(label=f"r{i}", epsilon=0.01 * (i + 1)))
        reopened = JsonlLedgerStore(path)
        labels = [r["label"] for r in reopened.replay()]
        assert labels == [f"r{i}" for i in range(5)]
        # Appends continue after the replayed tail.
        reopened.append(charge(label="r5"))
        reopened.close()
        assert len(JsonlLedgerStore(path).replay()) == 6

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "d.ledger.jsonl"
        with JsonlLedgerStore(path) as store:
            store.append(charge())
        assert path.exists()

    def test_torn_final_line_is_truncated(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        with JsonlLedgerStore(path) as store:
            store.append(charge(label="good1"))
            store.append(charge(label="good2"))
        # Simulate a crash mid-append: half a JSON object, no newline.
        with open(path, "ab") as fh:
            fh.write(b'{"tenant": "alice", "eps')
        store = JsonlLedgerStore(path)
        assert [r["label"] for r in store.replay()] == ["good1", "good2"]
        # The torn bytes are gone from disk, and appends resume cleanly.
        store.append(charge(label="good3"))
        store.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["label"] for l in lines] == [
            "good1",
            "good2",
            "good3",
        ]

    def test_complete_invalid_final_line_refuses_to_open(self, tmp_path):
        """A newline-terminated line was fully written (and possibly
        acknowledged) — dropping it would under-count spend, so recovery
        must refuse rather than truncate."""
        path = tmp_path / "d.ledger.jsonl"
        with JsonlLedgerStore(path) as store:
            store.append(charge(label="good"))
        with open(path, "ab") as fh:
            fh.write(b'{"complete-but-invalid": \n')
        with pytest.raises(LedgerError, match="corrupt"):
            JsonlLedgerStore(path)

    def test_torn_tail_on_empty_ledger(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        path.write_bytes(b'{"never finis')
        store = JsonlLedgerStore(path)
        assert store.replay() == []
        store.close()
        assert path.read_bytes() == b""

    def test_mid_file_corruption_refuses_to_open(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        with JsonlLedgerStore(path) as store:
            store.append(charge(label="good1"))
            store.append(charge(label="good2"))
        body = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"garbage-not-json\n" + body[1])
        with pytest.raises(LedgerError, match="corrupt"):
            JsonlLedgerStore(path)

    def test_non_object_record_refuses_to_open(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        path.write_text('[1, 2, 3]\n{"ok": true}\n')
        with pytest.raises(LedgerError, match="corrupt"):
            JsonlLedgerStore(path)

    def test_append_after_close_raises(self, tmp_path):
        store = JsonlLedgerStore(tmp_path / "d.ledger.jsonl")
        store.close()
        with pytest.raises(LedgerError, match="closed"):
            store.append(charge())

    def test_concurrent_appends_all_land(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        store = JsonlLedgerStore(path, fsync=False)
        barrier = threading.Barrier(4)

        def hammer(worker):
            barrier.wait()
            for i in range(50):
                store.append(charge(tenant=f"t{worker}", label=f"{worker}.{i}"))

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store.close()
        replayed = JsonlLedgerStore(path).replay()
        assert len(replayed) == 200
        # Every line is whole (no interleaved writes).
        assert {r["label"] for r in replayed} == {
            f"{w}.{i}" for w in range(4) for i in range(50)
        }

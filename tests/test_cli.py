"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data.csvio import read_csv


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "3", "--scale", "smoke"])
        assert args.command == "table"
        assert args.table_id == "3"
        assert args.scale == "smoke"

    def test_release_defaults(self):
        args = build_parser().parse_args(["release"])
        assert args.sampler == "bfs"
        assert args.epsilon == 0.2
        assert args.samples == 50

    def test_unknown_table_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerateData:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        rc = main(
            [
                "generate-data",
                "salary_reduced",
                "--records",
                "120",
                "--seed",
                "1",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert "wrote 120 records" in capsys.readouterr().out
        loaded = read_csv(out, metric="Salary")
        assert len(loaded) == 120


class TestBuildReference:
    def test_writes_reference_json(self, tmp_path, capsys):
        out = tmp_path / "ref.json"
        rc = main(
            [
                "build-reference",
                "--dataset",
                "salary_reduced",
                "--records",
                "300",
                "--detector",
                "zscore",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        assert "built reference" in capsys.readouterr().out


class TestRelease:
    def test_end_to_end_release(self, capsys):
        rc = main(
            [
                "release",
                "--dataset",
                "salary_reduced",
                "--records",
                "400",
                "--detector",
                "lof",
                "--sampler",
                "bfs",
                "--samples",
                "8",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "released context" in out
        assert "epsilon" in out
        assert "utility ratio" in out


class TestSpecsCommand:
    def test_lists_all_registries(self, capsys):
        rc = main(["specs"])
        assert rc == 0
        out = capsys.readouterr().out
        for section in ("detectors:", "samplers:", "utilities:"):
            assert section in out
        for name in ("lof", "zscore", "bfs", "uniform", "population_size", "overlap"):
            assert name in out
        assert "starting context" in out  # registry metadata is surfaced


class TestReleaseJson:
    def test_json_output_parses(self, capsys):
        rc = main(
            [
                "release",
                "--dataset", "salary_reduced",
                "--records", "400",
                "--detector", "lof",
                "--samples", "8",
                "--seed", "3",
                "--json",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["algorithm"] == "bfs"
        assert payload["context"]["bitstring"]
        assert payload["epsilon_total"] == pytest.approx(0.2)


class TestReleaseSpecFile:
    def test_spec_file_drives_pipeline(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "detector": "zscore",
                    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
                    "sampler": "uniform",
                    "utility": "population_size",
                    "epsilon": 0.3,
                    "n_samples": 8,
                }
            )
        )
        rc = main(
            [
                "release",
                "--dataset", "salary_reduced",
                "--records", "400",
                "--seed", "3",
                "--spec", str(spec_path),
                "--json",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["algorithm"] == "uniform"
        assert payload["epsilon_total"] == pytest.approx(0.3)

    def test_bad_spec_file_fails_cleanly(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"detector": "quantum"}))
        rc = main(["release", "--spec", str(spec_path)])
        assert rc == 1
        assert "unknown detector" in capsys.readouterr().err


class TestLocalityCommand:
    def test_prints_table(self, capsys):
        rc = main(["locality", "--scale", "smoke", "--seed", "0"])
        assert rc == 0
        assert "Locality" in capsys.readouterr().out


class TestReleaseWithoutReference:
    def test_full_schema_uses_reference_free_path(self, capsys):
        """salary_full's 33M-context space must trigger the no-reference path."""
        rc = main(
            [
                "release",
                "--dataset",
                "salary_full",
                "--records",
                "3000",
                "--detector",
                "lof",
                "--sampler",
                "bfs",
                "--samples",
                "10",
                "--seed",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "without a reference file" in out
        assert "released context" in out


class TestBenchCommand:
    def test_list_shows_registry(self, capsys):
        rc = main(["bench", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("service_overhead", "obs_overhead", "router_overhead"):
            assert name in out
            assert "[quick]" in out

    def test_unknown_bench_fails_cleanly(self, capsys):
        rc = main(["bench", "no_such_bench"])
        assert rc == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_parser_accepts_flags(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--strict", "--bench-scale", "smoke"]
        )
        assert args.quick and args.strict
        assert args.bench_scale == "smoke"
        assert args.benches == []

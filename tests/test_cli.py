"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.csvio import read_csv


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "3", "--scale", "smoke"])
        assert args.command == "table"
        assert args.table_id == "3"
        assert args.scale == "smoke"

    def test_release_defaults(self):
        args = build_parser().parse_args(["release"])
        assert args.sampler == "bfs"
        assert args.epsilon == 0.2
        assert args.samples == 50

    def test_unknown_table_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerateData:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        rc = main(
            [
                "generate-data",
                "salary_reduced",
                "--records",
                "120",
                "--seed",
                "1",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert "wrote 120 records" in capsys.readouterr().out
        loaded = read_csv(out, metric="Salary")
        assert len(loaded) == 120


class TestBuildReference:
    def test_writes_reference_json(self, tmp_path, capsys):
        out = tmp_path / "ref.json"
        rc = main(
            [
                "build-reference",
                "--dataset",
                "salary_reduced",
                "--records",
                "300",
                "--detector",
                "zscore",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        assert "built reference" in capsys.readouterr().out


class TestRelease:
    def test_end_to_end_release(self, capsys):
        rc = main(
            [
                "release",
                "--dataset",
                "salary_reduced",
                "--records",
                "400",
                "--detector",
                "lof",
                "--sampler",
                "bfs",
                "--samples",
                "8",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "released context" in out
        assert "epsilon" in out
        assert "utility ratio" in out


class TestLocalityCommand:
    def test_prints_table(self, capsys):
        rc = main(["locality", "--scale", "smoke", "--seed", "0"])
        assert rc == 0
        assert "Locality" in capsys.readouterr().out


class TestReleaseWithoutReference:
    def test_full_schema_uses_reference_free_path(self, capsys):
        """salary_full's 33M-context space must trigger the no-reference path."""
        rc = main(
            [
                "release",
                "--dataset",
                "salary_full",
                "--records",
                "3000",
                "--detector",
                "lof",
                "--sampler",
                "bfs",
                "--samples",
                "10",
                "--seed",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "without a reference file" in out
        assert "released context" in out

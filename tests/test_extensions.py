"""Tests for extensions beyond the paper's core algorithms."""

import numpy as np
import pytest

from repro.core.sampling import RandomWalkSampler
from repro.core.starting import starting_context_from_reference
from repro.core.utility import PopulationSizeUtility
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms.accounting import group_privacy_epsilon
from repro.mechanisms.exponential import ExponentialMechanism


class TestGroupPrivacy:
    def test_linear_scaling(self):
        assert group_privacy_epsilon(0.2, 1) == pytest.approx(0.2)
        assert group_privacy_epsilon(0.2, 5) == pytest.approx(1.0)
        assert group_privacy_epsilon(0.2, 25) == pytest.approx(5.0)

    def test_paper_group_distances(self):
        # Section 6.7 evaluates Delta-D in {1, 5, 10, 25}.
        budgets = [group_privacy_epsilon(0.2, k) for k in (1, 5, 10, 25)]
        assert budgets == sorted(budgets)

    def test_validation(self):
        with pytest.raises(PrivacyBudgetError):
            group_privacy_epsilon(0.0, 1)
        with pytest.raises(PrivacyBudgetError):
            group_privacy_epsilon(0.2, 0)


class TestRandomWalkRestart:
    @pytest.fixture()
    def setup(self, mini_verifier, mini_reference, mini_outlier):
        start = starting_context_from_reference(
            mini_reference, mini_outlier, np.random.default_rng(0)
        )
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        mech = ExponentialMechanism(0.1)
        return mini_verifier, mini_outlier, start.bits, utility, mech

    def test_restart_collects_at_least_as_many(self, setup):
        verifier, rid, start_bits, utility, mech = setup
        plain_sizes, restart_sizes = [], []
        for seed in range(10):
            plain = RandomWalkSampler(n_samples=20).sample(
                verifier, utility, rid, start_bits, mech, np.random.default_rng(seed)
            )
            restart = RandomWalkSampler(n_samples=20, restart_on_stuck=True).sample(
                verifier, utility, rid, start_bits, mech, np.random.default_rng(seed)
            )
            plain_sizes.append(len(plain.candidates))
            restart_sizes.append(len(restart.candidates))
        assert np.mean(restart_sizes) >= np.mean(plain_sizes)

    def test_restart_candidates_still_matching(self, setup):
        verifier, rid, start_bits, utility, mech = setup
        run = RandomWalkSampler(n_samples=15, restart_on_stuck=True).sample(
            verifier, utility, rid, start_bits, mech, np.random.default_rng(3)
        )
        for bits in run.candidates:
            assert verifier.is_matching(bits, rid)

    def test_default_is_paper_fidelity(self):
        assert RandomWalkSampler().restart_on_stuck is False

    def test_restart_terminates_when_start_is_isolated(
        self, mini_verifier, mini_reference, mini_dataset
    ):
        """A COE component of size 1: restarting must not loop forever."""
        # Find an outlier whose some matching context has no matching
        # neighbours; simplest robust construction: use a record whose COE
        # is a single context, if one exists.
        single = None
        for rid in mini_reference.outlier_records():
            matching = mini_reference.matching_contexts(rid)
            if len(matching) == 1:
                single = (rid, matching[0])
                break
        if single is None:
            pytest.skip("no single-context outlier in the micro dataset")
        rid, bits = single
        utility = PopulationSizeUtility(mini_verifier, rid)
        mech = ExponentialMechanism(0.1)
        run = RandomWalkSampler(n_samples=10, restart_on_stuck=True).sample(
            mini_verifier, utility, rid, bits, mech, np.random.default_rng(0)
        )
        assert run.candidates == [bits]

"""API-surface hygiene: the documented public interface stays importable."""

import inspect

import pytest

import repro


class TestAll:
    def test_everything_in_all_exists(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing symbol {name!r}"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    @pytest.mark.parametrize(
        "name",
        [
            "PCOR",
            "DirectPCOR",
            "UniformSampler",
            "RandomWalkSampler",
            "DFSSampler",
            "BFSSampler",
            "GrubbsDetector",
            "HistogramDetector",
            "LOFDetector",
            "ExponentialMechanism",
            "LaplaceMechanism",
            "ReferenceFile",
            "COEEnumerator",
            "OutlierVerifier",
            "Context",
            "ContextSpace",
            "ContextGraph",
            "Schema",
            "Dataset",
            "BinSpec",
            "ReleaseSession",
        ],
    )
    def test_core_classes_documented(self, name):
        obj = getattr(repro, name)
        assert inspect.isclass(obj)
        assert obj.__doc__, f"{name} has no docstring"

    def test_public_functions_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj):
                assert obj.__doc__, f"function {name} has no docstring"

    def test_exceptions_exported(self):
        assert issubclass(repro.SamplingError, repro.ReproError)


class TestModuleDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.schema",
            "repro.data",
            "repro.data.table",
            "repro.data.masks",
            "repro.data.generators",
            "repro.data.binning",
            "repro.context",
            "repro.context.context",
            "repro.context.space",
            "repro.context.graph",
            "repro.outliers",
            "repro.mechanisms",
            "repro.mechanisms.exponential",
            "repro.mechanisms.ocdp",
            "repro.mechanisms.accounting",
            "repro.core",
            "repro.core.pcor",
            "repro.core.verification",
            "repro.core.enumeration",
            "repro.core.reference",
            "repro.experiments",
            "repro.analysis",
            "repro.cli",
        ],
    )
    def test_module_has_docstring(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module_name} lacks a module docstring"
        )

"""Sharded serving tests: hashing, fleet supervision, router proxying.

Runs real in-process clusters (``manager = "thread"``: router + workers as
threads, full HTTP in between) — fast and deterministic, with worker
"crashes" simulated by aborting the worker's server without drain.  The
subprocess deployment path is covered by ``tests/test_cluster_smoke.py``.
"""

import http.client
import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import (
    ConsistentHashRing,
    PCORRouter,
    shard_assignments,
    shard_config,
    stable_hash,
)
from repro.exceptions import (
    PrivacyBudgetError,
    ServerError,
    ShardUnavailableError,
    SpecError,
)
from repro.server import PCORClient, PCORServer, ServerConfig

RECORDS = 300
SEED = 3
OUTLIER_RECORD = 207  # verified matching record of salary_reduced(300, seed=3)

SPEC = {
    "detector": "zscore",
    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
    "sampler": "uniform",
    "epsilon": 0.1,
    "n_samples": 3,
}

#: Several datasets so two shards both end up owning at least one.
DATASETS = {
    "salary": {
        "source": "salary_reduced",
        "records": RECORDS,
        "seed": SEED,
        "budget": 100.0,
        "tenant_budget": 0.25,
    },
    "other": {"source": "salary_reduced", "records": 200, "seed": 9},
    "third": {"source": "salary_reduced", "records": 150, "seed": 11},
}


def cluster_config(tmp_path=None, workers=2, respawn=True) -> ServerConfig:
    body = {
        "server": {"port": 0},
        "datasets": DATASETS,
        "cluster": {
            "workers": workers,
            "manager": "thread",
            "heartbeat_interval_s": 0.2,
            "heartbeat_timeout_s": 0.8,
            "respawn": respawn,
        },
    }
    if tmp_path is not None:
        body["server"].update(
            {"ledger": "jsonl", "ledger_dir": str(tmp_path / "ledgers")}
        )
    return ServerConfig.from_dict(body)


def wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestConsistentHashing:
    def test_assignment_ignores_registration_order(self):
        names = sorted(DATASETS) + [f"ds-{i}" for i in range(40)]
        forward = shard_assignments(names, shards=4)
        backward = shard_assignments(list(reversed(names)), shards=4)
        assert forward == backward

    def test_stable_hash_is_process_independent(self):
        # Pinned digests: a changed hash would silently re-partition every
        # deployed cluster's ledgers.  BLAKE2b, not the salted builtin.
        assert stable_hash("dataset=salary") == stable_hash("dataset=salary")
        assert stable_hash("salary") != stable_hash("other")
        assert 0 <= stable_hash("anything") < 2**64

    def test_single_shard_owns_everything(self):
        assignments = shard_assignments(DATASETS, shards=1)
        assert set(assignments.values()) == {0}

    def test_resize_moves_few_datasets(self):
        """The consistent-hashing point: growing N → N+1 shards reshuffles
        ~1/(N+1) of datasets, not almost all of them like hash % N."""
        names = [f"dataset-{i}" for i in range(400)]
        before = shard_assignments(names, shards=4)
        after = shard_assignments(names, shards=5)
        moved = sum(1 for n in names if before[n] != after[n])
        # Expect ~80 (1/5); allow generous slack, but far below a full
        # reshuffle (~320 for modulo hashing).
        assert moved < 200

    def test_ring_validates(self):
        with pytest.raises(ServerError, match=">= 1 shard"):
            ConsistentHashRing(0)
        with pytest.raises(ServerError, match=">= 1 replica"):
            ConsistentHashRing(2, replicas=0)

    def test_shard_configs_partition_the_registry(self):
        """Worker sub-configs are a disjoint cover of the dataset registry
        — the single-writer-ledger invariant in config form."""
        config = cluster_config(workers=2)
        shards = [shard_config(config, i) for i in range(2)]
        names = [set(s.datasets) for s in shards]
        assert names[0] | names[1] == set(DATASETS)
        assert names[0] & names[1] == set()
        for sub in shards:
            assert sub.cluster is None  # workers never recurse
            assert sub.port == 0  # ephemeral loopback bind

    def test_shard_config_rejects_bad_shard(self):
        config = cluster_config(workers=2)
        with pytest.raises(ServerError, match="shard must be in"):
            shard_config(config, 2)


class TestClusterConfig:
    def test_round_trip(self):
        config = cluster_config()
        again = ServerConfig.from_dict(config.to_dict())
        assert again.cluster == config.cluster

    def test_validation(self):
        with pytest.raises(SpecError, match="workers must be >= 0"):
            cluster = {"workers": -1}
            ServerConfig.from_dict(
                {"datasets": DATASETS, "cluster": cluster}
            )
        with pytest.raises(SpecError, match="must exceed"):
            ServerConfig.from_dict(
                {
                    "datasets": DATASETS,
                    "cluster": {
                        "workers": 2,
                        "heartbeat_interval_s": 5.0,
                        "heartbeat_timeout_s": 1.0,
                    },
                }
            )
        with pytest.raises(SpecError, match="unknown cluster manager"):
            ServerConfig.from_dict(
                {"datasets": DATASETS, "cluster": {"workers": 1, "manager": "ssh"}}
            )
        with pytest.raises(SpecError, match=r"unknown \[cluster\] field"):
            ServerConfig.from_dict(
                {"datasets": DATASETS, "cluster": {"workres": 2}}
            )

    def test_router_requires_cluster_section(self):
        config = ServerConfig.from_dict(
            {"server": {"port": 0}, "datasets": DATASETS}
        )
        with pytest.raises(ServerError, match="workers >= 1"):
            PCORRouter(config)


@pytest.fixture(scope="module")
def router():
    with PCORRouter(cluster_config()) as r:
        yield r


@pytest.fixture()
def client(router) -> PCORClient:
    return PCORClient(router.url, tenant="alice")


class TestRouterProxy:
    def test_health_reports_fleet(self, client, router):
        body = client.health()
        assert body["status"] == "ok"
        assert body["role"] == "router"
        assert body["workers"] == 2
        assert [s["shard"] for s in body["shards"]] == [0, 1]
        assert all(s["status"] == "ok" for s in body["shards"])
        owned = set().union(*(s["datasets"] for s in body["shards"]))
        assert owned == set(DATASETS)

    def test_release_is_bit_identical_to_single_process(self, router):
        """The headline invariant: a release through the router equals the
        same (record, spec, seed) served by one PCORServer — modulo the
        wall-clock field, which is timing, not release content."""
        single = PCORServer(
            ServerConfig.from_dict({"server": {"port": 0}, "datasets": DATASETS})
        )
        with single:
            for seed in (11, 12):
                via_router = PCORClient(router.url, tenant=f"id-{seed}").release(
                    "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=seed
                )["result"]
                direct = PCORClient(single.url, tenant=f"id-{seed}").release(
                    "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=seed
                )["result"]
                via_router.pop("wall_time_s"), direct.pop("wall_time_s")
                assert via_router == direct

    def test_typed_errors_pass_through(self, router, client):
        # 402 from the worker arrives as PrivacyBudgetError (quota 0.25).
        exhaust = PCORClient(router.url, tenant="exhaust-me")
        exhaust.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=1)
        exhaust.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=2)
        with pytest.raises(PrivacyBudgetError, match="tenant 'exhaust-me'"):
            exhaust.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=3)
        # 404: an unknown dataset hashes to *some* shard, whose worker
        # rejects it with the same typed payload a single server would.
        with pytest.raises(ServerError, match="unknown dataset"):
            client.release("nope", record_id=1, spec=SPEC)
        # 400 from the worker's spec validation.
        with pytest.raises(SpecError, match="unknown detector"):
            client.release(
                "salary", record_id=OUTLIER_RECORD, spec={"detector": "nope"}
            )

    def test_budget_single_dataset_passes_through(self, client):
        body = client.budget(dataset="other")
        assert body["tenant"] == "alice"
        assert set(body["datasets"]) == {"other"}

    def test_aggregate_routes_merge_all_shards(self, client):
        assert set(client.datasets()) == set(DATASETS)
        assert set(client.budget()["datasets"]) == set(DATASETS)
        metrics = client.metrics()
        assert set(metrics["datasets"]) == set(DATASETS)
        shards = metrics["router"]["shards"]
        assert [s["shard"] for s in shards] == [0, 1]
        assert sum(s["requests"] for s in shards) >= 1
        for s in shards:
            assert s["heartbeat_age_s"] is not None
            assert s["respawns"] == 0 or s["respawns"] >= 0

    def test_unknown_routes_404(self, router):
        for method, path in (("GET", "/v2/nope"), ("POST", "/v1/nope")):
            request = urllib.request.Request(
                router.url + path,
                method=method,
                data=b"{}" if method == "POST" else None,
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 404

    def test_control_channel_rejects_unknown_path(self, router):
        request = urllib.request.Request(
            router.url + "/control/v1/nope", method="POST", data=b"{}"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404


class TestFleetSupervision:
    def test_duplicate_dataset_claim_is_rejected(self, router):
        """A registration claiming a dataset another live shard already
        owns would mean two ledger writers — refused with a clear error."""
        victim = router.fleet._shards[0]
        taken = router.fleet._shards[1].datasets[0]
        reply = router.fleet.register(
            {
                "worker_id": victim.expected_id,
                "shard": 0,
                "url": victim.url,
                "datasets": [taken],
            }
        )
        assert reply["ok"] is False
        assert "already owned by another shard" in reply["reason"]
        assert taken in reply["reason"]
        # The shard's real registration is untouched.
        assert router.fleet.snapshot()[0]["status"] == "ok"

    def test_stale_generation_is_superseded(self, router):
        reply = router.fleet.heartbeat(
            {"worker_id": "shard0-gen999", "shard": 0, "status": "ok"}
        )
        assert reply["ok"] is False
        assert "superseded" in reply["reason"]
        reply = router.fleet.register(
            {"worker_id": "shard1-gen999", "shard": 1, "url": "http://x", "datasets": []}
        )
        assert reply["ok"] is False

    def test_malformed_control_payloads_are_rejected(self, router):
        assert router.fleet.heartbeat({})["ok"] is False
        assert router.fleet.heartbeat({"shard": "NaN"})["ok"] is False
        assert router.fleet.heartbeat({"shard": 99, "worker_id": "x"})["ok"] is False


class TestCrashRespawn:
    def test_killed_worker_respawns_and_serves(self, tmp_path):
        """Kill the worker owning ``salary`` mid-cluster: the supervisor
        respawns it, the replacement replays the shard's ledgers before
        taking traffic, and an exhausted tenant stays exhausted — the
        acceptance scenario, in-process."""
        with PCORRouter(cluster_config(tmp_path)) as router:
            client = PCORClient(router.url, tenant="doomed")
            client.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=1)
            client.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=2)
            with pytest.raises(PrivacyBudgetError):
                client.release(
                    "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=3
                )

            shard = router.fleet.shard_for("salary")
            router.fleet._shards[shard].handle.kill()  # no drain, no goodbye
            assert wait_for(
                lambda: (
                    router.fleet.snapshot()[shard]["respawns"] >= 1
                    and router.fleet.snapshot()[shard]["status"] == "ok"
                )
            ), "worker was not respawned"

            # Ledger truth survived the crash: still 402, and the spend is
            # visible — admission rejects before any detector runs.
            with pytest.raises(PrivacyBudgetError, match="tenant 'doomed'"):
                client.release(
                    "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=4
                )
            budget = client.budget(dataset="salary")["datasets"]["salary"]
            assert budget["spent"] == pytest.approx(0.2)
            # A fresh tenant is served by the respawned worker.
            fresh = PCORClient(router.url, tenant="fresh")
            fresh.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=5)
            assert router.fleet.snapshot()[shard]["respawns"] == 1

    def test_dead_shard_is_typed_503_with_retry_after(self, tmp_path):
        """With respawn disabled, a dead shard yields ShardUnavailableError
        (503 + Retry-After) for its datasets while other shards keep
        serving and aggregates report the hole."""
        with PCORRouter(cluster_config(tmp_path, respawn=False)) as router:
            shard = router.fleet.shard_for("salary")
            router.fleet._shards[shard].handle.kill()
            assert wait_for(
                lambda: router.fleet.snapshot()[shard]["status"] == "dead"
            ), "fleet never declared the worker dead"

            client = PCORClient(router.url, tenant="alice", retry_503=0)
            with pytest.raises(ShardUnavailableError, match="no live worker"):
                client.release(
                    "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=1
                )
            # Raw header check: 503 + Retry-After on the wire.
            request = urllib.request.Request(
                router.url + "/v1/budget?dataset=salary",
                headers={"X-PCOR-Tenant": "alice"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None

            # Datasets on live shards still serve; aggregates expose the hole.
            survivors = set(client.datasets())
            assert survivors  # the other shard's datasets
            assert "salary" not in survivors
            metrics = client.metrics()
            assert metrics["unavailable_shards"] == [shard]


class TestTracePropagation:
    """One trace id observed at the router edge, the worker handler, the
    coalescer flush, and the process-backend task — and surviving a
    worker SIGKILL→respawn (fresh spans, same trace semantics)."""

    TRACE_ID = "c0ffeec0ffeec0ff"

    @staticmethod
    def _coalescing_config() -> ServerConfig:
        return ServerConfig.from_dict(
            {
                "server": {"port": 0},
                "datasets": {
                    "salary": {
                        "source": "salary_reduced",
                        "records": RECORDS,
                        "seed": SEED,
                        "budget": 100.0,
                        "tenant_budget": 5.0,
                        "max_batch": 4,
                        "max_delay_ms": 5,
                    },
                },
                "cluster": {
                    "workers": 2,
                    "manager": "thread",
                    "heartbeat_interval_s": 0.2,
                    "heartbeat_timeout_s": 0.8,
                },
            }
        )

    def _release_with_trace(self, router, seed, trace_id) -> dict:
        """One release through the router carrying an explicit trace id."""
        body = json.dumps(
            {"record_id": OUTLIER_RECORD, "spec": SPEC, "seed": seed}
        ).encode("utf-8")
        conn = http.client.HTTPConnection(router.host, router.port)
        try:
            conn.request(
                "POST",
                "/v1/datasets/salary/release",
                body=body,
                headers={
                    "X-PCOR-Tenant": "tracer",
                    "X-PCOR-Trace": trace_id,
                },
            )
            response = conn.getresponse()
            raw = response.read()
            assert response.status == 200, raw
            return json.loads(raw.decode("utf-8"))
        finally:
            conn.close()

    def test_one_trace_covers_proxy_queue_admission_engine(self):
        with PCORRouter(self._coalescing_config()) as router:
            payload = self._release_with_trace(router, 1, self.TRACE_ID)
            trace = payload["trace"]
            assert trace["trace_id"] == self.TRACE_ID
            names = [s["name"] for s in trace["spans"]]
            for want in (
                "router.proxy",
                "server.handle",
                "queue.wait",
                "admission",
                "engine.execute",
            ):
                assert want in names, names
            # The proxy hop brackets the worker's handling: same monotonic
            # origin (t0 travels in the header), so offsets are comparable.
            proxy = next(s for s in trace["spans"] if s["name"] == "router.proxy")
            handle = next(
                s for s in trace["spans"] if s["name"] == "server.handle"
            )
            assert proxy["start_ms"] <= handle["start_ms"]
            assert proxy["duration_ms"] >= handle["duration_ms"]

    def test_trace_survives_worker_kill_and_respawn(self, tmp_path):
        with PCORRouter(cluster_config(tmp_path)) as router:
            before = self._release_with_trace(router, 2, self.TRACE_ID)
            assert before["trace"]["trace_id"] == self.TRACE_ID

            shard = router.fleet.shard_for("salary")
            router.fleet._shards[shard].handle.kill()
            assert wait_for(
                lambda: router.fleet.snapshot()[shard]["respawns"] == 1
                and router.fleet.snapshot()[shard]["status"] == "ok"
            ), "worker was not respawned"

            after = self._release_with_trace(router, 3, self.TRACE_ID)
            trace = after["trace"]
            assert trace["trace_id"] == self.TRACE_ID
            names = [s["name"] for s in trace["spans"]]
            assert "router.proxy" in names
            assert "engine.execute" in names
            # Fresh spans from the respawned worker, not replays.
            assert all(s["duration_ms"] >= 0 for s in trace["spans"])

    def test_process_backend_task_joins_the_trace(self):
        """A sampled trace rides the task payload into the worker process
        and its spans ride the pickled result back (pid proves the hop)."""
        from repro.data.generators import salary_reduced
        from repro.obs.trace import Trace
        from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

        dataset = salary_reduced(n_records=RECORDS, seed=SEED)
        engine = ReleaseEngine(dataset, backend="process", workers=1)
        try:
            spec = PipelineSpec(**SPEC)
            traces = [Trace.mint() for _ in range(2)]
            requests = [
                ReleaseRequest(
                    record_id=OUTLIER_RECORD, spec=spec, seed=5 + i, trace=t
                )
                for i, t in enumerate(traces)
            ]
            engine.submit_many(requests)
            for trace in traces:
                spans = trace.spans()
                exec_span = next(
                    s for s in spans if s["name"] == "engine.execute"
                )
                assert exec_span["pid"] != os.getpid(), spans
        finally:
            engine.close()

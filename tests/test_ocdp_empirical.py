"""Empirical OCDP checks: the privacy inequality measured exactly.

For the direct approach the Exponential mechanism's selection probabilities
are computable in closed form, so Theorem 4.1 can be *verified numerically*:
over f-neighbouring datasets the probability of releasing any given context
changes by at most e^(2 eps1).
"""

import math

import numpy as np
import pytest

from repro.core.reference import ReferenceFile
from repro.core.verification import OutlierVerifier
from repro.data.neighbors import remove_random_records
from repro.experiments.privacy_ratio import max_probability_ratio
from repro.mechanisms.accounting import epsilon_one_for
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.ocdp import FNeighborChecker


@pytest.fixture(scope="module")
def neighbor_pair(mini_dataset, mini_detector, mini_reference):
    """(reference_1, reference_2, protected outliers) for one removal."""
    outliers = mini_reference.outlier_records()
    gen = np.random.default_rng(17)
    d2 = remove_random_records(mini_dataset, 1, gen, protected_ids=outliers)
    ref2 = ReferenceFile.build(OutlierVerifier(d2, mini_detector))
    return mini_reference, ref2, outliers


class TestDirectMechanismPrivacy:
    def test_ratio_bounded_for_f_neighbors(self, neighbor_pair):
        """When COE sets match, Theorem 4.1's bound e^(2 eps1) must hold."""
        ref1, ref2, outliers = neighbor_pair
        epsilon = 0.2
        eps1 = epsilon_one_for("direct", epsilon)
        bound = math.exp(2.0 * eps1)
        checked = 0
        for rid in outliers:
            coe1, coe2 = ref1.coe(rid), ref2.coe(rid)
            if not coe1 or coe1 != coe2:
                continue  # not f-neighbours for this record
            ratio, n, mismatched = max_probability_ratio(ref1, ref2, rid, epsilon)
            assert not mismatched
            assert n == len(coe1)
            assert ratio <= bound * (1 + 1e-9), (
                f"record {rid}: ratio {ratio} exceeds e^(2 eps1) = {bound}"
            )
            checked += 1
        assert checked >= 1, "no f-neighbouring record found to check"

    def test_mismatch_ratios_mostly_within_e_eps(self, neighbor_pair):
        """Section 6.7(ii) reports ratios below e^eps even when COE sets
        differ.  That is an empirical observation at 11k+ records; on this
        300-record micro dataset a single removal perturbs COE much harder
        (the paper itself notes small datasets "do not benefit" the match),
        so here we assert the *typical* case only.  The strict bench-scale
        measurement lives in benchmarks/bench_privacy_ratio.py."""
        ref1, ref2, outliers = neighbor_pair
        epsilon = 0.2
        bound = math.exp(epsilon)
        within, total = 0, 0
        for rid in outliers:
            ratio, n, _ = max_probability_ratio(ref1, ref2, rid, epsilon)
            if n == 0:
                continue
            assert math.isfinite(ratio) and ratio >= 1.0 - 1e-12
            total += 1
            if ratio <= bound * (1 + 1e-9):
                within += 1
        assert total >= 1
        assert within / total >= 0.5, f"only {within}/{total} within e^eps"

    def test_f_neighbor_checker_on_coe(self, mini_dataset, mini_detector, mini_reference, neighbor_pair):
        ref1, ref2, outliers = neighbor_pair
        # Find a record whose COE is preserved and wrap COE as the OCDP f.
        preserved = next(
            rid for rid in outliers if ref1.coe(rid) and ref1.coe(rid) == ref2.coe(rid)
        )

        def coe_fn(dataset):
            verifier = OutlierVerifier(dataset, mini_detector)
            reference = ReferenceFile.build(verifier)
            return reference.coe(preserved)

        gen = np.random.default_rng(17)  # same removal as the fixture
        d2 = remove_random_records(
            mini_dataset, 1, gen, protected_ids=mini_reference.outlier_records()
        )
        checker = FNeighborChecker(coe_fn)
        verdict, reason = checker.are_f_neighbors(mini_dataset, d2)
        assert verdict, reason


class TestMechanismLevelInequality:
    def test_population_shift_by_one_respects_bound(self, mini_reference, mini_outlier, rng):
        """Removing a record changes each context's population by <= 1;
        the induced probability shift obeys e^(2 eps1) exactly."""
        eps1 = 0.1
        mech = ExponentialMechanism(eps1, sensitivity=1.0)
        contexts = mini_reference.matching_contexts(mini_outlier)
        pops = np.array([mini_reference.population_size(b) for b in contexts], float)
        for _ in range(20):
            # Simulate a neighbouring dataset: each population may lose at
            # most one record (the removed individual).
            delta = (rng.random(pops.shape[0]) < 0.5).astype(float)
            p1 = mech.probabilities(pops)
            p2 = mech.probabilities(pops - delta)
            ratio = np.maximum(p1 / p2, p2 / p1).max()
            assert ratio <= math.exp(2 * eps1) * (1 + 1e-9)

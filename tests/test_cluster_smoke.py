"""End-to-end sharded-serve smoke: router + worker subprocesses, a real
SIGKILL, a real respawn, and a budget that survives the crash.

``pcor serve --workers 2`` is exercised exactly as deployed: the CLI
subprocess spawns real worker subprocesses through the
``LocalProcessManager``; we kill one with SIGKILL (no drain, no goodbye
heartbeat), wait for the supervisor to respawn it, and verify the
respawned worker replayed its shard's ledgers before taking traffic — an
exhausted tenant is still rejected with 402.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exceptions import PrivacyBudgetError, ServerError
from repro.server import PCORClient

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

SPEC = {
    "detector": "zscore",
    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
    "sampler": "uniform",
    "epsilon": 0.1,
    "n_samples": 3,
}

#: A verified matching record of salary_reduced(records=300, seed=3).
OUTLIER_RECORD = 207


def write_config(tmp_path: Path) -> Path:
    config = tmp_path / "cluster.json"
    config.write_text(
        json.dumps(
            {
                "server": {
                    "port": 0,
                    "ledger": "jsonl",
                    "ledger_dir": str(tmp_path / "ledgers"),
                },
                "datasets": {
                    "salary": {
                        "source": "salary_reduced",
                        "records": 300,
                        "seed": 3,
                        "budget": 5.0,
                        "tenant_budget": 0.25,
                    },
                    "other": {
                        "source": "salary_reduced",
                        "records": 200,
                        "seed": 9,
                    },
                },
                "cluster": {
                    "workers": 2,
                    "heartbeat_interval_s": 0.3,
                    "heartbeat_timeout_s": 1.2,
                },
            }
        )
    )
    return config


def spawn_router(config: Path) -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--config", str(config)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    assert "router listening on" in line, f"unexpected banner: {line!r}"
    url = next(tok for tok in line.split() if tok.startswith("http://"))
    return process, url


def wait_for_shards(client: PCORClient, predicate, timeout=45.0):
    """Poll /healthz until ``predicate(shards)`` holds (503s tolerated)."""
    deadline = time.monotonic() + timeout
    shards = None
    while time.monotonic() < deadline:
        try:
            shards = client.health()["shards"]
            if predicate(shards):
                return shards
        except ServerError:
            pass
        time.sleep(0.25)
    raise AssertionError(f"fleet never reached the expected state: {shards}")


def test_cluster_serve_crash_respawn_and_budget_durability(tmp_path):
    config = write_config(tmp_path)
    process, url = spawn_router(config)
    try:
        client = PCORClient(url, tenant="smoke")
        shards = wait_for_shards(
            client, lambda s: all(x["status"] == "ok" for x in s)
        )
        owned = {d for s in shards for d in s["datasets"]}
        assert owned == {"salary", "other"}

        # Releases through the router work; exhaust the tenant (quota
        # 0.25, epsilon 0.1 → two land, the third is 402).
        response = client.release(
            "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=42
        )
        assert response["result"]["record_id"] == OUTLIER_RECORD
        client.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=43)
        with pytest.raises(PrivacyBudgetError, match="tenant 'smoke'"):
            client.release(
                "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=44
            )

        # SIGKILL the worker owning 'salary' — a real crash: no drain, no
        # goodbye heartbeat, just a vanished process.
        victim = next(s for s in shards if "salary" in s["datasets"])
        os.kill(victim["pid"], signal.SIGKILL)

        shards = wait_for_shards(
            client,
            lambda s: (
                s[victim["shard"]]["respawns"] >= 1
                and s[victim["shard"]]["status"] == "ok"
            ),
        )
        respawned = shards[victim["shard"]]
        assert respawned["pid"] != victim["pid"]
        assert respawned["worker_id"] != victim["worker_id"]

        # The respawned worker replayed the shard's WAL before accepting
        # traffic: the exhausted tenant is still 402, and the recorded
        # spend is intact.
        with pytest.raises(PrivacyBudgetError, match="tenant 'smoke'"):
            client.release(
                "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=45
            )
        budget = client.budget(dataset="salary")["datasets"]["salary"]
        assert budget["spent"] == pytest.approx(0.2)
        assert budget["remaining"] == pytest.approx(0.05)

        # A fresh tenant is served by the replacement, and the router's
        # metrics recorded the respawn.
        fresh = PCORClient(url, tenant="fresh")
        fresh.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=46)
        metrics = client.metrics()
        router_shard = metrics["router"]["shards"][victim["shard"]]
        assert router_shard["respawns"] >= 1
        assert router_shard["requests"] >= 1
    finally:
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=60)
    assert process.returncode == 0, out
    assert "router stopped; fleet terminated" in out


def test_serve_workers_flag_overrides_config(tmp_path):
    """``--workers 0`` forces single-process serving even with a
    [cluster] section in the config — the banner says which mode won."""
    config = write_config(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--config",
            str(config),
            "--workers",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        assert "pcor server listening on" in line, f"banner: {line!r}"
        url = next(tok for tok in line.split() if tok.startswith("http://"))
        body = PCORClient(url, tenant="x").health()
        assert body["status"] == "ok"
        assert "shards" not in body
    finally:
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=60)
    assert process.returncode == 0, out

"""Kernel-registry equivalence: native, fallback and a pure-Python oracle.

The kernel registry in :mod:`repro.bitops` promises that every backend is
bit-identical: the numpy fallback and the optional numba-compiled backend
must produce exactly the same population masks, counts and intersections
for every packed matrix, block layout and selection batch.  Hypothesis
drives both through a deliberately slow pure-Python reference (so the
fallback is tested against something other than itself even in numba-free
environments), across the edge shapes that bit-packing gets wrong first:
record counts at and around the 64-bit word boundary, empty attribute
blocks, empty batches, and predicate counts past one word.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import (
    WORD_BITS,
    batch_and_of_or_numpy,
    bool_matrix_to_ints,
    ints_to_bool_matrix,
    kernel_backend_name,
    native_kernels_available,
    pack_bool_matrix,
    popcount_rows,
    set_kernel_backend,
    words_for,
)
from repro.bitops import _batch_and_of_or_counts_numpy, _intersect_counts_numpy

ALL_ONES = (1 << 64) - 1

needs_native = pytest.mark.skipif(
    not native_kernels_available(), reason="numba not installed"
)


# ------------------------------------------------------------------ oracle


def reference_and_of_or(packed, offsets, sizes, selection):
    """Word-by-word AND-of-OR in pure Python ints — the equivalence oracle."""
    batch, n_words = selection.shape[0], packed.shape[1]
    out = np.zeros((batch, n_words), dtype=np.uint64)
    for b in range(batch):
        acc = [ALL_ONES] * n_words
        for off, size in zip(offsets, sizes):
            block = [0] * n_words
            for j in range(size):
                if selection[b, off + j]:
                    for w in range(n_words):
                        block[w] |= int(packed[off + j, w])
            acc = [a & x for a, x in zip(acc, block)]
        for w in range(n_words):
            out[b, w] = np.uint64(acc[w])
    return out


def reference_popcounts(matrix):
    return np.array(
        [sum(int(w).bit_count() for w in row) for row in matrix], dtype=np.int64
    )


# -------------------------------------------------------------- strategies

# Record counts straddling the word boundary, plus empty and multi-word.
N_RECORDS = st.sampled_from([0, 1, 7, 63, 64, 65, 128, 130])


@st.composite
def kernel_instance(draw):
    """(packed, offsets, sizes, selection) with adversarial shapes.

    Block sizes may be zero (an attribute contributing no predicates) and
    total predicate counts intentionally cross 64 so selections wider than
    one word are exercised.
    """
    sizes = draw(
        st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=4)
    )
    t = sum(sizes)
    offsets = np.cumsum([0] + sizes[:-1]).astype(np.int64) if sizes else np.zeros(
        0, dtype=np.int64
    )
    n = draw(N_RECORDS)
    batch = draw(st.integers(min_value=0, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    gen = np.random.default_rng(seed)
    flags = gen.random((t, n)) < 0.5 if t else np.zeros((t, n), dtype=bool)
    packed = pack_bool_matrix(np.ascontiguousarray(flags, dtype=bool))
    selection = (
        gen.random((batch, t)) < 0.6
        if batch and t
        else np.zeros((batch, t), dtype=bool)
    )
    return packed, np.asarray(offsets), np.asarray(sizes, dtype=np.int64), selection


# ------------------------------------------------------- fallback vs oracle


class TestFallbackMatchesOracle:
    @settings(max_examples=60, deadline=None)
    @given(kernel_instance())
    def test_masks_counts_popcounts(self, instance):
        packed, offsets, sizes, selection = instance
        expected = reference_and_of_or(packed, offsets, sizes, selection)
        masks = batch_and_of_or_numpy(packed, offsets, sizes, selection)
        assert masks.dtype == np.uint64
        assert np.array_equal(masks, expected)
        counts = _batch_and_of_or_counts_numpy(packed, offsets, sizes, selection)
        assert np.array_equal(counts, reference_popcounts(expected))
        assert np.array_equal(popcount_rows(packed), reference_popcounts(packed))

    @settings(max_examples=30, deadline=None)
    @given(kernel_instance())
    def test_intersect_counts(self, instance):
        packed, offsets, sizes, selection = instance
        masks = batch_and_of_or_numpy(packed, offsets, sizes, selection)
        if packed.shape[0]:
            row = packed[0]
        else:
            row = np.zeros(packed.shape[1], dtype=np.uint64)
        got = _intersect_counts_numpy(masks, row)
        expected = np.array(
            [
                sum((int(a) & int(b)).bit_count() for a, b in zip(m, row))
                for m in masks
            ],
            dtype=np.int64,
        )
        assert np.array_equal(got, expected)


# ------------------------------------------------------- native vs fallback


@needs_native
class TestNativeMatchesFallback:
    @settings(max_examples=60, deadline=None)
    @given(kernel_instance())
    def test_all_kernels_bit_identical(self, instance):
        from repro.data import _kernels

        packed, offsets, sizes, selection = instance
        sel = np.ascontiguousarray(selection, dtype=bool)
        expected_masks = batch_and_of_or_numpy(packed, offsets, sizes, sel)
        assert np.array_equal(
            _kernels.and_of_or(packed, offsets, sizes, sel), expected_masks
        )
        assert np.array_equal(
            _kernels.and_of_or_counts(packed, offsets, sizes, sel),
            _batch_and_of_or_counts_numpy(packed, offsets, sizes, sel),
        )
        assert np.array_equal(
            _kernels.popcount_rows(packed), popcount_rows(packed)
        )
        if packed.shape[0]:
            row = np.ascontiguousarray(packed[0])
            assert np.array_equal(
                _kernels.intersect_counts(expected_masks, row),
                _intersect_counts_numpy(expected_masks, row),
            )

    def test_index_level_identity(self, mini_dataset):
        """Whole-index population queries agree across backends."""
        from repro.data.masks import PredicateMaskIndex

        index = PredicateMaskIndex(mini_dataset)
        rng = np.random.default_rng(9)
        bits = [int(b) for b in rng.integers(0, 1 << index.t, size=256)]
        try:
            set_kernel_backend("fallback")
            masks_fb = index.population_masks(bits)
            sizes_fb = index.population_sizes(bits)
            set_kernel_backend("native")
            assert np.array_equal(index.population_masks(bits), masks_fb)
            assert np.array_equal(index.population_sizes(bits), sizes_fb)
        finally:
            set_kernel_backend("auto")


# ------------------------------------------------------------- conversions


class TestVectorisedConversions:
    @settings(max_examples=40, deadline=None)
    @given(
        n_bits=st.sampled_from([1, 8, 63, 64, 65, 100, 130]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rows=st.integers(min_value=0, max_value=6),
    )
    def test_round_trip(self, n_bits, seed, rows):
        gen = np.random.default_rng(seed)
        ints = [
            int.from_bytes(gen.bytes((n_bits + 7) // 8), "little")
            % (1 << n_bits)
            for _ in range(rows)
        ]
        matrix = ints_to_bool_matrix(ints, n_bits)
        assert matrix.shape == (rows, n_bits)
        assert bool_matrix_to_ints(matrix) == ints
        for i, bits in enumerate(ints):
            expected = [(bits >> j) & 1 == 1 for j in range(n_bits)]
            assert matrix[i].tolist() == expected

    def test_empty_edges(self):
        assert ints_to_bool_matrix([], 17).shape == (0, 17)
        assert ints_to_bool_matrix([0, 0], 0).shape == (2, 0)
        assert bool_matrix_to_ints(np.zeros((0, 5), dtype=bool)) == []
        assert bool_matrix_to_ints(np.zeros((3, 0), dtype=bool)) == [0, 0, 0]

    def test_word_boundary_identity(self):
        # 64 bits exercises the padded-view fast path exactly at the edge.
        bits = [(1 << 64) - 1, 1 << 63, 0]
        matrix = ints_to_bool_matrix(bits, WORD_BITS)
        assert bool_matrix_to_ints(matrix) == bits


# ---------------------------------------------------------------- registry


class TestBackendSelection:
    def test_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("PCOR_NATIVE", "0")
        try:
            assert set_kernel_backend("auto") == "fallback"
            assert kernel_backend_name() == "fallback"
        finally:
            monkeypatch.delenv("PCOR_NATIVE")
            set_kernel_backend("auto")

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("PCOR_NATIVE", "yes please")
        try:
            with pytest.raises(RuntimeError, match="PCOR_NATIVE"):
                set_kernel_backend("auto")
        finally:
            monkeypatch.delenv("PCOR_NATIVE")
            set_kernel_backend("auto")

    def test_unknown_backend_name(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_kernel_backend("simd")

    def test_explicit_fallback_always_works(self):
        try:
            assert set_kernel_backend("fallback") == "fallback"
        finally:
            set_kernel_backend("auto")

    @pytest.mark.skipif(
        native_kernels_available(), reason="numba present: native must work"
    )
    def test_native_without_numba_raises(self):
        with pytest.raises(RuntimeError, match="numba is not importable"):
            set_kernel_backend("native")

    @needs_native
    def test_native_with_numba_selected(self):
        try:
            assert set_kernel_backend("native") == "native"
        finally:
            set_kernel_backend("auto")

    def test_words_for(self):
        assert [words_for(n) for n in (0, 1, 63, 64, 65, 128, 129)] == [
            0, 1, 1, 1, 2, 2, 3,
        ]

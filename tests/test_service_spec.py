"""Tests for the declarative PipelineSpec (validation + serialization)."""

import json

import pytest

from repro.core.sampling import BFSSampler, UniformSampler
from repro.core.utility import OverlapUtility
from repro.exceptions import SpecError
from repro.outliers.zscore import ZScoreDetector
from repro.service import PipelineSpec

ZSCORE_KWARGS = {"z_threshold": 2.5, "min_population": 8}


class TestValidation:
    def test_defaults_are_valid(self):
        spec = PipelineSpec(detector="zscore")
        assert spec.sampler == "bfs"
        assert spec.utility == "population_size"
        assert spec.epsilon == 0.2
        assert spec.n_samples == 50

    def test_unknown_detector_rejected(self):
        with pytest.raises(SpecError, match="unknown detector"):
            PipelineSpec(detector="quantum")

    def test_unknown_sampler_rejected(self):
        with pytest.raises(SpecError, match="unknown sampler"):
            PipelineSpec(detector="zscore", sampler="teleport")

    def test_unknown_utility_rejected(self):
        with pytest.raises(SpecError, match="unknown utility"):
            PipelineSpec(detector="zscore", utility="magic")

    def test_bad_detector_kwargs_rejected(self):
        with pytest.raises(SpecError, match="detector_kwargs"):
            PipelineSpec(detector="zscore", detector_kwargs={"warp_factor": 9})

    def test_bad_sampler_kwargs_rejected(self):
        with pytest.raises(SpecError, match="sampler_kwargs"):
            PipelineSpec(detector="zscore", sampler_kwargs={"warp_factor": 9})

    def test_good_sampler_kwargs_accepted(self):
        spec = PipelineSpec(
            detector="zscore", sampler="uniform", sampler_kwargs={"p": 0.25}
        )
        assert spec.build_sampler().p == 0.25

    def test_bad_epsilon_rejected(self):
        for eps in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(SpecError, match="epsilon"):
                PipelineSpec(detector="zscore", epsilon=eps)

    def test_bad_n_samples_rejected(self):
        with pytest.raises(SpecError, match="n_samples"):
            PipelineSpec(detector="zscore", n_samples=0)

    def test_wrong_component_types_rejected(self):
        with pytest.raises(SpecError, match="detector"):
            PipelineSpec(detector=42)
        with pytest.raises(SpecError, match="sampler"):
            PipelineSpec(detector="zscore", sampler=42)
        with pytest.raises(SpecError, match="utility"):
            PipelineSpec(detector="zscore", utility=42)


class TestInstanceSpecs:
    def test_sampler_instance_syncs_n_samples(self):
        spec = PipelineSpec(detector="zscore", sampler=BFSSampler(n_samples=7))
        assert spec.n_samples == 7

    def test_instance_kwargs_rejected(self):
        with pytest.raises(SpecError, match="detector_kwargs"):
            PipelineSpec(
                detector=ZScoreDetector(**ZSCORE_KWARGS),
                detector_kwargs={"z_threshold": 3.0},
            )
        with pytest.raises(SpecError, match="sampler_kwargs"):
            PipelineSpec(
                detector="zscore",
                sampler=UniformSampler(n_samples=5),
                sampler_kwargs={"p": 0.5},
            )

    def test_instance_spec_not_serializable(self):
        spec = PipelineSpec(detector=ZScoreDetector(**ZSCORE_KWARGS))
        assert not spec.is_serializable
        with pytest.raises(SpecError, match="cannot be serialized"):
            spec.to_dict()

    def test_callable_utility_allowed(self):
        def factory(verifier, record_id, starting_bits):
            return OverlapUtility(verifier, record_id, starting_bits)

        spec = PipelineSpec(detector="zscore", utility=factory)
        assert not spec.is_serializable


class TestStartingContextMetadata:
    def test_graph_samplers_require_start(self):
        assert PipelineSpec(detector="zscore", sampler="bfs").needs_starting_context()
        assert PipelineSpec(detector="zscore", sampler="dfs").needs_starting_context()

    def test_uniform_population_size_is_start_free(self):
        spec = PipelineSpec(detector="zscore", sampler="uniform")
        assert not spec.needs_starting_context()

    def test_start_needing_utility_triggers_search(self):
        spec = PipelineSpec(detector="zscore", sampler="uniform", utility="overlap")
        assert spec.utility_requires_starting_context()
        assert spec.needs_starting_context()

    def test_callable_with_attribute(self):
        def factory(verifier, record_id, starting_bits):
            return OverlapUtility(verifier, record_id, starting_bits)

        factory.needs_starting_context = True
        spec = PipelineSpec(detector="zscore", sampler="uniform", utility=factory)
        assert spec.utility_requires_starting_context()

    def test_explicit_flag_overrides(self):
        def factory(verifier, record_id, starting_bits):
            return OverlapUtility(verifier, record_id, starting_bits)

        spec = PipelineSpec(
            detector="zscore",
            sampler="uniform",
            utility=factory,
            utility_needs_start=True,
        )
        assert spec.utility_requires_starting_context()


class TestRoundTrip:
    def spec(self):
        return PipelineSpec(
            detector="zscore",
            detector_kwargs=ZSCORE_KWARGS,
            sampler="uniform",
            sampler_kwargs={"p": 0.4},
            utility="sparsity",
            epsilon=0.35,
            n_samples=9,
            half_sensitivity=True,
        )

    def test_dict_round_trip(self):
        spec = self.spec()
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self.spec()
        assert PipelineSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = self.spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(indent=2))
        assert PipelineSpec.from_file(path) == spec

    def test_toml_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join(
                [
                    'detector = "zscore"',
                    'sampler = "uniform"',
                    'utility = "sparsity"',
                    "epsilon = 0.35",
                    "n_samples = 9",
                    "half_sensitivity = true",
                    "",
                    "[detector_kwargs]",
                    "z_threshold = 2.5",
                    "min_population = 8",
                    "",
                    "[sampler_kwargs]",
                    "p = 0.4",
                ]
            )
        )
        assert PipelineSpec.from_file(path) == self.spec()

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            PipelineSpec.from_dict({"detector": "zscore", "warp_factor": 9})

    def test_missing_detector_rejected(self):
        with pytest.raises(SpecError, match="detector"):
            PipelineSpec.from_dict({"sampler": "bfs"})

    def test_bad_names_rejected_on_load(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"detector": "quantum"}))
        with pytest.raises(SpecError, match="unknown detector"):
            PipelineSpec.from_file(path)

    def test_bad_kwargs_rejected_on_load(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"detector": "zscore", "detector_kwargs": {"warp": 9}})
        )
        with pytest.raises(SpecError, match="detector_kwargs"):
            PipelineSpec.from_file(path)

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("detector: zscore")
        with pytest.raises(SpecError, match="unsupported spec format"):
            PipelineSpec.from_file(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="invalid JSON"):
            PipelineSpec.from_file(path)

"""Concurrency stress tests for the lock-protected shared state.

The thread execution backend (and any concurrent engine caller) hammers two
shared structures: the bounded-LRU :class:`ProfileStore` and the
:class:`PrivacyAccountant` ledger.  These tests drive both from many
threads and assert the invariants that unsynchronised code breaks: the
store never exceeds its capacity and never loses counter updates; the
accountant never overdraws and never double-charges.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.profiles import ProfileStore
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms.accounting import PrivacyAccountant
from repro.server.tenants import TenantBudgets

N_THREADS = 8
OPS_PER_THREAD = 400


class TestProfileStoreUnderContention:
    def test_capacity_and_counters_hold(self):
        store = ProfileStore(capacity=64)
        barrier = threading.Barrier(N_THREADS)

        def hammer(worker: int) -> None:
            rng = np.random.default_rng(worker)
            barrier.wait()
            for _ in range(OPS_PER_THREAD):
                bits = int(rng.integers(0, 512))
                if store.get(bits) is None:
                    store.put(bits, (bits % 7, frozenset({bits})))
                assert len(store) <= 64

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(hammer, range(N_THREADS)))

        stats = store.stats()
        assert stats["size"] <= 64
        # Every operation was either a hit or a miss — none lost to races.
        assert stats["hits"] + stats["misses"] == N_THREADS * OPS_PER_THREAD

    def test_values_never_torn(self):
        """Concurrent put/get of immutable profiles returns whole values."""
        store = ProfileStore(capacity=16)
        stop = threading.Event()
        errors = []

        def writer() -> None:
            i = 0
            while not stop.is_set():
                store.put(i % 32, (i, frozenset({i})))
                i += 1

        def reader() -> None:
            while not stop.is_set():
                for bits in range(32):
                    profile = store.peek(bits)
                    if profile is not None and profile[0] not in profile[1]:
                        errors.append(profile)

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.3, stop.set)
        stop_timer.start()
        for t in threads:
            t.join()
        stop_timer.cancel()
        assert not errors


class TestAccountantUnderContention:
    def test_never_overdraws(self):
        accountant = PrivacyAccountant(budget=1.0)
        cost = 0.03
        successes = []
        barrier = threading.Barrier(N_THREADS)

        def spender(worker: int) -> None:
            barrier.wait()
            for i in range(20):
                try:
                    accountant.charge(f"w{worker}.{i}", cost)
                    successes.append(cost)
                except PrivacyBudgetError:
                    pass

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(spender, range(N_THREADS)))

        # Attempted total (8 * 20 * 0.03 = 4.8) far exceeds the budget; the
        # ledger must hold exactly the successful charges and stay <= budget.
        assert accountant.spent <= 1.0 * (1.0 + 1e-9)
        assert accountant.spent == pytest.approx(len(successes) * cost)
        assert len(accountant.ledger()) == len(successes)

    def test_charge_many_is_atomic_against_racers(self):
        accountant = PrivacyAccountant(budget=1.0)
        barrier = threading.Barrier(4)
        outcomes = []

        def batch(worker: int) -> None:
            barrier.wait()
            try:
                accountant.charge_many([(f"w{worker}.{i}", 0.1) for i in range(4)])
                outcomes.append("ok")
            except PrivacyBudgetError:
                outcomes.append("rejected")

        threads = [threading.Thread(target=batch, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # 4 batches of 0.4 against a budget of 1.0: exactly two can fit, and
        # a rejected batch must leave no partial charges behind.
        assert outcomes.count("ok") == 2
        assert accountant.spent == pytest.approx(0.8)
        assert len(accountant.ledger()) == 8

    def test_charge_many_empty_is_noop(self):
        accountant = PrivacyAccountant(budget=0.5)
        accountant.charge_many([])
        assert accountant.spent == 0.0


class TestTenantBudgetsUnderContention:
    """The tenant-layered admission path: two ledgers, one atomic decision."""

    def test_tenant_room_for_exactly_one_admits_exactly_one(self):
        """N threads race a tenant quota with room for exactly one release."""
        tenants = TenantBudgets(PrivacyAccountant(10.0), default_budget=0.1)
        barrier = threading.Barrier(N_THREADS)
        outcomes = []

        def racer(worker: int) -> None:
            barrier.wait()
            try:
                tenants.admit("alice", f"w{worker}", 0.1)
                outcomes.append("ok")
            except PrivacyBudgetError:
                outcomes.append("rejected")

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(racer, range(N_THREADS)))

        assert outcomes.count("ok") == 1
        assert tenants.spent("alice") == pytest.approx(0.1)
        assert tenants.accountant.spent == pytest.approx(0.1)
        assert len(tenants.store.replay()) == 1
        assert tenants.rejections()["alice"] == N_THREADS - 1

    def test_global_room_for_exactly_one_across_tenants(self):
        """Distinct tenants (all with quota to spare) race a global budget
        with room for one: one admitted, and every rejected tenant's own
        ledger stays untouched — neither-ledger semantics."""
        tenants = TenantBudgets(PrivacyAccountant(0.1), default_budget=1.0)
        barrier = threading.Barrier(N_THREADS)
        outcomes = {}

        def racer(worker: int) -> None:
            barrier.wait()
            try:
                tenants.admit(f"t{worker}", f"w{worker}", 0.1)
                outcomes[worker] = "ok"
            except PrivacyBudgetError:
                outcomes[worker] = "rejected"

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(racer, range(N_THREADS)))

        winners = [w for w, o in outcomes.items() if o == "ok"]
        assert len(winners) == 1
        assert tenants.accountant.spent == pytest.approx(0.1)
        for worker in range(N_THREADS):
            expected = 0.1 if worker in winners else 0.0
            assert tenants.spent(f"t{worker}") == pytest.approx(expected)
        assert len(tenants.store.replay()) == 1

    def test_tenant_layered_release_admits_exactly_one(
        self, mini_dataset, mini_outlier
    ):
        """The server's full admission+execute path under contention: a
        tenant with room for exactly one release, hammered by N threads,
        must complete exactly one release and reject the rest with 402
        semantics (no detector run, no spend)."""
        from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

        spec = PipelineSpec(
            detector="zscore",
            detector_kwargs={"z_threshold": 2.5, "min_population": 8},
            sampler="uniform",
            epsilon=0.1,
            n_samples=3,
        )
        engine = ReleaseEngine(mini_dataset, budget=10.0)
        tenants = TenantBudgets(engine.accountant, default_budget=0.1)
        barrier = threading.Barrier(N_THREADS)
        released, rejected = [], []

        def racer(worker: int) -> None:
            barrier.wait()
            try:
                tenants.admit("alice", f"w{worker}", spec.epsilon)
            except PrivacyBudgetError:
                rejected.append(worker)
                return
            released.append(
                engine.execute(
                    ReleaseRequest(mini_outlier, spec, seed=worker)
                )
            )

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(racer, range(N_THREADS)))

        assert len(released) == 1 and len(rejected) == N_THREADS - 1
        assert engine.spent == pytest.approx(0.1)
        assert engine.metrics().releases_completed == 1
        engine.close()


class TestEngineUnderConcurrentSubmitters:
    def test_concurrent_batches_share_one_ledger(self, mini_dataset, mini_outlier):
        """Many threads submitting budgeted batches can never overspend."""
        from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

        spec = PipelineSpec(
            detector="zscore",
            detector_kwargs={"z_threshold": 2.5, "min_population": 8},
            sampler="uniform",
            epsilon=0.1,
            n_samples=3,
        )
        engine = ReleaseEngine(mini_dataset, budget=0.6)
        completed, rejected = [], []

        def submit_batch(worker: int) -> None:
            try:
                results = engine.submit_many(
                    [
                        ReleaseRequest(mini_outlier, spec, seed=100 * worker + i)
                        for i in range(2)
                    ]
                )
                completed.extend(results)
            except PrivacyBudgetError:
                rejected.append(worker)

        with ThreadPoolExecutor(6) as pool:
            list(pool.map(submit_batch, range(6)))

        # 6 batches of 0.2 against 0.6: exactly three admitted atomically.
        assert len(completed) == 6 and len(rejected) == 3
        assert engine.spent == pytest.approx(0.6)
        assert engine.metrics().releases_completed == 6
        assert engine.metrics().requests_rejected == 6

"""Unit tests for the four samplers (Algorithms 2-5)."""

import numpy as np
import pytest

from repro.core.sampling import BFSSampler, DFSSampler, RandomWalkSampler, UniformSampler
from repro.core.starting import starting_context_from_reference
from repro.core.utility import PopulationSizeUtility
from repro.exceptions import SamplingError
from repro.mechanisms.accounting import epsilon_one_for
from repro.mechanisms.exponential import ExponentialMechanism

ALL_SAMPLERS = [
    UniformSampler(n_samples=12),
    RandomWalkSampler(n_samples=12),
    DFSSampler(n_samples=12),
    BFSSampler(n_samples=12),
]


@pytest.fixture(scope="module")
def starting_bits(mini_reference, mini_outlier):
    return starting_context_from_reference(
        mini_reference, mini_outlier, np.random.default_rng(0)
    ).bits


@pytest.fixture()
def mechanism():
    return ExponentialMechanism(epsilon_one_for("bfs", 0.2, 12))


def run_sampler(sampler, verifier, record_id, starting_bits, mechanism, seed=0):
    utility = PopulationSizeUtility(verifier, record_id)
    return sampler.sample(
        verifier, utility, record_id, starting_bits,
        mechanism, np.random.default_rng(seed),
    )


@pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: s.name)
class TestAllSamplers:
    def test_candidates_all_matching(
        self, sampler, mini_verifier, mini_outlier, starting_bits, mechanism
    ):
        run = run_sampler(sampler, mini_verifier, mini_outlier, starting_bits, mechanism)
        assert run.candidates
        for bits in run.candidates:
            assert mini_verifier.is_matching(bits, mini_outlier)

    def test_pool_size_bounded_by_n(
        self, sampler, mini_verifier, mini_outlier, starting_bits, mechanism
    ):
        run = run_sampler(sampler, mini_verifier, mini_outlier, starting_bits, mechanism)
        assert len(run.candidates) <= sampler.n_samples

    def test_deterministic_given_seed(
        self, sampler, mini_verifier, mini_outlier, starting_bits, mechanism
    ):
        a = run_sampler(sampler, mini_verifier, mini_outlier, starting_bits, mechanism, seed=7)
        b = run_sampler(sampler, mini_verifier, mini_outlier, starting_bits, mechanism, seed=7)
        assert a.candidates == b.candidates

    def test_stats_populated(
        self, sampler, mini_verifier, mini_outlier, starting_bits, mechanism
    ):
        run = run_sampler(sampler, mini_verifier, mini_outlier, starting_bits, mechanism)
        assert run.stats.candidates_collected == len(run.candidates)
        assert run.stats.contexts_examined > 0

    def test_n_samples_validation(self, sampler):
        with pytest.raises(SamplingError):
            type(sampler)(n_samples=0)


class TestUniform:
    def test_no_starting_context_needed(self, mini_verifier, mini_outlier, mechanism, rng):
        sampler = UniformSampler(n_samples=5)
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        run = sampler.sample(mini_verifier, utility, mini_outlier, None, mechanism, rng)
        assert len(run.candidates) == 5

    def test_max_draws_enforced(self, mini_verifier, mini_reference, mini_dataset, mechanism, rng):
        outliers = set(mini_reference.outlier_records())
        normal = next(int(r) for r in mini_dataset.ids if int(r) not in outliers)
        sampler = UniformSampler(n_samples=5, max_draws=200)
        utility = PopulationSizeUtility(mini_verifier, normal)
        with pytest.raises(SamplingError, match="too sparse"):
            sampler.sample(mini_verifier, utility, normal, None, mechanism, rng)

    def test_bad_parameters(self):
        with pytest.raises(SamplingError):
            UniformSampler(p=0.0)
        with pytest.raises(SamplingError):
            UniformSampler(max_draws=0)

    def test_draw_count_in_expected_range(
        self, mini_verifier, mini_reference, mini_outlier, mechanism
    ):
        """Theorem 5.2: expected draws ~ n * 2^t / N."""
        n_matching = len(mini_reference.matching_contexts(mini_outlier))
        t = mini_verifier.schema.t
        sampler = UniformSampler(n_samples=10)
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        draws = []
        for seed in range(10):
            run = sampler.sample(
                mini_verifier, utility, mini_outlier, None,
                mechanism, np.random.default_rng(seed),
            )
            draws.append(run.stats.steps)
        expected = 10 * (2**t) / n_matching
        assert np.mean(draws) < 10 * expected  # loose sanity bound
        assert np.mean(draws) > expected / 10


class TestRandomWalk:
    def test_needs_starting_context(self, mini_verifier, mini_outlier, mechanism, rng):
        sampler = RandomWalkSampler(n_samples=5)
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        with pytest.raises(SamplingError, match="starting context"):
            sampler.sample(mini_verifier, utility, mini_outlier, None, mechanism, rng)

    def test_pool_starts_with_cv(
        self, mini_verifier, mini_outlier, starting_bits, mechanism, rng
    ):
        sampler = RandomWalkSampler(n_samples=5)
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        run = sampler.sample(
            mini_verifier, utility, mini_outlier, starting_bits, mechanism, rng
        )
        assert run.candidates[0] == starting_bits

    def test_walk_is_connected_path(
        self, mini_verifier, mini_outlier, starting_bits, mechanism, rng
    ):
        sampler = RandomWalkSampler(n_samples=8)
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        run = sampler.sample(
            mini_verifier, utility, mini_outlier, starting_bits, mechanism, rng
        )
        for a, b in zip(run.candidates, run.candidates[1:]):
            assert (a ^ b).bit_count() == 1  # consecutive samples connected

    def test_multiset_repeats_allowed(
        self, mini_verifier, mini_outlier, starting_bits, mechanism
    ):
        """Long walks on small matching sets must revisit contexts."""
        sampler = RandomWalkSampler(n_samples=12)
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        seen_repeat = False
        for seed in range(10):
            run = sampler.sample(
                mini_verifier, utility, mini_outlier, starting_bits,
                mechanism, np.random.default_rng(seed),
            )
            if len(set(run.candidates)) < len(run.candidates):
                seen_repeat = True
                break
        assert seen_repeat


class TestSearchSamplers:
    @pytest.mark.parametrize("cls", [DFSSampler, BFSSampler])
    def test_needs_starting_context(self, cls, mini_verifier, mini_outlier, mechanism, rng):
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        with pytest.raises(SamplingError, match="starting context"):
            cls(n_samples=5).sample(
                mini_verifier, utility, mini_outlier, None, mechanism, rng
            )

    @pytest.mark.parametrize("cls", [DFSSampler, BFSSampler])
    def test_no_duplicate_visits(
        self, cls, mini_verifier, mini_outlier, starting_bits, mechanism, rng
    ):
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        run = cls(n_samples=12).sample(
            mini_verifier, utility, mini_outlier, starting_bits, mechanism, rng
        )
        assert len(set(run.candidates)) == len(run.candidates)

    @pytest.mark.parametrize("cls", [DFSSampler, BFSSampler])
    def test_visits_start_first(
        self, cls, mini_verifier, mini_outlier, starting_bits, mechanism, rng
    ):
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        run = cls(n_samples=6).sample(
            mini_verifier, utility, mini_outlier, starting_bits, mechanism, rng
        )
        assert run.candidates[0] == starting_bits

    @pytest.mark.parametrize("cls", [DFSSampler, BFSSampler])
    def test_mechanism_invocations_counted(
        self, cls, mini_verifier, mini_outlier, starting_bits, mechanism, rng
    ):
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        run = cls(n_samples=8).sample(
            mini_verifier, utility, mini_outlier, starting_bits, mechanism, rng
        )
        # Internal Exp draws happen during collection (Algorithms 4 & 5).
        assert run.stats.mechanism_invocations >= 1

    def test_dfs_visits_connected_region(
        self, mini_verifier, mini_outlier, starting_bits, mechanism, rng
    ):
        """Every DFS-visited context is reachable from C_V inside the COE."""
        utility = PopulationSizeUtility(mini_verifier, mini_outlier)
        run = DFSSampler(n_samples=12).sample(
            mini_verifier, utility, mini_outlier, starting_bits, mechanism, rng
        )
        visited = set(run.candidates)
        # BFS closure from the start within matching contexts.
        t = mini_verifier.schema.t
        reachable = {starting_bits}
        frontier = [starting_bits]
        while frontier:
            cur = frontier.pop()
            for bit in range(t):
                nb = cur ^ (1 << bit)
                if nb not in reachable and mini_verifier.is_matching(nb, mini_outlier):
                    reachable.add(nb)
                    frontier.append(nb)
        assert visited <= reachable

"""Observability tests: metrics primitives, traces, structured logs, and
the instrumented server surface.

Unit coverage for ``src/repro/obs/`` plus end-to-end checks against a real
:class:`PCORServer`: span timelines in release payloads, the Prometheus
exposition, ``/healthz`` process stats, and the log-schema contract
(every emitted JSON log line parses and carries the required keys).
"""

import io
import json
import logging

import pytest

from repro.exceptions import SpecError
from repro.obs.export import dataset_families, merge_expositions
from repro.obs.logs import (
    REQUIRED_KEYS,
    JsonEventFormatter,
    TextEventFormatter,
    configure_logging,
    log_event,
)
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_text,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Trace,
    process_rss_bytes,
    sampled_for,
    trace_for_request,
)
from repro.server import (
    ObservabilityConfig,
    PCORClient,
    PCORServer,
    ServerConfig,
)

RECORDS = 300
SEED = 3
OUTLIER_RECORD = 207  # verified matching record of salary_reduced(300, seed=3)

SPEC = {
    "detector": "zscore",
    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
    "sampler": "uniform",
    "epsilon": 0.1,
    "n_samples": 3,
}


def server_config(observability=None, max_batch=1) -> ServerConfig:
    body = {
        "server": {"port": 0},
        "datasets": {
            "salary": {
                "source": "salary_reduced",
                "records": RECORDS,
                "seed": SEED,
                "budget": 100.0,
                "tenant_budget": 0.5,
            },
        },
    }
    if max_batch > 1:
        body["datasets"]["salary"].update(
            {"max_batch": max_batch, "max_delay_ms": 5}
        )
    if observability is not None:
        body["observability"] = observability
    return ServerConfig.from_dict(body)


# ---------------------------------------------------------------- primitives


class TestMetricsPrimitives:
    def test_counter_accumulates_per_label(self):
        c = Counter("pcor_things_total", "things", labelnames=("kind",))
        c.inc(labels=("a",))
        c.inc(2.0, labels=("a",))
        c.inc(labels=("b",))
        assert c.value(("a",)) == 3.0
        assert c.items() == [(("a",), 3.0), (("b",), 1.0)]

    def test_label_arity_is_checked(self):
        c = Counter("pcor_things_total", "things", labelnames=("kind",))
        with pytest.raises(ValueError, match="label"):
            c.inc(labels=())

    def test_gauge_set_and_inc(self):
        g = Gauge("pcor_depth", "depth")
        g.set(4.0)
        g.inc(-1.5)
        assert g.value() == 2.5

    def test_histogram_bucket_edges_are_inclusive(self):
        h = Histogram("pcor_lat_seconds", "lat", buckets=(0.01, 0.1))
        h.observe(0.01)  # exactly the bound: counts in le="0.01"
        h.observe(0.05)
        h.observe(5.0)  # overflows into +Inf
        counts, total, count = h.snapshot()
        assert counts == [1, 1, 1]
        assert total == pytest.approx(5.06)
        assert count == 3
        text = render_text([h.family()])
        assert 'pcor_lat_seconds_bucket{le="0.01"} 1' in text
        assert 'pcor_lat_seconds_bucket{le="0.1"} 2' in text  # cumulative
        assert 'pcor_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "pcor_lat_seconds_count 3" in text

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("pcor_bad", "bad", buckets=(0.1, 0.01))

    def test_registry_rejects_type_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("pcor_x_total", "x")
        with pytest.raises(ValueError, match="different"):
            registry.gauge("pcor_x_total", "x")

    def test_registry_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("pcor_x_total", "x", labelnames=("k",))
        b = registry.counter("pcor_x_total", "x", labelnames=("k",))
        assert a is b

    def test_label_values_are_escaped(self):
        c = Counter("pcor_esc_total", "esc", labelnames=("v",))
        c.inc(labels=('a"b\\c\nd',))
        text = render_text([c.family()])
        assert '{v="a\\"b\\\\c\\nd"}' in text

    def test_empty_families_are_skipped(self):
        c = Counter("pcor_never_total", "never")
        assert render_text([c.family()]) == "\n"


# -------------------------------------------------------------------- traces


class TestTrace:
    def test_mint_ids_are_hex_and_unique(self):
        ids = {Trace.mint().trace_id for _ in range(32)}
        assert len(ids) == 32
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_header_round_trip(self):
        trace = Trace.mint(sampled=False)
        parsed = Trace.from_header(trace.header_value())
        assert parsed.trace_id == trace.trace_id
        assert parsed.t0 == trace.t0
        assert parsed.sampled is False

    @pytest.mark.parametrize(
        "header",
        ["", "not hex!", "zzzz;t0=1.0;s=1", "abc;t0=nope", "x" * 200],
    )
    def test_malformed_headers_are_rejected(self, header):
        assert Trace.from_header(header) is None

    def test_unsampled_trace_records_nothing(self):
        trace = Trace.mint(sampled=False)
        with trace.span("x"):
            pass
        trace.add_span("y", 0.0, 1.0)
        assert trace.spans() == []

    def test_spans_sort_by_start(self):
        trace = Trace("ab" * 8, t0=0.0)
        trace.add_span("later", 2.0, 3.0)
        trace.add_span("earlier", 1.0, 3.0)
        names = [s["name"] for s in trace.to_dict()["spans"]]
        assert names == ["earlier", "later"]

    def test_sampling_is_deterministic_by_id(self):
        assert sampled_for("ab" * 8, 1.0) is True
        assert sampled_for("ab" * 8, 0.0) is False
        assert sampled_for("ab" * 8, 0.5) == sampled_for("ab" * 8, 0.5)

    def test_trace_for_request_adopts_header(self):
        obs = ObservabilityConfig()
        trace = trace_for_request("deadbeefdeadbeef;t0=1.5;s=1", obs)
        assert trace.trace_id == "deadbeefdeadbeef"
        assert trace.t0 == 1.5
        minted = trace_for_request(None, obs)
        assert minted is not None and minted.trace_id != trace.trace_id
        assert trace_for_request(None, None) is None
        disabled = ObservabilityConfig(enabled=False)
        assert trace_for_request(None, disabled) is None

    def test_process_rss_is_positive(self):
        assert process_rss_bytes() > 0


# ---------------------------------------------------------------------- logs


class TestStructuredLogs:
    def _capture(self, fmt):
        stream = io.StringIO()
        configure_logging(fmt, level=logging.DEBUG, stream=stream)
        return stream

    def teardown_method(self):
        # Put the tree back so other tests see default logging behavior.
        logger = logging.getLogger("repro")
        logger.handlers = [
            h for h in logger.handlers if not getattr(h, "_pcor_obs", False)
        ]
        logger.setLevel(logging.NOTSET)
        logger.propagate = True

    def test_every_json_line_parses_with_required_keys(self):
        """The log-schema contract: one JSON object per line, required
        keys always present, across every event shape the stack emits."""
        stream = self._capture("json")
        logger = logging.getLogger("repro.server")
        log_event(logger, "request", trace_id="ab" * 8, tenant="alice",
                  dataset="salary", epsilon=0.1, status="ok", duration_ms=3.2)
        log_event(logger, "flush", dataset="salary", batch=4, admitted=3,
                  epsilon=0.4, duration_ms=10.0, trace_ids=["ab" * 8])
        log_event(logging.getLogger("repro.cluster"), "heartbeat",
                  level=logging.DEBUG, shard=0, worker_id="shard0-gen0",
                  status="ok")
        log_event(logging.getLogger("repro.cluster"), "respawn",
                  level=logging.WARNING, shard=1, worker_id="shard1-gen1",
                  generation=1, respawns=1)
        log_event(logger, "drain", active=0)
        logger.info("a plain %s record", "stdlib")  # non-event line
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 6
        for line in lines:
            body = json.loads(line)
            for key in REQUIRED_KEYS:
                assert key in body, (key, line)
        assert json.loads(lines[0])["trace_id"] == "ab" * 8
        assert json.loads(lines[3])["level"] == "WARNING"
        assert json.loads(lines[5])["event"] == "a plain stdlib record"

    def test_text_format_is_key_value(self):
        stream = self._capture("text")
        log_event(logging.getLogger("repro.server"), "request",
                  tenant="alice", status="ok")
        assert stream.getvalue().strip() == (
            "info repro.server request tenant=alice status=ok"
        )

    def test_configure_logging_is_idempotent(self):
        self._capture("json")
        self._capture("text")
        logger = logging.getLogger("repro")
        obs_handlers = [
            h for h in logger.handlers if getattr(h, "_pcor_obs", False)
        ]
        assert len(obs_handlers) == 1

    def test_unknown_format_is_rejected(self):
        with pytest.raises(ValueError, match="log format"):
            configure_logging("xml")

    def test_formatters_render_plain_records(self):
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "hello %d", (7,), None
        )
        assert json.loads(JsonEventFormatter().format(record))["event"] == "hello 7"
        assert TextEventFormatter().format(record) == "info repro.x hello 7"


# ------------------------------------------------------------------- exports


class TestExport:
    def test_dataset_families_cover_budget_telemetry(self):
        datasets = {
            "salary": {
                "epsilon_spent": 0.3,
                "epsilon_budget": 2.0,
                "spend_by_tenant": {"alice": 0.2, "bob": 0.1},
                "tenant_rejections": {"alice": 4},
                "batch_queue_wait_s": 1.25,
            }
        }
        text = render_text(dataset_families(datasets))
        assert 'pcor_epsilon_spent_total{dataset="salary"} 0.3' in text
        assert 'pcor_tenant_epsilon_spent{dataset="salary",tenant="alice"} 0.2' in text
        assert 'pcor_epsilon_exhausted_total{dataset="salary",tenant="alice"} 4' in text
        # Satellite: the queue-wait counter carries its unit in the name.
        assert (
            'pcor_batch_queue_wait_seconds_total{dataset="salary"} 1.25' in text
        )

    def test_merge_stamps_shard_labels_and_dedups_headers(self):
        shard0 = (
            "# HELP pcor_x_total x\n# TYPE pcor_x_total counter\n"
            'pcor_x_total{kind="a"} 1\npcor_y 2\n'
        )
        shard1 = (
            "# HELP pcor_x_total x\n# TYPE pcor_x_total counter\n"
            "pcor_x_total 5\n"
        )
        lines = merge_expositions([(0, shard0), (1, shard1)])
        assert lines.count("# TYPE pcor_x_total counter") == 1
        assert 'pcor_x_total{shard="0",kind="a"} 1' in lines
        assert 'pcor_x_total{shard="1"} 5' in lines
        assert 'pcor_y{shard="0"} 2' in lines

    def test_validate_exposition_accepts_real_output(self):
        from repro.obs import validate_exposition

        text = render_text(dataset_families({"salary": {"epsilon_spent": 0.5}}))
        assert validate_exposition(text) == []
        # Merged fleet output stays clean too (dedup'd headers).
        merged = "\n".join(merge_expositions([(0, text), (1, text)])) + "\n"
        assert validate_exposition(merged) == []

    def test_validate_exposition_flags_scraper_breakers(self):
        from repro.obs import validate_exposition

        cases = {
            "malformed header": "# TYPE pcor_x\npcor_x 1\n",
            "unknown metric type": "# TYPE pcor_x speedometer\npcor_x 1\n",
            "duplicate # TYPE": (
                "# TYPE pcor_x counter\n# TYPE pcor_x counter\npcor_x 1\n"
            ),
            "unparseable sample": "# TYPE pcor_x counter\n{oops} 1\n",
            "is not a float": "# TYPE pcor_x counter\npcor_x one\n",
            "has no # HELP/# TYPE header": "pcor_mystery 1\n",
        }
        for expected, text in cases.items():
            problems = validate_exposition(text)
            assert problems, expected
            assert any(expected in p for p in problems), (expected, problems)

    def test_validate_exposition_allows_histogram_suffixes(self):
        from repro.obs import validate_exposition

        text = (
            "# HELP pcor_lat_seconds latency\n"
            "# TYPE pcor_lat_seconds histogram\n"
            'pcor_lat_seconds_bucket{le="0.1"} 3\n'
            'pcor_lat_seconds_bucket{le="+Inf"} 5\n'
            "pcor_lat_seconds_sum 0.42\n"
            "pcor_lat_seconds_count 5\n"
        )
        assert validate_exposition(text) == []


# -------------------------------------------------------------------- config


class TestObservabilityConfig:
    def test_defaults_round_trip(self):
        config = ServerConfig.from_dict(
            {
                "server": {"port": 0},
                "datasets": {"d": {"source": "salary_reduced", "records": 50}},
                "observability": {"sample_rate": 0.5, "log_format": "json"},
            }
        )
        assert config.observability.sample_rate == 0.5
        assert config.observability.log_format == "json"
        assert config.observability.enabled is True
        rebuilt = ServerConfig.from_dict(config.to_dict())
        assert rebuilt.observability == config.observability

    def test_unknown_field_is_rejected(self):
        with pytest.raises(SpecError, match="observability"):
            ServerConfig.from_dict(
                {
                    "server": {"port": 0},
                    "datasets": {"d": {"source": "salary_reduced", "records": 50}},
                    "observability": {"sampl_rate": 0.5},
                }
            )

    @pytest.mark.parametrize(
        "body", [{"sample_rate": 1.5}, {"slow_request_ms": -1},
                 {"log_format": "xml"}]
    )
    def test_invalid_values_are_rejected(self, body):
        with pytest.raises(SpecError):
            ObservabilityConfig(**body)


# ------------------------------------------------------------- served surface


@pytest.fixture(scope="module")
def server():
    with PCORServer(server_config()) as srv:
        yield srv


@pytest.fixture()
def client(server) -> PCORClient:
    return PCORClient(server.url, tenant="alice")


class TestServerObservability:
    def test_release_payload_carries_span_timeline(self, client):
        payload = client.release(
            "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=42
        )
        trace = payload["trace"]
        assert len(trace["trace_id"]) == 16
        names = [s["name"] for s in trace["spans"]]
        for want in ("server.handle", "admission", "engine.execute",
                     "engine.sample"):
            assert want in names, names
        handle = next(s for s in trace["spans"] if s["name"] == "server.handle")
        assert handle["tenant"] == "alice"
        assert handle["status"] == "ok"
        exec_span = next(
            s for s in trace["spans"] if s["name"] == "engine.execute"
        )
        assert exec_span["duration_ms"] >= 0
        assert exec_span["record_id"] == OUTLIER_RECORD

    def test_client_supplied_trace_id_is_honored(self, server):
        import http.client as hc

        body = json.dumps(
            {"record_id": OUTLIER_RECORD, "spec": SPEC, "seed": 43}
        ).encode("utf-8")
        conn = hc.HTTPConnection(server.host, server.port)
        try:
            conn.request(
                "POST",
                "/v1/datasets/salary/release",
                body=body,
                headers={
                    "X-PCOR-Tenant": "alice",
                    TRACE_HEADER: "feedfacefeedface",
                },
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert payload["trace"]["trace_id"] == "feedfacefeedface"

    def test_trace_never_perturbs_the_release(self, server):
        """Bit-identity: the same seed yields the same result with and
        without a trace riding along (tracing draws no randomness)."""
        a = PCORClient(server.url, tenant="bit-a").release(
            "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=77
        )["result"]
        with PCORServer(
            server_config(observability={"enabled": False})
        ) as untraced:
            b = PCORClient(untraced.url, tenant="bit-a").release(
                "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=77
            )["result"]
        a.pop("wall_time_s"), b.pop("wall_time_s")
        assert a == b

    def test_disabled_observability_omits_trace(self):
        with PCORServer(
            server_config(observability={"enabled": False})
        ) as srv:
            payload = PCORClient(srv.url, tenant="quiet").release(
                "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=1
            )
            assert "trace" not in payload
            assert srv.health()["observability"]["enabled"] is False

    def test_prometheus_exposition(self, server, client):
        client.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=9)
        text = client.prometheus_metrics()
        assert "# TYPE pcor_http_responses_total counter" in text
        assert "# TYPE pcor_release_latency_seconds histogram" in text
        assert 'pcor_release_latency_seconds_bucket{dataset="salary"' in text
        assert 'pcor_epsilon_spent_total{dataset="salary"}' in text
        assert 'pcor_tenant_epsilon_spent{dataset="salary",tenant="alice"}' in text
        # Raw content type on the wire.
        import http.client as hc

        conn = hc.HTTPConnection(server.host, server.port)
        try:
            conn.request("GET", "/v1/metrics/prometheus")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == PROMETHEUS_CONTENT_TYPE
            response.read()
        finally:
            conn.close()

    def test_epsilon_exhausted_counter(self, server):
        greedy = PCORClient(server.url, tenant="greedy")
        for seed in range(5):
            greedy.release(
                "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=seed
            )
        from repro.exceptions import PrivacyBudgetError

        with pytest.raises(PrivacyBudgetError):
            greedy.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=9)
        text = greedy.prometheus_metrics()
        assert (
            'pcor_epsilon_exhausted_total{dataset="salary",tenant="greedy"} 1'
            in text
        )

    def test_healthz_reports_process_stats(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0
        assert body["rss_bytes"] > 0
        assert body["observability"] == {
            "enabled": True,
            "sample_rate": 1.0,
            "slow_request_ms": 1000.0,
            "log_format": "text",
        }

    def test_json_metrics_stay_shaped(self, client):
        client.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=3)
        metrics = client.metrics()
        assert metrics["server"]["responses_by_status"]["2xx"] >= 1
        salary = metrics["datasets"]["salary"]
        assert salary["requests_submitted"] >= 1
        assert isinstance(salary["epsilon_spent"], float)

    def test_sample_rate_zero_drops_minted_traces(self):
        with PCORServer(
            server_config(observability={"sample_rate": 0.0})
        ) as srv:
            payload = PCORClient(srv.url, tenant="unsampled").release(
                "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=2
            )
            assert "trace" not in payload

    def test_slow_request_log_dumps_spans(self):
        """With the threshold at zero every request is 'slow': the WARNING
        line carries the trace id and the span timeline."""
        stream = io.StringIO()
        configure_logging("json", level=logging.INFO, stream=stream)
        try:
            with PCORServer(
                server_config(observability={"slow_request_ms": 0.0})
            ) as srv:
                payload = PCORClient(srv.url, tenant="slow").release(
                    "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=4
                )
            lines = [json.loads(l) for l in stream.getvalue().splitlines()]
            slow = [l for l in lines if l["event"] == "slow_request"]
            assert slow, [l["event"] for l in lines]
            assert slow[0]["trace_id"] == payload["trace"]["trace_id"]
            assert any(
                s["name"] == "engine.execute" for s in slow[0]["spans"]
            )
            requests = [l for l in lines if l["event"] == "request"]
            assert requests and requests[0]["tenant"] == "slow"
            for line in lines:
                for key in REQUIRED_KEYS:
                    assert key in line
        finally:
            logger = logging.getLogger("repro")
            logger.handlers = [
                h for h in logger.handlers if not getattr(h, "_pcor_obs", False)
            ]
            logger.setLevel(logging.NOTSET)
            logger.propagate = True

    def test_coalesced_release_traces_queue_and_admission(self):
        with PCORServer(server_config(max_batch=4)) as srv:
            client = PCORClient(srv.url, tenant="batcher")
            payloads = client.release_many(
                "salary",
                records=[OUTLIER_RECORD] * 4,
                spec=SPEC,
                seeds=[10, 11, 12, 13],
                concurrency=4,
            )
            for payload in payloads:
                names = [s["name"] for s in payload["trace"]["spans"]]
                assert "queue.wait" in names, names
                assert "admission" in names, names
                assert "engine.execute" in names, names

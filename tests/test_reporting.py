"""Unit tests for ASCII table / histogram rendering."""

from repro.experiments.reporting import render_histogram, render_table


class TestRenderTable:
    def test_contains_title_headers_and_rows(self):
        out = render_table(
            "Table X: demo",
            ["Algorithm", "Utility"],
            [["BFS", "0.90"], ["DFS", "0.88"]],
        )
        assert "Table X: demo" in out
        assert "Algorithm" in out and "Utility" in out
        assert "BFS" in out and "0.90" in out

    def test_column_alignment(self):
        out = render_table("T", ["A", "B"], [["xx", "y"], ["x", "yy"]])
        lines = [l for l in out.splitlines() if "|" in l]
        # All rows share the same separator position.
        positions = {line.index("|") for line in lines}
        assert len(positions) == 1

    def test_notes_appended(self):
        out = render_table("T", ["A"], [["x"]], notes="scaled down 10x")
        assert out.endswith("scaled down 10x")

    def test_non_string_cells_coerced(self):
        out = render_table("T", ["A", "B"], [[1, 2.5]])
        assert "1" in out and "2.5" in out


class TestRenderHistogram:
    def test_contains_bars_and_stats(self):
        out = render_histogram([0.1, 0.1, 0.9], bins=2, label="demo")
        assert "demo" in out
        assert "#" in out
        assert "n=3" in out
        assert "mean=" in out

    def test_bar_lengths_proportional(self):
        out = render_histogram([0.1] * 10 + [0.9], bins=2, width=20)
        lines = [l for l in out.splitlines() if "#" in l]
        big = max(lines, key=lambda l: l.count("#"))
        small = min(lines, key=lambda l: l.count("#"))
        assert big.count("#") == 20
        assert small.count("#") == 2

    def test_fixed_range_edges(self):
        out = render_histogram([0.5], bins=4, value_range=(0.0, 1.0))
        assert "[         0," in out

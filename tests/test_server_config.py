"""ServerConfig / DatasetConfig: validation, round-trips, file loading."""

import json

import pytest

from repro.exceptions import SpecError
from repro.server.config import DatasetConfig, ServerConfig


def minimal() -> dict:
    return {
        "server": {"port": 0},
        "datasets": {
            "salary": {"source": "salary_reduced", "records": 300, "seed": 3}
        },
    }


class TestDatasetConfig:
    def test_generator_source_builds(self):
        cfg = DatasetConfig(name="d", source="salary_reduced", records=200, seed=1)
        dataset = cfg.build_dataset()
        assert len(dataset) == 200

    def test_unknown_source_rejected(self):
        with pytest.raises(SpecError, match="unknown source"):
            DatasetConfig(name="d", source="no_such_generator")

    def test_csv_source_needs_path_and_metric(self):
        with pytest.raises(SpecError, match="needs a 'path'"):
            DatasetConfig(name="d", source="csv")
        with pytest.raises(SpecError, match="metric"):
            DatasetConfig(name="d", source="csv", path="x.csv")

    def test_csv_source_round_trips_dataset(self, tmp_path, mini_dataset):
        from repro.data.csvio import write_csv

        path = tmp_path / "mini.csv"
        write_csv(mini_dataset, path)
        cfg = DatasetConfig(
            name="mini", source="csv", path=str(path), metric="Salary"
        )
        loaded = cfg.build_dataset()
        assert len(loaded) == len(mini_dataset)

    def test_bad_budgets_rejected(self):
        with pytest.raises(SpecError, match="budget"):
            DatasetConfig(name="d", budget=-1.0)
        with pytest.raises(SpecError, match="tenant_budget"):
            DatasetConfig(name="d", tenant_budget=0.0)
        with pytest.raises(SpecError, match="tenant 'x'"):
            DatasetConfig(name="d", tenant_budgets={"x": -0.5})

    def test_bad_name_rejected(self):
        with pytest.raises(SpecError, match="slash-free"):
            DatasetConfig(name="a/b")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="unknown backend"):
            DatasetConfig(name="d", backend="gpu")


class TestServerConfig:
    def test_from_dict_minimal(self):
        config = ServerConfig.from_dict(minimal())
        assert config.port == 0
        assert config.ledger == "memory"
        assert list(config.datasets) == ["salary"]
        assert config.datasets["salary"].name == "salary"

    def test_no_datasets_rejected(self):
        with pytest.raises(SpecError, match="no datasets"):
            ServerConfig.from_dict({"server": {}, "datasets": {}})

    def test_unknown_sections_and_fields_rejected(self):
        body = minimal()
        body["extra"] = {}
        with pytest.raises(SpecError, match="unknown server config section"):
            ServerConfig.from_dict(body)
        body = minimal()
        body["server"]["tls"] = True
        with pytest.raises(SpecError, match=r"unknown \[server\] field"):
            ServerConfig.from_dict(body)

    def test_jsonl_ledger_needs_dir(self):
        body = minimal()
        body["server"]["ledger"] = "jsonl"
        with pytest.raises(SpecError, match="ledger_dir"):
            ServerConfig.from_dict(body)
        body["server"]["ledger_dir"] = "ledgers"
        assert ServerConfig.from_dict(body).ledger == "jsonl"

    def test_unknown_ledger_kind_rejected(self):
        body = minimal()
        body["server"]["ledger"] = "sqlite"
        with pytest.raises(SpecError, match="unknown ledger kind"):
            ServerConfig.from_dict(body)

    def test_round_trip_through_dict(self):
        body = minimal()
        body["server"].update({"ledger": "jsonl", "ledger_dir": "led"})
        body["datasets"]["salary"].update(
            {"budget": 2.0, "tenant_budget": 0.5, "tenant_budgets": {"a": 1.0}}
        )
        config = ServerConfig.from_dict(body)
        again = ServerConfig.from_dict(config.to_dict())
        assert again.to_dict() == config.to_dict()

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "server.json"
        path.write_text(json.dumps(minimal()))
        assert list(ServerConfig.from_file(path).datasets) == ["salary"]

    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "server.toml"
        path.write_text(
            "\n".join(
                [
                    "[server]",
                    "port = 0",
                    'ledger = "jsonl"',
                    f'ledger_dir = "{tmp_path / "ledgers"}"',
                    "",
                    "[datasets.salary]",
                    'source = "salary_reduced"',
                    "records = 300",
                    "budget = 1.0",
                    "tenant_budget = 0.3",
                    "",
                    "[datasets.salary.tenant_budgets]",
                    "alice = 0.6",
                ]
            )
        )
        config = ServerConfig.from_file(path)
        assert config.ledger == "jsonl"
        cfg = config.datasets["salary"]
        assert cfg.budget == 1.0
        assert cfg.tenant_budgets == {"alice": 0.6}

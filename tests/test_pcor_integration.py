"""Integration tests: the PCOR facade end to end on the micro dataset."""

import numpy as np
import pytest

from repro.context import Context
from repro.core.pcor import PCOR
from repro.core.sampling import BFSSampler, DFSSampler, RandomWalkSampler, UniformSampler
from repro.core.starting import starting_context_from_reference
from repro.core.utility import OverlapUtility
from repro.exceptions import SamplingError
from repro.mechanisms.accounting import epsilon_one_for


@pytest.fixture()
def start(mini_reference, mini_outlier):
    return starting_context_from_reference(
        mini_reference, mini_outlier, np.random.default_rng(1)
    )


@pytest.fixture()
def pcor(mini_dataset, mini_detector, mini_verifier):
    return PCOR(
        mini_dataset,
        mini_detector,
        utility="population_size",
        epsilon=0.2,
        sampler=BFSSampler(n_samples=10),
        verifier=mini_verifier,
    )


class TestRelease:
    def test_released_context_is_valid_for_record(
        self, pcor, mini_verifier, mini_outlier, start
    ):
        """Property (a) of Definition 3.2: f_M(D_C, V) = true."""
        result = pcor.release(mini_outlier, starting_context=start, seed=3)
        assert mini_verifier.is_matching(result.context.bits, mini_outlier)

    def test_released_context_is_structurally_valid(self, pcor, mini_outlier, start):
        result = pcor.release(mini_outlier, starting_context=start, seed=3)
        assert result.context.is_structurally_valid

    def test_budget_split_in_result(self, pcor, mini_outlier, start):
        result = pcor.release(mini_outlier, starting_context=start, seed=3)
        assert result.epsilon_total == 0.2
        assert result.epsilon_one == pytest.approx(epsilon_one_for("bfs", 0.2, 10))

    def test_deterministic_given_seed(self, pcor, mini_outlier, start):
        a = pcor.release(mini_outlier, starting_context=start, seed=11)
        b = pcor.release(mini_outlier, starting_context=start, seed=11)
        assert a.context == b.context

    def test_auto_starting_context(self, pcor, mini_outlier, mini_verifier):
        result = pcor.release(mini_outlier, seed=5)
        assert result.starting_context is not None
        assert mini_verifier.is_matching(result.starting_context.bits, mini_outlier)

    def test_accepts_int_starting_context(self, pcor, mini_outlier, start):
        result = pcor.release(mini_outlier, starting_context=start.bits, seed=3)
        assert result.context.is_structurally_valid

    def test_invalid_starting_context_rejected(self, pcor, mini_outlier, mini_dataset):
        record_bits = mini_dataset.record_bits(mini_outlier)
        lowest = record_bits & -record_bits
        bad = mini_dataset.schema.full_bits & ~lowest  # does not contain V
        with pytest.raises(SamplingError, match="not a matching context"):
            pcor.release(mini_outlier, starting_context=bad, seed=3)

    def test_result_describe_mentions_key_fields(self, pcor, mini_outlier, start):
        result = pcor.release(mini_outlier, starting_context=start, seed=3)
        text = result.describe()
        assert str(mini_outlier) in text
        assert "epsilon" in text
        assert "bfs" in text


class TestUtilitySpecs:
    def test_overlap_spec(self, mini_dataset, mini_detector, mini_verifier, mini_outlier, start):
        pcor = PCOR(
            mini_dataset,
            mini_detector,
            utility="overlap",
            epsilon=0.2,
            sampler=BFSSampler(n_samples=8),
            verifier=mini_verifier,
        )
        result = pcor.release(mini_outlier, starting_context=start, seed=3)
        assert result.utility_name == "overlap"
        assert result.utility_value >= 0

    def test_callable_spec(self, mini_dataset, mini_detector, mini_verifier, mini_outlier, start):
        def factory(verifier, record_id, starting_bits):
            return OverlapUtility(verifier, record_id, starting_bits)

        pcor = PCOR(
            mini_dataset,
            mini_detector,
            utility=factory,
            epsilon=0.2,
            sampler=DFSSampler(n_samples=8),
            verifier=mini_verifier,
        )
        result = pcor.release(mini_outlier, starting_context=start, seed=3)
        assert result.utility_name == "overlap"

    def test_sparsity_spec(self, mini_dataset, mini_detector, mini_verifier, mini_outlier, start):
        pcor = PCOR(
            mini_dataset,
            mini_detector,
            utility="sparsity",
            epsilon=0.2,
            sampler=BFSSampler(n_samples=8),
            verifier=mini_verifier,
        )
        result = pcor.release(mini_outlier, starting_context=start, seed=3)
        assert result.utility_name == "sparsity"


class TestAllSamplerPaths:
    @pytest.mark.parametrize(
        "sampler",
        [
            UniformSampler(n_samples=6),
            RandomWalkSampler(n_samples=6),
            DFSSampler(n_samples=6),
            BFSSampler(n_samples=6),
        ],
        ids=lambda s: s.name,
    )
    def test_end_to_end(
        self, sampler, mini_dataset, mini_detector, mini_verifier, mini_outlier, start
    ):
        pcor = PCOR(
            mini_dataset,
            mini_detector,
            epsilon=0.2,
            sampler=sampler,
            verifier=mini_verifier,
        )
        result = pcor.release(mini_outlier, starting_context=start, seed=9)
        assert mini_verifier.is_matching(result.context.bits, mini_outlier)
        assert result.algorithm == sampler.name
        assert result.n_candidates >= 1

    def test_default_sampler_is_bfs_50(self, mini_dataset, mini_detector):
        pcor = PCOR(mini_dataset, mini_detector)
        assert pcor.sampler.name == "bfs"
        assert pcor.sampler.n_samples == 50


class TestValidityGuarantee:
    def test_released_always_valid_over_many_seeds(
        self, mini_dataset, mini_detector, mini_verifier, mini_outlier, start
    ):
        """Across many randomised releases, validity never fails (Def 3.2a)."""
        pcor = PCOR(
            mini_dataset,
            mini_detector,
            epsilon=0.2,
            sampler=RandomWalkSampler(n_samples=8),
            verifier=mini_verifier,
        )
        for seed in range(25):
            result = pcor.release(mini_outlier, starting_context=start, seed=seed)
            assert mini_verifier.is_matching(result.context.bits, mini_outlier)

    def test_fm_evaluation_accounting(self, mini_dataset, mini_detector, mini_outlier, start):
        """fm_evaluations in the result reflects work done during the call."""
        pcor = PCOR(mini_dataset, mini_detector, sampler=BFSSampler(n_samples=6))
        result = pcor.release(mini_outlier, starting_context=start, seed=1)
        assert result.fm_evaluations > 0
        # Re-running with a warm cache does strictly less fresh work.
        result2 = pcor.release(mini_outlier, starting_context=start, seed=1)
        assert result2.fm_evaluations <= result.fm_evaluations

"""Fidelity tests against the paper's worked example (Table 1, Sections 1/3).

The running example: record 8 (id 7 here) — a Lawyer in Ottawa's Diplomatic
district with an extreme salary — is a *hidden* outlier: unremarkable
against the whole table, anomalous inside the context
``Jobtitle in {CEO, Lawyer} AND City = Ottawa AND District = Diplomatic``.
"""

import numpy as np
import pytest

from repro.context import Context
from repro.core.enumeration import COEEnumerator
from repro.core.pcor import PCOR
from repro.core.sampling import BFSSampler
from repro.core.verification import OutlierVerifier
from repro.data.generators import tiny_income_dataset
from repro.outliers.grubbs import GrubbsDetector
from repro.outliers.zscore import ZScoreDetector

V = 7  # the paper's outlier record (Table 1 row 8)


@pytest.fixture(scope="module")
def dataset():
    return tiny_income_dataset()


@pytest.fixture(scope="module")
def paper_context(dataset):
    """The context the paper's data owner releases for V."""
    return Context.from_predicates(
        dataset.schema,
        {"Jobtitle": ["CEO", "Lawyer"], "City": ["Ottawa"], "District": ["Diplomatic"]},
    )


class TestHiddenOutlier:
    def test_not_a_global_outlier_under_grubbs(self, dataset):
        """V is 'normal compared to the whole population' (Section 1)."""
        detector = GrubbsDetector(alpha=0.05, min_population=3)
        verifier = OutlierVerifier(dataset, detector)
        assert not verifier.is_matching(dataset.schema.full_bits, V)

    def test_outlier_in_the_paper_context(self, dataset, paper_context):
        """...but an outlier among CEOs/Lawyers in Diplomatic Ottawa."""
        detector = ZScoreDetector(z_threshold=1.0, min_population=3)
        verifier = OutlierVerifier(dataset, detector)
        assert verifier.is_matching(paper_context.bits, V)
        # And V is the *only* outlier there.
        assert verifier.outlier_ids(paper_context.bits) == frozenset({V})

    def test_paper_context_population(self, dataset, paper_context):
        """The context covers records 3, 5 and 8 of Table 1 (ids 2, 4, 7)."""
        detector = ZScoreDetector(z_threshold=1.0, min_population=3)
        verifier = OutlierVerifier(dataset, detector)
        _, ids, _ = verifier.masks.population(paper_context.bits)
        assert set(ids.tolist()) == {2, 4, 7}

    def test_side_information_leak_motivation(self, dataset, paper_context):
        """The privacy problem: exactly one CEO lives in Diplomatic Ottawa,
        so a deterministic release of this context reveals their presence."""
        ceo_in_context = [
            rid
            for rid, rec in dataset.iter_records()
            if rec["Jobtitle"] == "CEO"
            and rec["City"] == "Ottawa"
            and rec["District"] == "Diplomatic"
        ]
        assert len(ceo_in_context) == 1  # the paper's side-information example


class TestEndToEndOnPaperExample:
    def test_pcor_releases_a_valid_context_for_v(self, dataset, paper_context):
        detector = ZScoreDetector(z_threshold=1.0, min_population=3)
        verifier = OutlierVerifier(dataset, detector)
        pcor = PCOR(
            dataset,
            detector,
            epsilon=0.5,
            sampler=BFSSampler(n_samples=5),
            verifier=verifier,
        )
        result = pcor.release(V, starting_context=paper_context, seed=0)
        assert verifier.is_matching(result.context.bits, V)
        values = result.context.selected_values()
        # Any valid context for V must include V's own attribute values.
        assert "Lawyer" in values["Jobtitle"]
        assert "Ottawa" in values["City"]
        assert "Diplomatic" in values["District"]

    def test_coe_contains_the_paper_context(self, dataset, paper_context):
        detector = ZScoreDetector(z_threshold=1.0, min_population=3)
        verifier = OutlierVerifier(dataset, detector)
        coe = COEEnumerator(verifier).coe(V)
        assert paper_context.bits in coe

    def test_example_bitstring_from_section_3(self, dataset):
        """Section 3 writes C = <101001010> for CEOs+Lawyers/Toronto/Historic."""
        ctx = Context.from_bitstring(dataset.schema, "101001010")
        values = ctx.selected_values()
        assert values == {
            "Jobtitle": ("CEO", "Lawyer"),
            "City": ("Toronto",),
            "District": ("Historic",),
        }
        # And its connected context from the paper: drop the Lawyer bit.
        connected = Context.from_bitstring(dataset.schema, "100001010")
        assert ctx.is_connected_to(connected)

"""Unit tests for OCDP definitions (f-neighbours, match fraction, bound)."""

import math

import pytest

from repro.data.neighbors import add_random_records, remove_random_records
from repro.mechanisms.ocdp import (
    FNeighborChecker,
    differ_by_one_record,
    ocdp_ratio_bound,
    set_match_fraction,
)


class TestDifferByOne:
    def test_remove_one(self, mini_dataset, rng):
        d2 = remove_random_records(mini_dataset, 1, rng)
        assert differ_by_one_record(mini_dataset, d2)
        assert differ_by_one_record(d2, mini_dataset)  # symmetric

    def test_add_one(self, mini_dataset, rng):
        d2 = add_random_records(mini_dataset, 1, rng)
        assert differ_by_one_record(mini_dataset, d2)

    def test_same_dataset_not_neighbor(self, mini_dataset):
        assert not differ_by_one_record(mini_dataset, mini_dataset)

    def test_two_removed_not_neighbor(self, mini_dataset, rng):
        d2 = remove_random_records(mini_dataset, 2, rng)
        assert not differ_by_one_record(mini_dataset, d2)


class TestFNeighborChecker:
    def test_constant_f_gives_neighbors(self, mini_dataset, rng):
        checker = FNeighborChecker(lambda ds: frozenset({1, 2, 3}))
        d2 = remove_random_records(mini_dataset, 1, rng)
        verdict, reason = checker.are_f_neighbors(mini_dataset, d2)
        assert verdict
        assert reason == "f-neighbors"

    def test_size_dependent_f_fails(self, mini_dataset, rng):
        checker = FNeighborChecker(lambda ds: frozenset({len(ds)}))
        d2 = remove_random_records(mini_dataset, 1, rng)
        verdict, reason = checker.are_f_neighbors(mini_dataset, d2)
        assert not verdict
        assert "outputs differ" in reason

    def test_empty_output_fails(self, mini_dataset, rng):
        checker = FNeighborChecker(lambda ds: frozenset())
        d2 = remove_random_records(mini_dataset, 1, rng)
        verdict, reason = checker.are_f_neighbors(mini_dataset, d2)
        assert not verdict
        assert "empty" in reason

    def test_not_one_record_apart_fails(self, mini_dataset, rng):
        checker = FNeighborChecker(lambda ds: frozenset({1}))
        d2 = remove_random_records(mini_dataset, 3, rng)
        verdict, reason = checker.are_f_neighbors(mini_dataset, d2)
        assert not verdict
        assert "one record" in reason


class TestRatioBound:
    def test_exponential_bound(self):
        assert ocdp_ratio_bound(0.2) == pytest.approx(math.exp(0.2))

    def test_zero_epsilon_means_no_leakage(self):
        assert ocdp_ratio_bound(0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ocdp_ratio_bound(-0.1)


class TestSetMatchFraction:
    def test_identical_sets(self):
        assert set_match_fraction({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint_sets(self):
        assert set_match_fraction({1, 2}, {3, 4}) == 0.0

    def test_partial_overlap(self):
        assert set_match_fraction({1, 2, 3}, {2, 3, 4}) == pytest.approx(2 / 4)

    def test_empty_sets_match(self):
        assert set_match_fraction(set(), set()) == 1.0

    def test_one_empty(self):
        assert set_match_fraction({1}, set()) == 0.0

    def test_symmetric(self):
        a, b = {1, 2, 3, 4}, {3, 4, 5}
        assert set_match_fraction(a, b) == set_match_fraction(b, a)

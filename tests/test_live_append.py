"""Live append-only datasets: O(k) growth, bit-identical to a rebuild.

Every layer of the incremental path is pinned against its from-scratch
twin: ``Dataset.append`` against ``with_records``, the word-level index
update against a fresh ``PredicateMaskIndex`` (including appends that
cross a 64-bit word boundary), targeted profile invalidation with stale
write fencing, the engine's version-stamped releases against a fresh
engine built on the extended dataset, the HTTP append route, and the
process backend's live shared-memory rebind.
"""

from collections import ChainMap

import numpy as np
import pytest

from repro.core.profiles import ProfileStore
from repro.data.generators import salary_reduced
from repro.data.masks import PredicateMaskIndex
from repro.exceptions import ContextError, DatasetError, SpecError
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

ZSCORE_KWARGS = {"z_threshold": 2.5, "min_population": 8}


def _spec(**overrides) -> PipelineSpec:
    base = dict(
        detector="zscore",
        detector_kwargs=ZSCORE_KWARGS,
        sampler="bfs",
        epsilon=0.5,
        n_samples=4,
    )
    base.update(overrides)
    return PipelineSpec(**base)


def sample_rows(dataset, count, start=0):
    """Valid append rows cloned from existing records (fresh ids assigned)."""
    ids = dataset.ids
    return [dataset.record(int(ids[(start + i) % len(ids)])) for i in range(count)]


def assert_datasets_identical(a, b):
    assert len(a) == len(b)
    assert a.ids.tolist() == b.ids.tolist()
    assert a.metric.tolist() == b.metric.tolist()
    for attr in a.schema.attributes:
        assert a.codes(attr.name).tolist() == b.codes(attr.name).tolist()
    assert a.all_record_bits().tolist() == b.all_record_bits().tolist()


# --------------------------------------------------------- Dataset.append


class TestDatasetAppend:
    def test_bit_identical_to_with_records(self, mini_dataset):
        rows = sample_rows(mini_dataset, 5)
        fast = mini_dataset.append(rows)
        slow = mini_dataset.with_records(rows)
        assert_datasets_identical(fast, slow)
        for rid in map(int, fast.ids):
            assert fast.position_of(rid) == slow.position_of(rid)
            assert fast.has_record(rid)
            assert fast.record_bits(rid) == slow.record_bits(rid)

    def test_empty_append_returns_self(self, mini_dataset):
        assert mini_dataset.append([]) is mini_dataset

    def test_warm_record_bits_cache_is_extended(self):
        dataset = salary_reduced(n_records=40, seed=2)
        dataset.all_record_bits()  # warm the cache
        rows = sample_rows(dataset, 3)
        appended = dataset.append(rows)
        # Extended in O(k), not recomputed — and exactly right.
        assert appended._record_bits_cache is not None
        assert (
            appended.all_record_bits().tolist()
            == dataset.with_records(rows).all_record_bits().tolist()
        )

    def test_cold_cache_stays_cold(self):
        dataset = salary_reduced(n_records=40, seed=2)
        appended = dataset.append(sample_rows(dataset, 3))
        assert appended._record_bits_cache is None

    def test_validation_matches_with_records(self, mini_dataset):
        good = sample_rows(mini_dataset, 1)[0]
        missing_attr = dict(good)
        some_attr = mini_dataset.schema.attributes[0].name
        del missing_attr[some_attr]
        with pytest.raises(DatasetError, match="record missing attribute"):
            mini_dataset.append([missing_attr])
        bad_value = dict(good, **{some_attr: "no-such-value"})
        with pytest.raises(DatasetError, match="not in domain"):
            mini_dataset.append([bad_value])
        missing_metric = dict(good)
        del missing_metric[mini_dataset.schema.metric.name]
        with pytest.raises(DatasetError, match="missing metric"):
            mini_dataset.append([missing_metric])
        non_finite = dict(good, **{mini_dataset.schema.metric.name: float("nan")})
        with pytest.raises(DatasetError, match="non-finite"):
            mini_dataset.append([non_finite])

    def test_id_map_depth_stays_bounded(self):
        dataset = salary_reduced(n_records=30, seed=4)
        current = dataset
        for i in range(20):
            current = current.append(sample_rows(current, 1, start=i))
        id_map = current._id_to_pos
        if isinstance(id_map, ChainMap):
            assert len(id_map.maps) <= current._ID_MAP_MAX_DEPTH
        # Lookups stay exact through flattening: every id, base and tail.
        for pos, rid in enumerate(map(int, current.ids)):
            assert current.position_of(rid) == pos
        assert not current.has_record(int(current.ids[-1]) + 1)

    def test_appended_ids_are_fresh_after_removal(self):
        dataset = salary_reduced(n_records=20, seed=4)
        highest = int(dataset.ids[-1])
        shrunk = dataset.without_records([highest])
        grown = shrunk.append(sample_rows(shrunk, 1))
        # The removed id is never recycled — ids stay stable forever.
        assert int(grown.ids[-1]) > highest


# ------------------------------------------------- PredicateMaskIndex.append


class TestIndexAppend:
    def test_matches_rebuild_at_every_version(self):
        dataset = salary_reduced(n_records=50, seed=6)
        index = PredicateMaskIndex(dataset)
        shadow = dataset
        rng = np.random.default_rng(11)
        probes = [int(b) for b in rng.integers(0, 1 << index.t, size=128)]
        for version, batch in enumerate([3, 1, 7, 64], start=1):
            rows = sample_rows(shadow, batch, start=version)
            index.append(rows)
            shadow = shadow.with_records(rows)
            rebuilt = PredicateMaskIndex(shadow)
            assert index.dataset_version == version
            assert np.array_equal(index.packed_matrix, rebuilt.packed_matrix)
            assert np.array_equal(
                index.population_sizes(probes), rebuilt.population_sizes(probes)
            )
            assert_datasets_identical(index.dataset, shadow)

    def test_append_across_word_boundary(self):
        # 63 records fit one uint64 word; appending 2 forces a second.
        dataset = salary_reduced(n_records=63, seed=8)
        index = PredicateMaskIndex(dataset)
        assert index.packed_matrix.shape[1] == 1
        rows = sample_rows(dataset, 2)
        index.append(rows)
        rebuilt = PredicateMaskIndex(dataset.with_records(rows))
        assert index.packed_matrix.shape[1] == 2
        assert np.array_equal(index.packed_matrix, rebuilt.packed_matrix)

    def test_stale_base_commit_rejected(self):
        dataset = salary_reduced(n_records=30, seed=6)
        index = PredicateMaskIndex(dataset)
        pending = index.prepare_append(sample_rows(dataset, 1))
        index.append(sample_rows(dataset, 1, start=5))
        with pytest.raises(ContextError, match="stale"):
            index.commit_append(pending)


# ------------------------------------------------- profile invalidation


class TestProfileInvalidation:
    def test_only_containing_contexts_dropped(self):
        store = ProfileStore(capacity=16)
        record_bits = 0b0011
        containing = 0b0111  # population could have grown
        disjoint = 0b0100  # cannot match the appended record
        store.put(containing, (5, frozenset()))
        store.put(disjoint, (3, frozenset()))
        dropped = store.invalidate_matching([record_bits], version=1)
        assert dropped == 1
        assert store.peek(containing) is None
        assert store.peek(disjoint) == (3, frozenset())
        assert store.version == 1
        assert store.invalidations == 1

    def test_stale_put_fenced_out(self):
        store = ProfileStore(capacity=16)
        store.invalidate_matching([], version=1)
        store.put(0b1, (2, frozenset()), version=0)  # raced the append
        assert store.peek(0b1) is None
        assert store.stale_puts == 1
        store.put(0b1, (2, frozenset()), version=1)
        assert store.peek(0b1) == (2, frozenset())

    def test_version_never_goes_backwards(self):
        store = ProfileStore(capacity=4)
        store.invalidate_matching([], version=3)
        store.invalidate_matching([], version=1)
        assert store.version == 3


# ------------------------------------------------------- engine append


class TestEngineAppend:
    def test_release_after_append_matches_fresh_engine(
        self, mini_dataset, mini_outlier
    ):
        rows = sample_rows(mini_dataset, 8)
        live = ReleaseEngine(mini_dataset)
        request = ReleaseRequest(mini_outlier, _spec(), seed=17)
        before = live.submit(request)
        assert before.dataset_version == 0

        info = live.append(rows)
        assert info["appended"] == 8
        assert info["dataset_version"] == 1
        assert info["n_records"] == len(mini_dataset) + 8
        assert len(info["record_ids"]) == 8

        after = live.submit(ReleaseRequest(mini_outlier, _spec(), seed=17))
        fresh = ReleaseEngine(mini_dataset.with_records(rows))
        expected = fresh.submit(ReleaseRequest(mini_outlier, _spec(), seed=17))
        assert after.context.bits == expected.context.bits
        assert after.utility_value == expected.utility_value
        assert after.dataset_version == 1

        metrics = live.metrics()
        assert metrics.appends == 1
        assert metrics.dataset_version == 1

    def test_append_invalidates_only_matching_profiles(
        self, mini_dataset, mini_outlier
    ):
        engine = ReleaseEngine(mini_dataset)
        engine.submit(ReleaseRequest(mini_outlier, _spec(), seed=17))
        cached_before = engine.metrics().profiles_cached
        assert cached_before > 0
        # Appending a clone of an existing record invalidates the cached
        # profiles of exactly the contexts containing it — some survive.
        info = engine.append(sample_rows(mini_dataset, 1))
        assert 0 < info["invalidated_profiles"] <= cached_before

    def test_empty_append_is_a_noop(self, mini_dataset):
        engine = ReleaseEngine(mini_dataset)
        info = engine.append([])
        assert info == {
            "appended": 0,
            "record_ids": [],
            "n_records": len(mini_dataset),
            "dataset_version": 0,
            "invalidated_profiles": 0,
        }

    def test_ledger_charges_carry_dataset_version(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset, budget=10.0)
        engine.submit(ReleaseRequest(mini_outlier, _spec(), seed=3))
        engine.append(sample_rows(mini_dataset, 1))
        engine.submit(ReleaseRequest(mini_outlier, _spec(), seed=4))
        labels = [label for label, _ in engine.accountant.ledger()]
        assert "dataset_v0" in labels[0]
        assert "dataset_v1" in labels[-1]


# ------------------------------------------------------------ HTTP route


class TestServerAppend:
    RECORDS = 300
    SEED = 3

    @pytest.fixture(scope="class")
    def server(self):
        from repro.server import PCORServer, ServerConfig

        config = ServerConfig.from_dict(
            {
                "server": {"port": 0},
                "datasets": {
                    "salary": {
                        "source": "salary_reduced",
                        "records": self.RECORDS,
                        "seed": self.SEED,
                    }
                },
            }
        )
        with PCORServer(config) as srv:
            yield srv

    @pytest.fixture()
    def client(self, server):
        from repro.server import PCORClient

        return PCORClient(server.url, tenant="appender")

    def test_append_grows_dataset_and_bumps_version(self, client):
        dataset = salary_reduced(n_records=self.RECORDS, seed=self.SEED)
        summary = client.append("salary", sample_rows(dataset, 4))
        assert summary["dataset"] == "salary"
        assert summary["appended"] == 4
        assert summary["dataset_version"] == 1
        assert summary["n_records"] == self.RECORDS + 4
        assert len(summary["record_ids"]) == 4
        # A release against the grown dataset is stamped with the version.
        outlier = self._outlier(dataset)
        body = client.release(
            "salary",
            record_id=outlier,
            spec={
                "detector": "zscore",
                "detector_kwargs": ZSCORE_KWARGS,
                "sampler": "uniform",
                "epsilon": 0.1,
                "n_samples": 3,
            },
        )
        assert body["result"]["dataset_version"] == 1

    def test_bad_rows_are_400_and_commit_nothing(self, client):
        dataset = salary_reduced(n_records=self.RECORDS, seed=self.SEED)
        good = sample_rows(dataset, 1)[0]
        bad = dict(good)
        bad[dataset.schema.attributes[0].name] = "not-a-domain-value"
        with pytest.raises(SpecError, match="not in domain"):
            client.append("salary", [bad])
        with pytest.raises(SpecError, match="non-empty 'records' list"):
            client.append("salary", [])
        with pytest.raises(SpecError, match="unknown append field"):
            client._request(
                "POST",
                "/v1/datasets/salary/append",
                {"records": [good], "rows": [good]},
            )

    @staticmethod
    def _outlier(dataset) -> int:
        from repro.core.verification import OutlierVerifier
        from repro.outliers.zscore import ZScoreDetector

        verifier = OutlierVerifier(
            dataset, ZScoreDetector(z_threshold=2.5, min_population=8)
        )
        for rid in map(int, dataset.ids):
            if verifier.is_matching(dataset.record_bits(rid), rid):
                return rid
        raise AssertionError("no contextual outlier in the test dataset")


# ------------------------------------------- process backend live rebind


class TestProcessBackendLiveRebind:
    def test_pool_survives_append_and_stays_bit_identical(
        self, mini_dataset, mini_outlier
    ):
        from multiprocessing import shared_memory

        def segment_exists(name: str) -> bool:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                return False
            shm.close()
            return True

        engine = ReleaseEngine(mini_dataset, backend="process", workers=2)
        try:
            requests = [
                ReleaseRequest(mini_outlier, _spec(), seed=s) for s in (1, 2)
            ]
            engine.submit_many(requests)
            pool = engine.backend._pool
            initial_segment = engine.backend._export.shm.name

            engine.append(sample_rows(mini_dataset, 4))
            live = engine.submit_many(
                [ReleaseRequest(mini_outlier, _spec(), seed=s) for s in (1, 2)]
            )
            # Same worker pool, new shared segment alongside the initial
            # one (late-spawning workers may still need the original).
            assert engine.backend._pool is pool
            new_segment = engine.backend._export.shm.name
            assert new_segment != initial_segment
            assert segment_exists(initial_segment)
            assert segment_exists(new_segment)
            assert engine.backend._export.handle.dataset_version == 1

            fresh = ReleaseEngine(mini_dataset.with_records(sample_rows(mini_dataset, 4)))
            expected = fresh.submit_many(
                [ReleaseRequest(mini_outlier, _spec(), seed=s) for s in (1, 2)]
            )
            assert [r.context.bits for r in live] == [
                r.context.bits for r in expected
            ]
            assert all(r.dataset_version == 1 for r in live)
        finally:
            engine.close()
        assert not segment_exists(initial_segment)
        assert not segment_exists(new_segment)

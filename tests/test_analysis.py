"""Tests for COE-structure analysis and budgeted release sessions."""

import numpy as np
import pytest

from repro.analysis.coe_structure import analyze_coe, coe_structure_report
from repro.analysis.session import ReleaseSession
from repro.core.pcor import PCOR
from repro.core.sampling import BFSSampler
from repro.core.starting import starting_context_from_reference
from repro.exceptions import EnumerationError, PrivacyBudgetError


class TestAnalyzeCOE:
    def test_counts_are_consistent(self, mini_reference, mini_outlier):
        s = analyze_coe(mini_reference, mini_outlier)
        assert s.record_id == mini_outlier
        assert s.n_matching == len(mini_reference.matching_contexts(mini_outlier))
        assert sum(s.component_sizes) == s.n_matching
        assert s.n_components == len(s.component_sizes)
        assert s.component_sizes == tuple(sorted(s.component_sizes, reverse=True))

    def test_coverage_and_ceiling_bounds(self, mini_reference, mini_outlier):
        s = analyze_coe(mini_reference, mini_outlier)
        assert 0.0 < s.max_component_coverage <= 1.0
        assert 0.0 < s.expected_ceiling_ratio <= 1.0 + 1e-12
        assert s.mean_distance_to_best >= 0.0

    def test_connected_means_full_coverage(self, mini_reference):
        for rid in mini_reference.outlier_records()[:20]:
            s = analyze_coe(mini_reference, rid)
            if s.is_connected:
                assert s.max_component_coverage == 1.0
                # A connected COE lets any search reach the global best.
                assert s.expected_ceiling_ratio == pytest.approx(1.0)

    def test_max_population_matches_reference(self, mini_reference, mini_outlier):
        s = analyze_coe(mini_reference, mini_outlier)
        assert s.max_population == int(
            mini_reference.max_population_utility(mini_outlier)
        )

    def test_no_matching_contexts_raises(self, mini_reference, mini_dataset):
        outliers = set(mini_reference.outlier_records())
        normal = next(int(r) for r in mini_dataset.ids if int(r) not in outliers)
        with pytest.raises(EnumerationError, match="no matching contexts"):
            analyze_coe(mini_reference, normal)

    def test_max_contexts_guard(self, mini_reference, mini_outlier):
        with pytest.raises(EnumerationError, match="refused"):
            analyze_coe(mini_reference, mini_outlier, max_contexts=1)

    def test_ceiling_predicts_sampler_limit(
        self, mini_dataset, mini_detector, mini_verifier, mini_reference
    ):
        """The structural ceiling really does bound BFS utility ratios."""
        rid = mini_reference.outlier_records()[0]
        structure = analyze_coe(mini_reference, rid)
        pcor = PCOR(
            mini_dataset, mini_detector, epsilon=5.0,  # near-greedy
            sampler=BFSSampler(n_samples=len(mini_reference.matching_contexts(rid))),
            verifier=mini_verifier,
        )
        # Start from the *worst* component seed: a min-population context.
        start = starting_context_from_reference(mini_reference, rid, mode="min")
        result = pcor.release(rid, starting_context=start, seed=0)
        reachable_best = max(
            mini_reference.population_size(b)
            for b in _component_of(mini_reference, rid, start.bits)
        )
        assert result.utility_value <= reachable_best + 1e-9


def _component_of(reference, rid, start_bits):
    t = reference.schema.t
    matching = set(reference.matching_contexts(rid))
    seen = {start_bits}
    frontier = [start_bits]
    while frontier:
        cur = frontier.pop()
        for b in range(t):
            nb = cur ^ (1 << b)
            if nb in matching and nb not in seen:
                seen.add(nb)
                frontier.append(nb)
    return seen


class TestStructureReport:
    def test_aggregate_metrics(self, mini_reference):
        rids = mini_reference.outlier_records()[:10]
        report = coe_structure_report(mini_reference, rids)
        assert report["n_records"] == 10.0
        assert 0.0 <= report["connected_fraction"] <= 1.0
        assert report["mean_components"] >= 1.0
        assert 0.0 < report["mean_ceiling_ratio"] <= 1.0 + 1e-12
        assert report["mean_coe_size"] > 0.0

    def test_empty_rejected(self, mini_reference):
        with pytest.raises(EnumerationError):
            coe_structure_report(mini_reference, [])


class TestReleaseSession:
    @pytest.fixture()
    def session(self, mini_dataset, mini_detector, mini_verifier):
        pcor = PCOR(
            mini_dataset, mini_detector, epsilon=0.2,
            sampler=BFSSampler(n_samples=6), verifier=mini_verifier,
        )
        return ReleaseSession(pcor, total_budget=0.5)

    def test_spend_accumulates(self, session, mini_reference, mini_outlier):
        start = starting_context_from_reference(mini_reference, mini_outlier, 0)
        session.release(mini_outlier, starting_context=start, seed=1)
        assert session.spent == pytest.approx(0.2)
        session.release(mini_outlier, starting_context=start, seed=2)
        assert session.spent == pytest.approx(0.4)
        assert len(session.results) == 2

    def test_over_budget_refused_before_release(
        self, session, mini_reference, mini_outlier
    ):
        start = starting_context_from_reference(mini_reference, mini_outlier, 0)
        session.release(mini_outlier, starting_context=start, seed=1)
        session.release(mini_outlier, starting_context=start, seed=2)
        assert not session.can_release()  # 0.1 left < 0.2 needed
        with pytest.raises(PrivacyBudgetError, match="remains"):
            session.release(mini_outlier, starting_context=start, seed=3)
        assert len(session.results) == 2  # third never happened

    def test_ledger_report(self, session, mini_reference, mini_outlier):
        start = starting_context_from_reference(mini_reference, mini_outlier, 0)
        session.release(mini_outlier, starting_context=start, seed=1)
        report = session.ledger_report()
        assert "budget 0.5" in report
        assert f"record={mini_outlier}" in report

"""Unit tests for the direct approach (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.direct import DirectPCOR
from repro.core.utility import PopulationSizeUtility
from repro.exceptions import SamplingError
from repro.mechanisms.accounting import epsilon_one_for


class TestRelease:
    def test_released_context_is_matching(self, mini_verifier, mini_outlier, rng):
        direct = DirectPCOR(mini_verifier, epsilon=0.2)
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        result = direct.release(util, mini_outlier, rng)
        assert mini_verifier.is_matching(result.context.bits, mini_outlier)

    def test_candidate_pool_is_full_coe(self, mini_verifier, mini_reference, mini_outlier, rng):
        direct = DirectPCOR(mini_verifier, epsilon=0.2)
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        result = direct.release(util, mini_outlier, rng)
        assert result.n_candidates == len(mini_reference.matching_contexts(mini_outlier))

    def test_budget_split(self, mini_verifier, mini_outlier, rng):
        direct = DirectPCOR(mini_verifier, epsilon=0.4)
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        result = direct.release(util, mini_outlier, rng)
        assert result.epsilon_total == 0.4
        assert result.epsilon_one == pytest.approx(epsilon_one_for("direct", 0.4))

    def test_enumerate_all_same_candidates(self, mini_verifier, mini_outlier):
        containing = DirectPCOR(mini_verifier, epsilon=0.2, enumerate_mode="containing")
        everything = DirectPCOR(mini_verifier, epsilon=0.2, enumerate_mode="all")
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        r1 = containing.release(util, mini_outlier, np.random.default_rng(5))
        r2 = everything.release(util, mini_outlier, np.random.default_rng(5))
        assert r1.n_candidates == r2.n_candidates
        # "all" examines the whole 2^t space; "containing" only 2^(t-m).
        assert r2.stats.contexts_examined > r1.stats.contexts_examined

    def test_no_matching_contexts_raises(self, mini_verifier, mini_reference, mini_dataset, rng):
        outliers = set(mini_reference.outlier_records())
        normal = next(int(r) for r in mini_dataset.ids if int(r) not in outliers)
        direct = DirectPCOR(mini_verifier, epsilon=0.2)
        util = PopulationSizeUtility(mini_verifier, normal)
        with pytest.raises(SamplingError, match="no matching context"):
            direct.release(util, normal, rng)

    def test_bad_enumerate_mode(self, mini_verifier):
        with pytest.raises(SamplingError, match="enumerate_mode"):
            DirectPCOR(mini_verifier, enumerate_mode="fast")

    def test_favors_large_populations(self, mini_verifier, mini_reference, mini_outlier):
        """With a decisive epsilon the direct mechanism picks near-max contexts."""
        direct = DirectPCOR(mini_verifier, epsilon=50.0)  # essentially greedy
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        max_util = mini_reference.max_population_utility(mini_outlier)
        gen = np.random.default_rng(0)
        for _ in range(5):
            result = direct.release(util, mini_outlier, gen)
            assert result.utility_value == pytest.approx(max_util)

    def test_result_metadata(self, mini_verifier, mini_outlier, rng):
        direct = DirectPCOR(mini_verifier, epsilon=0.2)
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        result = direct.release(util, mini_outlier, rng)
        assert result.algorithm == "direct"
        assert result.record_id == mini_outlier
        assert result.utility_name == "population_size"
        assert result.wall_time_s > 0
        assert result.stats.mechanism_invocations == 1

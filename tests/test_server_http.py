"""End-to-end HTTP tests: routes, typed errors, durability, bit-identity.

Runs a real :class:`PCORServer` on an ephemeral port and speaks to it with
:class:`PCORClient` — the full wire path, not handler unit tests.
"""

import json
import urllib.request

import pytest

from repro.data.generators import salary_reduced
from repro.exceptions import (
    PrivacyBudgetError,
    ReproError,
    ServerError,
    SpecError,
)
from repro.server import PCORClient, PCORServer, ServerConfig
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

RECORDS = 300
SEED = 3

SPEC = {
    "detector": "zscore",
    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
    "sampler": "uniform",
    "epsilon": 0.1,
    "n_samples": 3,
}


def server_config(tmp_path=None, tenant_budget=0.2, budget=100.0) -> ServerConfig:
    body = {
        "server": {"port": 0},
        "datasets": {
            "salary": {
                "source": "salary_reduced",
                "records": RECORDS,
                "seed": SEED,
                "budget": budget,
                "tenant_budget": tenant_budget,
            },
            "other": {"source": "salary_reduced", "records": 200, "seed": 9},
        },
    }
    if tmp_path is not None:
        body["server"].update(
            {"ledger": "jsonl", "ledger_dir": str(tmp_path / "ledgers")}
        )
    return ServerConfig.from_dict(body)


@pytest.fixture(scope="module")
def outlier_record() -> int:
    """A record of the served dataset that has a matching context."""
    from repro.core.verification import OutlierVerifier
    from repro.outliers.zscore import ZScoreDetector

    dataset = salary_reduced(n_records=RECORDS, seed=SEED)
    verifier = OutlierVerifier(
        dataset, ZScoreDetector(z_threshold=2.5, min_population=8)
    )
    for rid in map(int, dataset.ids):
        if verifier.is_matching(dataset.record_bits(rid), rid):
            return rid
    raise AssertionError("no contextual outlier in the test dataset")


@pytest.fixture(scope="module")
def server():
    with PCORServer(server_config()) as srv:
        yield srv


@pytest.fixture()
def client(server) -> PCORClient:
    return PCORClient(server.url, tenant="alice")


class TestRoutes:
    def test_healthz(self, client):
        body = client.health()
        assert body["status"] == "ok"
        assert body["datasets"] == ["other", "salary"]

    def test_list_datasets(self, client):
        datasets = client.datasets()
        assert set(datasets) == {"salary", "other"}
        assert datasets["salary"]["budget"] == 100.0
        assert datasets["other"]["budget"] is None

    def test_unknown_route_is_404(self, server):
        request = urllib.request.Request(server.url + "/v2/nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404

    def test_release_and_budget(self, server, outlier_record):
        client = PCORClient(server.url, tenant="release-tester")
        response = client.release(
            "salary", record_id=outlier_record, spec=SPEC, seed=42
        )
        result = response["result"]
        assert result["record_id"] == outlier_record
        assert result["algorithm"] == "uniform"
        assert isinstance(result["context"]["bits"], int)
        assert response["budget"]["spent"] == pytest.approx(0.1)
        budget = client.budget(dataset="salary")
        assert budget["tenant"] == "release-tester"
        assert budget["datasets"]["salary"]["spent"] == pytest.approx(0.1)
        assert budget["datasets"]["salary"]["remaining"] == pytest.approx(0.1)

    def test_pipeline_spec_instances_serialize(self, server, outlier_record):
        client = PCORClient(server.url, tenant="spec-instance")
        spec = PipelineSpec.from_dict(SPEC)
        response = client.release(
            "salary", record_id=outlier_record, spec=spec, seed=7
        )
        assert response["result"]["epsilon_total"] == pytest.approx(0.1)


class TestTypedErrors:
    def test_tenant_exhaustion_is_402_privacy_budget_error(
        self, server, outlier_record
    ):
        client = PCORClient(server.url, tenant="exhausted")
        client.release("salary", record_id=outlier_record, spec=SPEC, seed=1)
        client.release("salary", record_id=outlier_record, spec=SPEC, seed=2)
        with pytest.raises(PrivacyBudgetError, match="tenant 'exhausted'"):
            client.release("salary", record_id=outlier_record, spec=SPEC, seed=3)
        # A different analyst is unaffected.
        other = PCORClient(server.url, tenant="fresh")
        other.release("salary", record_id=outlier_record, spec=SPEC, seed=4)

    def test_missing_tenant_header_is_400(self, server):
        request = urllib.request.Request(server.url + "/v1/budget")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["type"] == "SpecError"

    def test_unknown_dataset_is_404(self, client):
        with pytest.raises(ServerError, match="unknown dataset"):
            client.release("nope", record_id=1, spec=SPEC)

    def test_bad_spec_is_400_spec_error_and_charges_nothing(
        self, server, outlier_record
    ):
        client = PCORClient(server.url, tenant="bad-spec")
        with pytest.raises(SpecError, match="unknown detector"):
            client.release(
                "salary", record_id=outlier_record, spec={"detector": "nope"}
            )
        assert client.budget(dataset="salary")["datasets"]["salary"]["spent"] == 0.0

    def test_malformed_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/datasets/salary/release",
            data=b"not json",
            headers={"X-PCOR-Tenant": "x", "Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_body_field_is_400(self, server, outlier_record):
        client = PCORClient(server.url, tenant="x")
        with pytest.raises(SpecError, match="unknown release field"):
            client._request(
                "POST",
                "/v1/datasets/salary/release",
                {"record_id": outlier_record, "spec": SPEC, "bogus": 1},
            )

    def test_non_integer_record_id_is_400(self, server):
        client = PCORClient(server.url, tenant="x")
        with pytest.raises(SpecError, match="record_id"):
            client._request(
                "POST",
                "/v1/datasets/salary/release",
                {"record_id": "seventeen", "spec": SPEC},
            )

    def test_keep_alive_survives_posts_to_error_routes(
        self, server, outlier_record
    ):
        """The handler must drain an unread POST body before answering an
        error, or the leftover bytes desync the keep-alive connection."""
        client = PCORClient(server.url, tenant="keep-alive")
        assert client.health()["status"] == "ok"
        conn = client._conn
        with pytest.raises(ServerError, match="no such route"):
            client._request(
                "POST",
                "/v1/not-a-route",
                {"record_id": outlier_record, "spec": SPEC, "seed": 1},
            )
        with pytest.raises(ServerError, match="unknown dataset"):
            client.release("nope", record_id=outlier_record, spec=SPEC)
        # Same connection, next request parses cleanly.
        assert client._conn is conn
        assert client.health()["status"] == "ok"

    def test_failed_release_is_422_but_charged(self, server):
        """A record with no matching context fails mid-run: the epsilon is
        already spent (an aborted mechanism run may leak) and the error
        maps to 422, not 400/402."""
        client = PCORClient(server.url, tenant="charged-anyway")
        before = client.budget(dataset="salary")["datasets"]["salary"]["spent"]
        with pytest.raises(ReproError) as excinfo:
            client.release("salary", record_id=10**9, spec=SPEC, seed=5)
        assert not isinstance(excinfo.value, (SpecError, PrivacyBudgetError))
        after = client.budget(dataset="salary")["datasets"]["salary"]["spent"]
        assert after == pytest.approx(before + 0.1)


class TestBitIdentity:
    def test_http_release_matches_direct_engine_submit(
        self, server, outlier_record
    ):
        """Same seed, same spec → the served release is bit-identical to an
        in-process engine.submit on an identically-built dataset."""
        spec = PipelineSpec.from_dict(SPEC)
        engine = ReleaseEngine(salary_reduced(n_records=RECORDS, seed=SEED))
        for seed in (11, 12, 13):
            # One tenant per seed: the identity check must not be cut short
            # by the module server's small per-tenant quota.
            client = PCORClient(server.url, tenant=f"identity-{seed}")
            served = client.release(
                "salary", record_id=outlier_record, spec=SPEC, seed=seed
            )["result"]
            direct = engine.submit(
                ReleaseRequest(record_id=outlier_record, spec=spec, seed=seed)
            )
            assert served["context"]["bits"] == direct.context.bits
            assert served["utility_value"] == pytest.approx(direct.utility_value)
            assert served["epsilon_one"] == pytest.approx(direct.epsilon_one)
            assert served["n_candidates"] == direct.n_candidates
        engine.close()


class TestMetrics:
    def test_metrics_are_monotonic_and_tenant_broken_down(
        self, server, outlier_record
    ):
        client = PCORClient(server.url, tenant="metrics-tenant")
        before = client.metrics()
        client.release("salary", record_id=outlier_record, spec=SPEC, seed=21)
        after = client.metrics()
        b, a = before["datasets"]["salary"], after["datasets"]["salary"]
        for key in ("requests_submitted", "releases_completed", "epsilon_spent",
                    "ledger_charges", "fm_queries"):
            assert a[key] >= b[key], f"{key} went backwards"
        assert a["releases_completed"] == b["releases_completed"] + 1
        assert a["spend_by_tenant"]["metrics-tenant"] == pytest.approx(0.1)
        assert a["epsilon_budget"] == 100.0
        assert after["server"]["responses_by_status"]["2xx"] >= 2

    def test_unbuilt_dataset_still_reports(self, server):
        client = PCORClient(server.url, tenant="x")
        body = client.metrics()["datasets"]["other"]
        assert body["epsilon_spent"] == 0.0
        assert body["spend_by_tenant"] == {}


class TestRestartDurability:
    def test_exhausted_tenant_stays_exhausted_across_restart(
        self, tmp_path, outlier_record
    ):
        """The acceptance scenario: spend to exhaustion over a JSONL WAL,
        kill the server, restart on the same ledger path — the next request
        is rejected with 402 *before* any detector run."""
        with PCORServer(server_config(tmp_path)) as server:
            client = PCORClient(server.url, tenant="doomed")
            client.release("salary", record_id=outlier_record, spec=SPEC, seed=1)
            client.release("salary", record_id=outlier_record, spec=SPEC, seed=2)

        with PCORServer(server_config(tmp_path)) as server:
            client = PCORClient(server.url, tenant="doomed")
            budget = client.budget(dataset="salary")["datasets"]["salary"]
            assert budget["spent"] == pytest.approx(0.2)
            assert budget["remaining"] == pytest.approx(0.0)
            with pytest.raises(PrivacyBudgetError, match="tenant 'doomed'"):
                client.release(
                    "salary", record_id=outlier_record, spec=SPEC, seed=3
                )
            # Rejection happened at admission: the dataset engine (and hence
            # the detector) was never even built.
            entry = server.registry.get("salary")
            assert not entry.built
            assert client.datasets()["salary"]["built"] is False
            # The global ledger replayed too.
            assert client.datasets()["salary"]["spent"] == pytest.approx(0.2)

    def test_restart_preserves_bit_identity(self, tmp_path, outlier_record):
        """Replay must not perturb RNG or engine state: a post-restart
        release equals the same release on a fresh in-process engine."""
        with PCORServer(server_config(tmp_path, tenant_budget=5.0)) as server:
            PCORClient(server.url, tenant="warm").release(
                "salary", record_id=outlier_record, spec=SPEC, seed=1
            )
        with PCORServer(server_config(tmp_path, tenant_budget=5.0)) as server:
            served = PCORClient(server.url, tenant="warm").release(
                "salary", record_id=outlier_record, spec=SPEC, seed=77
            )["result"]
        engine = ReleaseEngine(salary_reduced(n_records=RECORDS, seed=SEED))
        direct = engine.submit(
            ReleaseRequest(
                record_id=outlier_record,
                spec=PipelineSpec.from_dict(SPEC),
                seed=77,
            )
        )
        assert served["context"]["bits"] == direct.context.bits
        engine.close()


class TestDrainWindow:
    """Shutdown drain semantics: typed 503s with Retry-After for guarded
    routes, while /healthz keeps answering — reporting "draining" — so
    probes (and the cluster router's heartbeats) can tell a deliberately
    stopping server from a dead one."""

    def test_guarded_routes_get_typed_503_with_retry_after(self):
        with PCORServer(server_config()) as server:
            client = PCORClient(server.url, tenant="drain", retry_503=0)
            assert client.health()["status"] == "ok"
            server.drain.drain(timeout=0.5)  # stop admitting, like SIGTERM

            # /healthz still answers, now reporting the drain.
            assert client.health()["status"] == "draining"

            # Guarded routes: typed JSON error payload, 503, Retry-After.
            request = urllib.request.Request(
                server.url + "/v1/datasets", headers={"X-PCOR-Tenant": "drain"}
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None
            payload = json.loads(excinfo.value.read())
            assert payload["error"]["type"] == "ServerError"
            assert payload["error"]["status"] == 503
            assert "shutting down" in payload["error"]["message"]

            # The client resurrects it as the public exception class.
            with pytest.raises(ServerError, match="shutting down"):
                client.datasets()


class _FlakyHandler(__import__("http.server", fromlist=["BaseHTTPRequestHandler"]).BaseHTTPRequestHandler):
    """Stub server: 503 + Retry-After on the first N requests per method,
    then 200 — the shape a draining server or a respawning shard presents."""

    def _serve(self, method):
        counts = self.server.counts  # type: ignore[attr-defined]
        counts[method] = counts.get(method, 0) + 1
        if counts[method] <= self.server.fail_first:  # type: ignore[attr-defined]
            body = (
                b'{"error": {"type": "ServerError", '
                b'"message": "try later", "status": 503}}'
            )
            self.send_response(503)
            self.send_header("Retry-After", "0")
        else:
            body = b'{"datasets": {}, "result": {}}'
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802
        self._serve("GET")

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        self.rfile.read(length)
        self._serve("POST")

    def log_message(self, *args):  # noqa: A002
        pass


@pytest.fixture()
def flaky_server():
    import http.server
    import threading

    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    httpd.counts = {}
    httpd.fail_first = 1
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        httpd.server_close()


class TestClientRetryAfter:
    def test_idempotent_get_rides_out_503(self, flaky_server):
        """A GET answered 503-with-Retry-After is retried (capped wait) —
        reads are idempotent, and router shards 503 transiently while a
        crashed worker respawns."""
        url = f"http://127.0.0.1:{flaky_server.server_address[1]}"
        client = PCORClient(url, tenant="x", retry_503=2)
        assert client.datasets() == {}
        assert flaky_server.counts["GET"] == 2  # one 503, one success

    def test_get_gives_up_after_retry_budget(self, flaky_server):
        flaky_server.fail_first = 10
        url = f"http://127.0.0.1:{flaky_server.server_address[1]}"
        client = PCORClient(url, tenant="x", retry_503=2, max_retry_after_s=0.01)
        with pytest.raises(ServerError, match="try later"):
            client.datasets()
        assert flaky_server.counts["GET"] == 3  # initial + 2 retries

    def test_release_post_is_never_blindly_resent(self, flaky_server):
        """The server may have admitted — and fsync'd — the charge before
        the 503 raced the drain; resending would double-spend epsilon.  The
        client must surface the 503 after exactly one attempt."""
        url = f"http://127.0.0.1:{flaky_server.server_address[1]}"
        client = PCORClient(url, tenant="x", retry_503=5)
        with pytest.raises(ServerError, match="try later"):
            client.release("salary", record_id=1, spec=SPEC, seed=1)
        assert flaky_server.counts["POST"] == 1

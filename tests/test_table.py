"""Unit tests for the column-store Dataset."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.exceptions import DatasetError
from repro.schema import CategoricalAttribute, MetricAttribute, Schema


@pytest.fixture(scope="module")
def schema() -> Schema:
    return Schema(
        attributes=[
            CategoricalAttribute("Color", ["red", "green", "blue"]),
            CategoricalAttribute("Size", ["S", "M", "L"]),
        ],
        metric=MetricAttribute("Weight"),
    )


@pytest.fixture()
def dataset(schema) -> Dataset:
    return Dataset(
        schema,
        columns={
            "Color": ["red", "green", "blue", "red"],
            "Size": ["S", "M", "L", "M"],
        },
        metric_values=[1.0, 2.0, 3.0, 4.0],
    )


class TestConstruction:
    def test_len(self, dataset):
        assert len(dataset) == 4
        assert dataset.n_records == 4

    def test_default_ids(self, dataset):
        assert list(dataset.ids) == [0, 1, 2, 3]

    def test_explicit_ids(self, schema):
        ds = Dataset(
            schema,
            columns={"Color": ["red"], "Size": ["S"]},
            metric_values=[1.0],
            ids=[42],
        )
        assert list(ds.ids) == [42]
        assert ds.position_of(42) == 0

    def test_from_records(self, schema):
        ds = Dataset.from_records(
            schema,
            [
                {"Color": "red", "Size": "S", "Weight": 1.5},
                {"Color": "blue", "Size": "L", "Weight": 2.5},
            ],
        )
        assert len(ds) == 2
        assert ds.record(1)["Color"] == "blue"

    def test_missing_column_rejected(self, schema):
        with pytest.raises(DatasetError, match="missing column"):
            Dataset(schema, columns={"Color": ["red"]}, metric_values=[1.0])

    def test_length_mismatch_rejected(self, schema):
        with pytest.raises(DatasetError, match="rows"):
            Dataset(
                schema,
                columns={"Color": ["red", "green"], "Size": ["S"]},
                metric_values=[1.0, 2.0],
            )

    def test_unknown_value_rejected(self, schema):
        with pytest.raises(DatasetError, match="not in domain"):
            Dataset(
                schema,
                columns={"Color": ["purple"], "Size": ["S"]},
                metric_values=[1.0],
            )

    def test_non_finite_metric_rejected(self, schema):
        with pytest.raises(DatasetError, match="non-finite"):
            Dataset(
                schema,
                columns={"Color": ["red"], "Size": ["S"]},
                metric_values=[float("nan")],
            )

    def test_duplicate_ids_rejected(self, schema):
        with pytest.raises(DatasetError, match="unique"):
            Dataset(
                schema,
                columns={"Color": ["red", "red"], "Size": ["S", "S"]},
                metric_values=[1.0, 2.0],
                ids=[1, 1],
            )

    def test_missing_metric_in_record(self, schema):
        with pytest.raises(DatasetError, match="missing metric"):
            Dataset.from_records(schema, [{"Color": "red", "Size": "S"}])


class TestAccess:
    def test_metric_view_read_only(self, dataset):
        with pytest.raises(ValueError):
            dataset.metric[0] = 99.0

    def test_codes(self, dataset):
        assert list(dataset.codes("Color")) == [0, 1, 2, 0]

    def test_codes_unknown_column(self, dataset):
        with pytest.raises(DatasetError):
            dataset.codes("Nope")

    def test_record_materialisation(self, dataset):
        rec = dataset.record(2)
        assert rec == {"Color": "blue", "Size": "L", "Weight": 3.0}

    def test_record_unknown_id(self, dataset):
        with pytest.raises(DatasetError, match="no record"):
            dataset.record(99)

    def test_has_record(self, dataset):
        assert dataset.has_record(0)
        assert not dataset.has_record(99)

    def test_iter_records(self, dataset):
        rows = list(dataset.iter_records())
        assert len(rows) == 4
        assert rows[0][0] == 0
        assert rows[0][1]["Color"] == "red"


class TestRecordBits:
    def test_record_bits_match_schema(self, dataset, schema):
        bits = dataset.record_bits(3)
        assert bits == schema.record_bits({"Color": "red", "Size": "M"})

    def test_all_record_bits_have_weight_m(self, dataset, schema):
        for bits in dataset.all_record_bits():
            assert int(bits).bit_count() == schema.m


class TestImmutability:
    def test_without_records_drops_and_preserves_ids(self, dataset):
        smaller = dataset.without_records([1])
        assert len(smaller) == 3
        assert list(smaller.ids) == [0, 2, 3]
        assert smaller.record(2)["Color"] == "blue"
        # Original untouched.
        assert len(dataset) == 4

    def test_without_positions_out_of_range(self, dataset):
        with pytest.raises(DatasetError, match="out of range"):
            dataset.without_positions([10])

    def test_with_records_appends_fresh_ids(self, dataset):
        bigger = dataset.with_records(
            [{"Color": "green", "Size": "S", "Weight": 9.0}]
        )
        assert len(bigger) == 5
        assert list(bigger.ids) == [0, 1, 2, 3, 4]
        assert bigger.record(4)["Weight"] == 9.0

    def test_with_records_empty_noop(self, dataset):
        assert dataset.with_records([]) is dataset

    def test_add_after_remove_does_not_reuse_ids(self, dataset):
        ds = dataset.without_records([3]).with_records(
            [{"Color": "red", "Size": "S", "Weight": 5.0}]
        )
        # Record 3 was removed; the new record must NOT resurrect id 3.
        assert sorted(int(i) for i in ds.ids) == [0, 1, 2, 4]


class TestFromCodes:
    def test_matches_string_constructor(self, schema, dataset):
        rebuilt = Dataset.from_codes(
            schema,
            {"Color": dataset.codes("Color"), "Size": dataset.codes("Size")},
            dataset.metric,
            ids=dataset.ids,
        )
        assert [r for _, r in rebuilt.iter_records()] == [
            r for _, r in dataset.iter_records()
        ]

    def test_does_not_alias_caller_arrays(self, schema):
        codes = {
            "Color": np.array([0, 1, 2], dtype=np.int16),
            "Size": np.array([0, 0, 0], dtype=np.int16),
        }
        ds = Dataset.from_codes(schema, codes, [1.0, 2.0, 3.0])
        codes["Color"][0] = 2  # caller mutates after construction
        assert ds.record(0)["Color"] == "red"

    def test_rejects_out_of_domain_codes(self, schema):
        with pytest.raises(DatasetError, match="outside domain"):
            Dataset.from_codes(
                schema,
                {
                    "Color": np.array([0, 5], dtype=np.int16),
                    "Size": np.array([0, 0], dtype=np.int16),
                },
                [1.0, 2.0],
            )

    def test_rejects_missing_column(self, schema):
        with pytest.raises(DatasetError, match="missing column"):
            Dataset.from_codes(
                schema, {"Color": np.array([0], dtype=np.int16)}, [1.0]
            )

    def test_does_not_alias_metric_or_ids(self, schema):
        metric = np.array([1.0, 2.0, 3.0])
        ids = np.array([7, 8, 9], dtype=np.int64)
        ds = Dataset.from_codes(
            schema,
            {
                "Color": np.array([0, 1, 2], dtype=np.int16),
                "Size": np.array([0, 0, 0], dtype=np.int16),
            },
            metric,
            ids=ids,
        )
        metric[0] = 999.0
        ids[0] = 999
        assert ds.metric[0] == 1.0
        assert int(ds.ids[0]) == 7

    def test_rejects_wrapping_codes(self, schema):
        """Codes that would wrap through the int16 cast must fail loudly."""
        with pytest.raises(DatasetError, match="outside domain"):
            Dataset.from_codes(
                schema,
                {
                    "Color": np.array([65536, 1], dtype=np.int32),  # wraps to 0
                    "Size": np.array([0, 0], dtype=np.int16),
                },
                [1.0, 2.0],
            )

    def test_rejects_float_codes(self, schema):
        with pytest.raises(DatasetError, match="integer array"):
            Dataset.from_codes(
                schema,
                {
                    "Color": np.array([0.9, 1.0]),
                    "Size": np.array([0, 0], dtype=np.int16),
                },
                [1.0, 2.0],
            )

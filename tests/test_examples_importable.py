"""Examples stay loadable: every example compiles and defines main().

Running the examples end to end takes minutes (they are exercised by
``make examples`` / CI); here we guarantee they can never bit-rot silently:
each file must parse, compile and expose a ``main`` callable guarded by
``if __name__ == "__main__"``.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_defines_main_and_guard(path):
    tree = ast.parse(path.read_text())
    names = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
    assert "main" in names, f"{path.name} must define main()"
    guards = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
    ]
    assert guards, f"{path.name} must have an if __name__ == '__main__' guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_module_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} needs a docstring explaining itself"


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "income_analysis.py",
        "homicide_exploration.py",
        "privacy_utility_tradeoff.py",
        "custom_detector_and_utility.py",
        "paper_scale_release.py",
    } <= names

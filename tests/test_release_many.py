"""Tests for the multi-record ``PCOR.release_many`` facade."""

import numpy as np
import pytest

from repro.core.pcor import PCOR
from repro.core.profiles import ProfileStore
from repro.core.sampling import BFSSampler
from repro.exceptions import SamplingError


def make_pcor(dataset, detector, n_samples=8, **kwargs):
    return PCOR(
        dataset,
        detector,
        epsilon=0.2,
        sampler=BFSSampler(n_samples=n_samples),
        **kwargs,
    )


@pytest.fixture(scope="module")
def outlier_ids(mini_reference):
    ids = mini_reference.outlier_records()
    assert len(ids) >= 2
    return ids[:6]


class TestReleaseMany:
    def test_one_result_per_record_in_order(
        self, mini_dataset, mini_detector, outlier_ids
    ):
        pcor = make_pcor(mini_dataset, mini_detector)
        results = pcor.release_many(outlier_ids, seed=5)
        assert [r.record_id for r in results] == list(outlier_ids)

    def test_results_are_valid_matching_contexts(
        self, mini_dataset, mini_detector, mini_verifier, outlier_ids
    ):
        pcor = make_pcor(mini_dataset, mini_detector)
        for result in pcor.release_many(outlier_ids, seed=5):
            assert mini_verifier.is_matching(result.context.bits, result.record_id)

    def test_deterministic_given_seed(self, mini_dataset, mini_detector, outlier_ids):
        a = make_pcor(mini_dataset, mini_detector).release_many(outlier_ids, seed=11)
        b = make_pcor(mini_dataset, mini_detector).release_many(outlier_ids, seed=11)
        assert [r.context for r in a] == [r.context for r in b]

    def test_per_record_budget_unchanged(
        self, mini_dataset, mini_detector, outlier_ids
    ):
        """Each release spends its own epsilon (parallel-composition caveat
        is the data owner's concern, not silently absorbed here)."""
        pcor = make_pcor(mini_dataset, mini_detector)
        for result in pcor.release_many(outlier_ids, seed=3):
            assert result.epsilon_total == pcor.epsilon

    def test_explicit_starting_contexts(
        self, mini_dataset, mini_detector, mini_reference, outlier_ids
    ):
        starts = [mini_reference.matching_contexts(r)[0] for r in outlier_ids]
        pcor = make_pcor(mini_dataset, mini_detector)
        results = pcor.release_many(outlier_ids, starting_contexts=starts, seed=3)
        assert [r.starting_context.bits for r in results] == starts

    def test_starting_contexts_length_mismatch(
        self, mini_dataset, mini_detector, outlier_ids
    ):
        pcor = make_pcor(mini_dataset, mini_detector)
        with pytest.raises(SamplingError, match="entries for"):
            pcor.release_many(outlier_ids, starting_contexts=[None], seed=3)

    def test_amortises_detector_runs_vs_fresh_instances(
        self, mini_dataset, mini_detector, outlier_ids
    ):
        """The acceptance property: one release_many does strictly fewer
        uncached detector runs than the same releases on fresh instances."""
        batched = make_pcor(mini_dataset, mini_detector)
        batched.release_many(outlier_ids, seed=7)
        amortised = batched.verifier.fm_evaluations

        fresh_total = 0
        for rid in outlier_ids:
            fresh = make_pcor(mini_dataset, mini_detector)
            fresh.release(rid, seed=7)
            fresh_total += fresh.verifier.fm_evaluations
        assert amortised < fresh_total

    def test_share_profiles_spans_instances(self, mini_dataset, mini_detector):
        """Two share_profiles instances use one store; the second benefits."""
        store = ProfileStore()
        first = make_pcor(mini_dataset, mini_detector, profile_store=store)
        second = make_pcor(mini_dataset, mini_detector, profile_store=store)
        assert first.verifier.profile_store is second.verifier.profile_store

    def test_shared_registry_wires_same_store(self, mini_dataset, mini_detector):
        a = make_pcor(mini_dataset, mini_detector, share_profiles=True)
        b = make_pcor(mini_dataset, mini_detector, share_profiles=True)
        assert a.verifier.profile_store is b.verifier.profile_store

    def test_empty_batch(self, mini_dataset, mini_detector):
        pcor = make_pcor(mini_dataset, mini_detector)
        assert pcor.release_many([], seed=1) == []

    def test_single_seed_reproduces_whole_batch(
        self, mini_dataset, mini_detector, outlier_ids
    ):
        rng_a = np.random.default_rng(21)
        rng_b = np.random.default_rng(21)
        a = make_pcor(mini_dataset, mini_detector).release_many(outlier_ids, seed=rng_a)
        b = make_pcor(mini_dataset, mini_detector).release_many(outlier_ids, seed=rng_b)
        assert [r.context for r in a] == [r.context for r in b]

    def test_verifier_excludes_store_kwargs(self, mini_dataset, mini_detector, mini_verifier):
        with pytest.raises(SamplingError, match="not both"):
            make_pcor(mini_dataset, mini_detector, verifier=mini_verifier, share_profiles=True)
        with pytest.raises(SamplingError, match="not both"):
            make_pcor(
                mini_dataset, mini_detector,
                verifier=mini_verifier, profile_store=ProfileStore(),
            )

"""Unit tests for experiment scale presets."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import SCALES, get_scale


class TestScales:
    def test_all_presets_exist(self):
        for name in ("smoke", "small", "medium", "paper"):
            assert name in SCALES

    def test_get_scale(self):
        assert get_scale("small").name == "small"

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError, match="unknown scale"):
            get_scale("galactic")

    def test_paper_scale_matches_paper(self):
        paper = get_scale("paper")
        assert paper.salary_records == 51_000  # Section 6.1
        assert paper.salary_reduced_records == 11_000  # Section 6.5/6.7
        assert paper.homicide_reduced_records == 28_000  # Section 6.7
        assert paper.repetitions == 200  # Section 6.2
        assert paper.n_samples == 50  # Section 6.3
        assert paper.coe_neighbors == 50  # Section 6.7
        assert paper.coe_outliers == 100  # Section 6.7

    def test_scales_are_ordered_by_size(self):
        smoke, small, medium, paper = (
            get_scale(n) for n in ("smoke", "small", "medium", "paper")
        )
        assert smoke.salary_records < small.salary_records
        assert small.salary_records < medium.salary_records
        assert medium.salary_records <= paper.salary_records
        assert smoke.repetitions < small.repetitions <= medium.repetitions
        assert medium.repetitions <= paper.repetitions

    def test_smoke_is_fast(self):
        smoke = get_scale("smoke")
        assert smoke.salary_records <= 500
        assert smoke.repetitions <= 5

"""Unit tests for numeric-attribute binning."""

import numpy as np
import pytest

from repro.core.verification import OutlierVerifier
from repro.data.binning import BinSpec, bin_numeric_column
from repro.data.generators import tiny_income_dataset
from repro.exceptions import DatasetError, SchemaError
from repro.outliers.zscore import ZScoreDetector


class TestBinSpec:
    def test_equal_width_edges(self):
        spec = BinSpec.equal_width("Age", 0.0, 100.0, 4)
        assert spec.edges == (0.0, 25.0, 50.0, 75.0, 100.0)
        assert spec.n_bins == 4

    def test_labels_are_intervals(self):
        spec = BinSpec.equal_width("Age", 0.0, 10.0, 2)
        assert spec.labels() == ["[0, 5)", "[5, 10]"]

    def test_assign_half_open_semantics(self):
        spec = BinSpec.equal_width("X", 0.0, 10.0, 2)
        assert spec.assign([0.0, 4.999, 5.0, 9.0]).tolist() == [0, 0, 1, 1]

    def test_max_value_in_last_bin(self):
        spec = BinSpec.equal_width("X", 0.0, 10.0, 2)
        assert spec.assign([10.0]).tolist() == [1]

    def test_out_of_range_rejected(self):
        spec = BinSpec.equal_width("X", 0.0, 10.0, 2)
        with pytest.raises(DatasetError, match="outside bin range"):
            spec.assign([11.0])
        with pytest.raises(DatasetError, match="outside bin range"):
            spec.assign([-0.1])

    def test_quantile_bins_balance_population(self):
        gen = np.random.default_rng(0)
        values = gen.exponential(scale=10.0, size=4000)  # heavily skewed
        spec = BinSpec.quantile("X", values, 4)
        counts = np.bincount(spec.assign(values), minlength=spec.n_bins)
        assert counts.min() > 800  # near-equal 1000 each

    def test_quantile_needs_enough_values(self):
        with pytest.raises(SchemaError, match="at least"):
            BinSpec.quantile("X", [1.0, 2.0], 5)

    def test_quantile_constant_values_rejected(self):
        with pytest.raises(SchemaError, match="constant"):
            BinSpec.quantile("X", [3.0] * 100, 4)

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(SchemaError, match="increasing"):
            BinSpec("X", (0.0, 5.0, 5.0))

    def test_too_few_edges_rejected(self):
        with pytest.raises(SchemaError):
            BinSpec("X", (1.0,))

    def test_bad_equal_width_params(self):
        with pytest.raises(SchemaError):
            BinSpec.equal_width("X", 5.0, 5.0, 2)
        with pytest.raises(SchemaError):
            BinSpec.equal_width("X", 0.0, 1.0, 0)

    def test_to_attribute(self):
        attr = BinSpec.equal_width("Age", 0.0, 100.0, 4).to_attribute()
        assert attr.name == "Age"
        assert len(attr) == 4


class TestBinNumericColumn:
    @pytest.fixture()
    def dataset(self):
        return tiny_income_dataset()

    def test_extends_schema(self, dataset):
        spec = BinSpec.equal_width("Seniority", 0.0, 30.0, 3)
        seniority = np.linspace(1.0, 29.0, len(dataset))
        extended = bin_numeric_column(dataset, seniority, spec)
        assert extended.schema.m == dataset.schema.m + 1
        assert extended.schema.t == dataset.schema.t + 3
        assert extended.schema.attributes[-1].name == "Seniority"

    def test_prefix_bit_layout_preserved(self, dataset):
        """Existing attributes keep their bit positions."""
        spec = BinSpec.equal_width("Seniority", 0.0, 30.0, 3)
        extended = bin_numeric_column(
            dataset, np.full(len(dataset), 15.0), spec
        )
        for attr in dataset.schema.attributes:
            for value in attr.domain:
                assert dataset.schema.bit_for(attr.name, value) == extended.schema.bit_for(
                    attr.name, value
                )

    def test_records_preserved(self, dataset):
        spec = BinSpec.equal_width("Seniority", 0.0, 30.0, 3)
        extended = bin_numeric_column(dataset, np.full(len(dataset), 5.0), spec)
        assert list(extended.ids) == list(dataset.ids)
        assert np.array_equal(extended.metric, dataset.metric)
        rec = extended.record(0)
        assert rec["Seniority"] == "[0, 10)"
        assert rec["Jobtitle"] == dataset.record(0)["Jobtitle"]

    def test_contexts_over_binned_attribute_work_end_to_end(self, dataset):
        """A full PCOR-stack smoke check over a binned numeric attribute."""
        spec = BinSpec.equal_width("Seniority", 0.0, 30.0, 3)
        gen = np.random.default_rng(4)
        extended = bin_numeric_column(
            dataset, gen.uniform(0.0, 30.0, size=len(dataset)), spec
        )
        verifier = OutlierVerifier(
            extended, ZScoreDetector(z_threshold=1.5, min_population=3)
        )
        pop, outliers = verifier.context_profile(extended.schema.full_bits)
        assert pop == len(extended)

    def test_length_mismatch_rejected(self, dataset):
        spec = BinSpec.equal_width("X", 0.0, 1.0, 2)
        with pytest.raises(DatasetError, match="values"):
            bin_numeric_column(dataset, [0.5], spec)

    def test_name_collision_rejected(self, dataset):
        spec = BinSpec.equal_width("Jobtitle", 0.0, 1.0, 2)
        with pytest.raises(SchemaError, match="already exists"):
            bin_numeric_column(dataset, np.full(len(dataset), 0.5), spec)

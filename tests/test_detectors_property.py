"""Property-based tests (hypothesis) shared by all detectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.outliers import (
    GrubbsDetector,
    HistogramDetector,
    IQRDetector,
    LOFDetector,
    ZScoreDetector,
)

DETECTORS = [
    GrubbsDetector(min_population=5),
    HistogramDetector(min_count_floor=2.0, min_population=5),
    LOFDetector(k=3, min_population=5),
    ZScoreDetector(min_population=5),
    IQRDetector(min_population=5),
]

value_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=60),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: d.name)
@given(values=value_arrays)
@settings(max_examples=60, deadline=None)
def test_positions_are_valid_sorted_unique(detector, values):
    positions = detector.outlier_positions(values)
    assert positions.dtype == np.int64
    assert np.array_equal(positions, np.unique(positions))  # sorted + unique
    if positions.size:
        assert positions.min() >= 0
        assert positions.max() < values.shape[0]


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: d.name)
@given(values=value_arrays)
@settings(max_examples=60, deadline=None)
def test_determinism(detector, values):
    a = detector.outlier_positions(values)
    b = detector.outlier_positions(values.copy())
    assert np.array_equal(a, b)


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: d.name)
@given(values=value_arrays)
@settings(max_examples=60, deadline=None)
def test_small_populations_are_clean(detector, values):
    if values.shape[0] < detector.min_population:
        assert detector.outlier_positions(values).size == 0


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: d.name)
@given(values=value_arrays)
@settings(max_examples=60, deadline=None)
def test_detect_mask_consistent(detector, values):
    mask = detector.detect(values)
    assert mask.shape == values.shape
    assert np.array_equal(np.flatnonzero(mask), detector.outlier_positions(values))


@pytest.mark.parametrize(
    "detector",
    [GrubbsDetector(min_population=5), ZScoreDetector(min_population=5), IQRDetector(min_population=5)],
    ids=lambda d: d.name,
)
@given(
    values=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=5, max_value=40),
        # Keep every value either exactly zero or comfortably inside the
        # normal float range: scaling a subnormal (e.g. 5e-324) by 0.25
        # underflows to zero instead of shifting the exponent, which breaks
        # the exactness assumption below.
        elements=st.floats(
            min_value=-1e3, max_value=1e3, allow_nan=False, allow_subnormal=False
        ).filter(lambda x: x == 0.0 or abs(x) >= 1e-290),
    ),
    # Powers of two rescale normal-range float64 values exactly (pure
    # exponent shifts), so scale equivariance must hold bit-for-bit.
    # Arbitrary scales/shifts can flip borderline test statistics through
    # rounding and are covered by fixed-value unit tests instead.
    scale=st.sampled_from([0.25, 0.5, 2.0, 4.0, 16.0]),
)
@settings(max_examples=60, deadline=None)
def test_scale_equivariance_of_statistical_detectors(detector, values, scale):
    """Grubbs / z-score / IQR decisions are invariant to exact rescaling."""
    base = detector.outlier_positions(values)
    mapped = detector.outlier_positions(values * scale)
    assert np.array_equal(base, mapped)


@given(
    values=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=6, max_value=50),
        elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    ),
    k=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_lof_scores_positive_and_finite_or_inf(values, k):
    from repro.outliers.lof import lof_scores

    if values.shape[0] <= k:
        return
    scores = lof_scores(values, k)
    assert scores.shape == values.shape
    assert not np.isnan(scores).any()
    assert (scores > 0).all()

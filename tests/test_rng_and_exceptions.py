"""Unit tests for RNG plumbing and the exception hierarchy."""

import numpy as np
import pytest

from repro import exceptions
from repro.rng import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = ensure_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(ensure_rng(0), 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        children = spawn(ensure_rng(0), 2)
        assert not np.array_equal(children[0].random(10), children[1].random(10))

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn(ensure_rng(3), 4)]
        b = [g.random() for g in spawn(ensure_rng(3), 4)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            exceptions.SchemaError,
            exceptions.DatasetError,
            exceptions.ContextError,
            exceptions.PrivacyBudgetError,
            exceptions.MechanismError,
            exceptions.SamplingError,
            exceptions.VerificationError,
            exceptions.EnumerationError,
            exceptions.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, exceptions.ReproError)
        with pytest.raises(exceptions.ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(exceptions.ReproError, Exception)

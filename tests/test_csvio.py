"""Unit tests for CSV round-tripping."""

import numpy as np
import pytest

from repro.data.csvio import read_csv, write_csv
from repro.data.generators import tiny_income_dataset
from repro.exceptions import DatasetError
from repro.schema import CategoricalAttribute, MetricAttribute, Schema


@pytest.fixture()
def tiny(tmp_path):
    ds = tiny_income_dataset()
    path = tmp_path / "tiny.csv"
    write_csv(ds, path)
    return ds, path


class TestRoundTrip:
    def test_with_explicit_schema(self, tiny):
        ds, path = tiny
        loaded = read_csv(path, schema=ds.schema)
        assert len(loaded) == len(ds)
        assert np.array_equal(loaded.metric, ds.metric)
        assert list(loaded.ids) == list(ds.ids)
        for attr in ds.schema.attributes:
            assert np.array_equal(loaded.codes(attr.name), ds.codes(attr.name))

    def test_with_inferred_schema(self, tiny):
        ds, path = tiny
        loaded = read_csv(path, metric="Salary")
        assert len(loaded) == len(ds)
        # Inferred domains cover observed values (sorted).
        jobs = loaded.schema.attribute("Jobtitle").domain
        assert set(jobs) == {"CEO", "MedicalDoctor", "Lawyer"}
        assert list(jobs) == sorted(jobs)

    def test_inferred_schema_with_attribute_subset(self, tiny):
        ds, path = tiny
        loaded = read_csv(path, metric="Salary", attributes=["City"])
        assert loaded.schema.m == 1
        assert loaded.schema.attribute("City").name == "City"

    def test_header_includes_id_column(self, tiny):
        _, path = tiny
        header = path.read_text().splitlines()[0]
        assert header.startswith("_id,")


class TestErrors:
    def test_missing_metric_name(self, tiny):
        _, path = tiny
        with pytest.raises(DatasetError, match="metric name"):
            read_csv(path)

    def test_unknown_metric_column(self, tiny):
        _, path = tiny
        with pytest.raises(DatasetError, match="not found"):
            read_csv(path, metric="Nope")

    def test_unknown_attribute_column(self, tiny):
        _, path = tiny
        with pytest.raises(DatasetError, match="not found"):
            read_csv(path, metric="Salary", attributes=["Nope"])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("A,B,M\n")
        with pytest.raises(DatasetError, match="no data rows"):
            read_csv(path, metric="M")

    def test_headerless_file(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("")
        with pytest.raises(DatasetError, match="no header"):
            read_csv(path, metric="M")

    def test_bad_metric_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A,M\nx,notanumber\n")
        with pytest.raises(DatasetError, match="bad metric"):
            read_csv(path, metric="M")

    def test_value_outside_explicit_schema(self, tmp_path):
        schema = Schema(
            attributes=[CategoricalAttribute("A", ["x"])],
            metric=MetricAttribute("M"),
        )
        path = tmp_path / "outside.csv"
        path.write_text("A,M\ny,1.0\n")
        with pytest.raises(DatasetError, match="not in domain"):
            read_csv(path, schema=schema)

"""Unit tests for starting-context search."""

import numpy as np
import pytest

from repro.core.starting import find_starting_context, starting_context_from_reference
from repro.exceptions import SamplingError


class TestLocalSearch:
    def test_finds_matching_context(self, mini_verifier, mini_outlier, rng):
        ctx = find_starting_context(mini_verifier, mini_outlier, rng)
        assert mini_verifier.is_matching(ctx.bits, mini_outlier)

    def test_result_contains_record(self, mini_verifier, mini_outlier, rng):
        ctx = find_starting_context(mini_verifier, mini_outlier, rng)
        record_bits = mini_verifier.dataset.record_bits(mini_outlier)
        assert ctx.contains_record_bits(record_bits)

    def test_raises_for_non_outlier(self, mini_verifier, mini_reference, mini_dataset, rng):
        outliers = set(mini_reference.outlier_records())
        normal = next(int(r) for r in mini_dataset.ids if int(r) not in outliers)
        with pytest.raises(SamplingError, match="no matching context"):
            find_starting_context(mini_verifier, normal, rng, max_steps=200)

    def test_deterministic_for_seed(self, mini_verifier, mini_outlier):
        a = find_starting_context(mini_verifier, mini_outlier, np.random.default_rng(9))
        b = find_starting_context(mini_verifier, mini_outlier, np.random.default_rng(9))
        assert a == b


class TestFromReference:
    def test_random_mode_returns_matching(self, mini_reference, mini_outlier, rng):
        for _ in range(10):
            ctx = starting_context_from_reference(mini_reference, mini_outlier, rng)
            assert ctx.bits in mini_reference.coe(mini_outlier)

    def test_min_mode(self, mini_reference, mini_outlier):
        ctx = starting_context_from_reference(mini_reference, mini_outlier, mode="min")
        matching = mini_reference.matching_contexts(mini_outlier)
        assert mini_reference.population_size(ctx.bits) == min(
            mini_reference.population_size(b) for b in matching
        )

    def test_max_mode(self, mini_reference, mini_outlier):
        ctx = starting_context_from_reference(mini_reference, mini_outlier, mode="max")
        matching = mini_reference.matching_contexts(mini_outlier)
        assert mini_reference.population_size(ctx.bits) == max(
            mini_reference.population_size(b) for b in matching
        )

    def test_unknown_mode(self, mini_reference, mini_outlier):
        with pytest.raises(SamplingError, match="unknown"):
            starting_context_from_reference(mini_reference, mini_outlier, mode="best")

    def test_record_without_contexts(self, mini_reference, mini_dataset):
        outliers = set(mini_reference.outlier_records())
        normal = next(int(r) for r in mini_dataset.ids if int(r) not in outliers)
        with pytest.raises(SamplingError, match="no matching context"):
            starting_context_from_reference(mini_reference, normal)

"""Unit tests for the Context bitvector."""

import pytest

from repro.context import Context
from repro.exceptions import ContextError
from repro.schema import CategoricalAttribute, MetricAttribute, Schema


@pytest.fixture(scope="module")
def schema() -> Schema:
    return Schema(
        attributes=[
            CategoricalAttribute("Jobtitle", ["CEO", "MedicalDoctor", "Lawyer"]),
            CategoricalAttribute("City", ["Montreal", "Ottawa", "Toronto"]),
            CategoricalAttribute("District", ["Business", "Historic", "Diplomatic"]),
        ],
        metric=MetricAttribute("Salary"),
    )


class TestConstruction:
    def test_from_bitstring_paper_example(self, schema):
        # The paper's running example: CEOs and Lawyers in Toronto, Historic.
        ctx = Context.from_bitstring(schema, "101001010")
        values = ctx.selected_values()
        assert values["Jobtitle"] == ("CEO", "Lawyer")
        assert values["City"] == ("Toronto",)
        assert values["District"] == ("Historic",)

    def test_bitstring_round_trip(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        assert ctx.to_bitstring() == "101001010"

    def test_from_predicates(self, schema):
        ctx = Context.from_predicates(
            schema,
            {"Jobtitle": ["CEO", "Lawyer"], "City": ["Toronto"], "District": ["Historic"]},
        )
        assert ctx.to_bitstring() == "101001010"

    def test_full_context(self, schema):
        ctx = Context.full(schema)
        assert ctx.hamming_weight == schema.t
        assert ctx.is_structurally_valid

    def test_exact_context(self, schema):
        record = {"Jobtitle": "Lawyer", "City": "Ottawa", "District": "Diplomatic"}
        ctx = Context.exact(schema, record)
        assert ctx.hamming_weight == schema.m

    def test_bad_bitstring_length(self, schema):
        with pytest.raises(ContextError, match="characters"):
            Context.from_bitstring(schema, "101")

    def test_bad_bitstring_chars(self, schema):
        with pytest.raises(ContextError):
            Context.from_bitstring(schema, "10100101x")

    def test_out_of_range_bits(self, schema):
        with pytest.raises(ContextError, match="out of range"):
            Context(schema, 1 << schema.t)

    def test_negative_bits(self, schema):
        with pytest.raises(ContextError):
            Context(schema, -1)


class TestBitOperations:
    def test_contains_bit(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        assert 0 in ctx
        assert 1 not in ctx

    def test_hamming_weight(self, schema):
        assert Context.from_bitstring(schema, "101001010").hamming_weight == 4

    def test_hamming_distance(self, schema):
        a = Context.from_bitstring(schema, "101001010")
        b = Context.from_bitstring(schema, "100001010")
        assert a.hamming_distance(b) == 1

    def test_connectivity_is_distance_one(self, schema):
        # The paper's example: C and C' differ only in the Lawyer predicate.
        a = Context.from_bitstring(schema, "101001010")
        b = Context.from_bitstring(schema, "100001010")
        assert a.is_connected_to(b)
        assert not a.is_connected_to(a)

    def test_flip_bit_involution(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        assert ctx.flip_bit(4).flip_bit(4) == ctx

    def test_with_and_without_bit(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        assert 1 in ctx.with_bit(1)
        assert 0 not in ctx.without_bit(0)
        # Idempotent on already-set / already-clear bits.
        assert ctx.with_bit(0) == ctx
        assert ctx.without_bit(1) == ctx

    def test_neighbors_count_and_distance(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        neighbors = list(ctx.neighbors())
        assert len(neighbors) == schema.t
        assert all(ctx.hamming_distance(nb) == 1 for nb in neighbors)
        assert len({nb.bits for nb in neighbors}) == schema.t

    def test_bit_out_of_range(self, schema):
        ctx = Context.full(schema)
        with pytest.raises(ContextError):
            ctx.flip_bit(schema.t)


class TestStructure:
    def test_block_bits(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        assert ctx.block_bits(0) == 0b101
        assert ctx.block_bits(1) == 0b100
        assert ctx.block_bits(2) == 0b010

    def test_structural_validity(self, schema):
        assert Context.from_bitstring(schema, "101001010").is_structurally_valid
        # Empty City block -> invalid.
        assert not Context.from_bitstring(schema, "101000010").is_structurally_valid
        assert not Context(schema, 0).is_structurally_valid

    def test_contains_record_bits(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        lawyer_toronto_historic = schema.record_bits(
            {"Jobtitle": "Lawyer", "City": "Toronto", "District": "Historic"}
        )
        ceo_ottawa_business = schema.record_bits(
            {"Jobtitle": "CEO", "City": "Ottawa", "District": "Business"}
        )
        assert ctx.contains_record_bits(lawyer_toronto_historic)
        assert not ctx.contains_record_bits(ceo_ottawa_business)

    def test_intersection_union(self, schema):
        a = Context.from_bitstring(schema, "101001010")
        b = Context.from_bitstring(schema, "100001011")
        assert a.intersection(b).to_bitstring() == "100001010"
        assert a.union(b).to_bitstring() == "101001011"

    def test_cross_schema_operations_rejected(self, schema):
        other = Schema(
            attributes=[CategoricalAttribute("X", ["a", "b", "c", "d", "e", "f", "g", "h", "i"])],
            metric="M",
        )
        a = Context(schema, 0b1)
        b = Context(other, 0b1)
        with pytest.raises(ContextError, match="different schemas"):
            a.hamming_distance(b)


class TestRendering:
    def test_describe_lists_values(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        text = ctx.describe()
        assert "CEO" in text and "Lawyer" in text
        assert "Toronto" in text
        assert "Historic" in text
        assert " AND " in text

    def test_selected_predicates_in_bit_order(self, schema):
        ctx = Context.from_bitstring(schema, "101001010")
        preds = ctx.selected_predicates()
        assert [p.bit for p in preds] == [0, 2, 5, 7]

    def test_len_is_t(self, schema):
        assert len(Context.full(schema)) == schema.t

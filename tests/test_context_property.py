"""Property-based tests (hypothesis) for Context and the bit layout."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import Context
from repro.schema import CategoricalAttribute, MetricAttribute, Schema


def schemas(max_attrs: int = 4, max_domain: int = 4) -> st.SearchStrategy[Schema]:
    """Random small schemas (t <= 16)."""

    def build(sizes):
        attrs = [
            CategoricalAttribute(f"A{i}", [f"v{i}_{j}" for j in range(size)])
            for i, size in enumerate(sizes)
        ]
        return Schema(attributes=attrs, metric=MetricAttribute("M"))

    return st.lists(
        st.integers(min_value=1, max_value=max_domain),
        min_size=1,
        max_size=max_attrs,
    ).map(build)


@st.composite
def schema_and_bits(draw):
    schema = draw(schemas())
    bits = draw(st.integers(min_value=0, max_value=(1 << schema.t) - 1))
    return schema, bits


@st.composite
def schema_bits_and_bit(draw):
    schema, bits = draw(schema_and_bits())
    bit = draw(st.integers(min_value=0, max_value=schema.t - 1))
    return schema, bits, bit


@given(schema_and_bits())
@settings(max_examples=200)
def test_bitstring_round_trip(sb):
    schema, bits = sb
    ctx = Context(schema, bits)
    assert Context.from_bitstring(schema, ctx.to_bitstring()).bits == bits


@given(schema_bits_and_bit())
@settings(max_examples=200)
def test_flip_is_involution_and_distance_one(sbb):
    schema, bits, bit = sbb
    ctx = Context(schema, bits)
    flipped = ctx.flip_bit(bit)
    assert flipped.flip_bit(bit) == ctx
    assert ctx.hamming_distance(flipped) == 1


@given(schema_and_bits())
@settings(max_examples=200)
def test_neighbors_are_exactly_t_distinct_distance_one(sb):
    schema, bits = sb
    ctx = Context(schema, bits)
    neighbors = list(ctx.neighbors())
    assert len(neighbors) == schema.t
    assert len({nb.bits for nb in neighbors}) == schema.t
    assert all(ctx.hamming_distance(nb) == 1 for nb in neighbors)


@given(schema_and_bits())
@settings(max_examples=200)
def test_hamming_weight_equals_selected_predicates(sb):
    schema, bits = sb
    ctx = Context(schema, bits)
    assert ctx.hamming_weight == len(ctx.selected_predicates())
    assert ctx.hamming_weight == sum(
        len(v) for v in ctx.selected_values().values()
    )


@given(schema_and_bits())
@settings(max_examples=200)
def test_block_bits_reassemble_to_context(sb):
    schema, bits = sb
    ctx = Context(schema, bits)
    reassembled = 0
    for i, off in enumerate(schema.offsets):
        reassembled |= ctx.block_bits(i) << off
    assert reassembled == bits


@given(schema_and_bits())
@settings(max_examples=200)
def test_structural_validity_matches_block_definition(sb):
    schema, bits = sb
    ctx = Context(schema, bits)
    expected = all(ctx.block_bits(i) != 0 for i in range(schema.m))
    assert ctx.is_structurally_valid == expected
    if ctx.is_structurally_valid:
        assert ctx.hamming_weight >= schema.m  # paper: min weight m


@given(schema_and_bits(), st.integers())
@settings(max_examples=200)
def test_hamming_distance_is_metric(sb, salt):
    schema, bits_a = sb
    bits_b = (bits_a ^ abs(salt)) & schema.full_bits
    a, b = Context(schema, bits_a), Context(schema, bits_b)
    assert a.hamming_distance(b) == b.hamming_distance(a)
    assert (a.hamming_distance(b) == 0) == (bits_a == bits_b)


@given(schema_and_bits())
@settings(max_examples=100)
def test_intersection_union_bit_laws(sb):
    schema, bits = sb
    ctx = Context(schema, bits)
    full = Context.full(schema)
    assert ctx.intersection(full) == ctx
    assert ctx.union(full) == full
    assert ctx.intersection(ctx) == ctx
    assert ctx.union(ctx) == ctx

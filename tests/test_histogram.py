"""Unit tests for the histogram detector."""

import numpy as np
import pytest

from repro.outliers.histogram import HistogramDetector


class TestDetection:
    def test_flags_isolated_value(self, rng):
        # A dense cluster plus one far-away point: the lone point sits in a
        # sparse bin.
        values = np.concatenate([rng.normal(0.0, 1.0, size=400), [50.0]])
        det = HistogramDetector(frequency_fraction=2.5e-3, min_count_floor=2.0)
        assert 400 in det.outlier_positions(values)

    def test_dense_data_is_clean(self, rng):
        values = rng.uniform(0.0, 1.0, size=1000)
        det = HistogramDetector(frequency_fraction=2.5e-3, min_count_floor=0.0)
        # Uniform data: all sqrt(n)=32 bins hold ~31 points >> 2.5.
        assert det.outlier_positions(values).size == 0

    def test_all_equal_values_clean(self):
        det = HistogramDetector()
        assert det.outlier_positions(np.full(100, 5.0)).size == 0

    def test_paper_rule_no_floor(self, rng):
        # Strict paper rule at small n: cutoff 2.5e-3 * 200 = 0.5, so only
        # empty bins qualify and nothing is flagged.
        values = np.concatenate([rng.normal(0.0, 1.0, size=199), [25.0]])
        strict = HistogramDetector(frequency_fraction=2.5e-3, min_count_floor=0.0)
        assert strict.outlier_positions(values).size == 0
        # With a floor of 2 records the isolated point is caught.
        floored = HistogramDetector(frequency_fraction=2.5e-3, min_count_floor=2.0)
        assert 199 in floored.outlier_positions(values)

    def test_fixed_bin_count(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, size=500), [100.0]])
        det = HistogramDetector(n_bins=10, min_count_floor=2.0)
        assert 500 in det.outlier_positions(values)

    def test_cutoff_scales_with_population(self, rng):
        # frequency_fraction=0.02: bins under 2% of n are sparse.
        base = np.repeat([0.0, 1.0, 2.0, 3.0], 100)
        values = np.concatenate([base, [10.0] * 3])
        det = HistogramDetector(frequency_fraction=0.02, n_bins=11)
        positions = det.outlier_positions(values)
        assert set(positions.tolist()) == {400, 401, 402}

    def test_top_edge_belongs_to_last_bin(self):
        # The maximum value must be binned, not dropped.
        values = np.concatenate([np.linspace(0, 1, 50), [1.0] * 50])
        det = HistogramDetector(n_bins=5, frequency_fraction=0.0)
        # No bin is sparse with fraction 0 -> no outliers, and no crash.
        assert det.outlier_positions(values).size == 0

    def test_deterministic(self, rng):
        values = rng.normal(0.0, 1.0, size=500)
        det = HistogramDetector(min_count_floor=2.0)
        assert np.array_equal(
            det.outlier_positions(values), det.outlier_positions(values.copy())
        )

    def test_below_min_population(self):
        det = HistogramDetector(min_population=50)
        assert det.outlier_positions(np.arange(10.0)).size == 0

    def test_shift_invariance(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, size=300), [40.0]])
        det = HistogramDetector(min_count_floor=2.0)
        a = det.outlier_positions(values)
        b = det.outlier_positions(values + 1234.5)
        assert np.array_equal(a, b)


class TestValidation:
    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            HistogramDetector(frequency_fraction=-0.1)

    def test_bad_floor(self):
        with pytest.raises(ValueError):
            HistogramDetector(min_count_floor=-1.0)

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            HistogramDetector(n_bins=0)

"""Smoke tests for the table/figure regeneration harness (micro scale).

These verify structure and invariants of every paper-table runner; the
bench-scale numbers live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import figure_1, figure_4, figure_5
from repro.experiments.tables import (
    TABLE_RUNNERS,
    table_2_3,
    table_4_5,
    table_6_7,
    table_8_9,
    table_10_11,
)

MICRO = ExperimentScale(
    name="micro",
    salary_records=400,
    salary_reduced_records=400,
    homicide_reduced_records=400,
    repetitions=3,
    n_outlier_records=3,
    n_samples=8,
    coe_neighbors=1,
    coe_outliers=4,
)


@pytest.fixture(scope="module")
def t23():
    return table_2_3(MICRO, seed=0)


class TestTable23:
    def test_four_samplers(self, t23):
        perf, util = t23
        assert len(perf.rows) == 4
        assert len(util.rows) == 4
        labels = [row[0] for row in util.rows]
        assert labels == ["Uniform", "Random Walk", "DFS", "BFS"]

    def test_ids_and_render(self, t23):
        perf, util = t23
        assert perf.table_id == "2"
        assert util.table_id == "3"
        assert "Table 2" in perf.render()
        assert "Tmin" in perf.render()
        assert "CI (90%)" in util.render()

    def test_utilities_in_unit_interval(self, t23):
        _, util = t23
        for label, summary in util.summaries.items():
            assert 0.0 <= summary.utility_summary().mean <= 1.0 + 1e-9


class TestTable45:
    def test_structure(self):
        perf, util = table_4_5(MICRO, seed=0)
        assert [row[0] for row in perf.rows] == ["DFS", "BFS"]
        assert perf.table_id == "4"
        assert util.table_id == "5"
        for summary in util.summaries.values():
            assert summary.utility == "overlap"


class TestTable67:
    def test_structure(self):
        perf, util = table_6_7(MICRO, seed=0)
        assert [row[0] for row in perf.rows] == ["Grubbs", "Histogram"]
        for summary in util.summaries.values():
            assert summary.algorithm == "bfs"
        assert "BFS" in perf.rows[0]


class TestTable89:
    def test_epsilon_sweep(self):
        perf, util = table_8_9(MICRO, seed=0, epsilons=(0.1, 0.4))
        assert [row[0] for row in perf.rows] == ["0.1", "0.4"]
        for label, summary in util.summaries.items():
            assert summary.epsilon == float(label)


class TestTable1011:
    def test_sample_sweep(self):
        perf, util = table_10_11(MICRO, seed=0, sample_sizes=(5, 10))
        assert [row[0] for row in perf.rows] == ["5", "10"]
        for label, summary in util.summaries.items():
            assert summary.n_samples == int(label)


class TestRunnerRegistry:
    def test_all_tables_mapped(self):
        assert set(TABLE_RUNNERS) == {"2", "3", "4", "5", "6", "7", "8", "9", "10", "11"}


class TestFigures:
    def test_figure_1_reuses_summaries(self, t23):
        perf, _ = t23
        fig = figure_1(summaries=perf.summaries)
        assert fig.figure_id == "1"
        assert len(fig.panels) == 8  # 4 samplers x (utility, time)
        kinds = {p.kind for p in fig.panels}
        assert kinds == {"utility", "time"}

    def test_panels_render(self, t23):
        perf, _ = t23
        fig = figure_1(summaries=perf.summaries)
        text = fig.render(bins=5)
        assert "Figure 1" in text
        assert "#" in text

    def test_utility_panels_bounded(self, t23):
        perf, _ = t23
        fig = figure_1(summaries=perf.summaries)
        for panel in fig.panels:
            if panel.kind == "utility":
                counts, edges = panel.histogram(bins=5)
                assert edges[0] == 0.0
                assert edges[-1] == 1.0

    def test_figure_4_labels(self, t23):
        # Reuse table 2/3 summaries as a stand-in epsilon sweep.
        perf, _ = t23
        fig = figure_4(summaries=perf.summaries)
        assert all(p.label.startswith("eps=") for p in fig.panels)

    def test_figure_5_labels(self, t23):
        perf, _ = t23
        fig = figure_5(summaries=perf.summaries)
        assert all(p.label.startswith("n=") for p in fig.panels)

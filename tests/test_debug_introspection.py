"""Live profiling and debug introspection: profiler, event ring, endpoints.

Unit-level coverage of ``repro.obs.profiler`` / ``repro.obs.events``, the
``/v1/debug/profile`` + ``/v1/debug/events`` endpoints on a single server,
the router's fleet-wide aggregation (including a shard dying mid-scrape),
and the drain-disarm bugfix: shutdown must wake in-flight profile
sessions instead of letting them stall the drain barrier.
"""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ServerError, SpecError
from repro.obs.events import (
    EventBuffer,
    install_event_buffer,
    uninstall_event_buffer,
)
from repro.obs.logs import log_event
from repro.obs.profiler import (
    DEFAULT_HZ,
    DEFAULT_SECONDS,
    MAX_HZ,
    MAX_SECONDS,
    ProfilerDisarmed,
    ProfileSessions,
    SamplingProfiler,
    collect_profile,
    merge_folded,
    profiler_supported,
    profiling_active,
    render_folded,
    set_engine_phase,
    validate_profile_args,
)
from repro.server import PCORClient, PCORServer, ServerConfig

RECORDS = 300
SEED = 3
OUTLIER_RECORD = 207  # verified matching record of salary_reduced(300, seed=3)

SPEC = {
    "detector": "zscore",
    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
    "sampler": "uniform",
    "epsilon": 0.1,
    "n_samples": 3,
}


def server_config(**observability) -> ServerConfig:
    body = {
        "server": {"port": 0},
        "datasets": {
            "salary": {
                "source": "salary_reduced",
                "records": RECORDS,
                "seed": SEED,
                "budget": 1000.0,
            }
        },
    }
    if observability:
        body["observability"] = observability
    return ServerConfig.from_dict(body)


def busy_thread(stop: threading.Event, phase=None) -> threading.Thread:
    """A named thread burning CPU (optionally inside an engine phase)."""

    def spin():
        if phase is not None:
            set_engine_phase(phase)
        try:
            while not stop.is_set():
                sum(i * i for i in range(500))
        finally:
            set_engine_phase(None)

    thread = threading.Thread(target=spin, name="busy-loop", daemon=True)
    thread.start()
    return thread


class TestProfilerUnit:
    def test_validate_profile_args_defaults_and_bounds(self):
        assert validate_profile_args(None, None) == (DEFAULT_SECONDS, DEFAULT_HZ)
        assert validate_profile_args(1, 10) == (1.0, 10.0)
        for seconds, hz in (
            (0.0, 10),
            (-1, 10),
            (MAX_SECONDS + 1, 10),
            (1, 0.5),
            (1, MAX_HZ + 1),
        ):
            with pytest.raises(ValueError):
                validate_profile_args(seconds, hz)

    def test_profiler_captures_a_busy_thread(self):
        assert profiler_supported()  # CPython in CI
        stop = threading.Event()
        thread = busy_thread(stop)
        try:
            payload = collect_profile(seconds=0.25, hz=200)
        finally:
            stop.set()
            thread.join()
        assert payload["supported"] is True
        assert payload["disarmed"] is False
        assert payload["samples"] > 5
        assert payload["threads"] >= 1
        busy = [k for k in payload["folded"] if k.startswith("busy-loop;")]
        assert busy, payload["folded"]
        # Frames are module.function labels rooted at the thread name.
        assert any("test_debug_introspection.spin" in k for k in busy)

    def test_engine_phase_annotates_sampled_stacks(self):
        profiler = SamplingProfiler(hz=200).start()
        stop = threading.Event()
        thread = busy_thread(stop, phase="engine.sample")
        try:
            time.sleep(0.25)
        finally:
            profiler.stop()
            stop.set()
            thread.join()
        annotated = [
            k for k in profiler.folded() if k.startswith("busy-loop;[engine.sample];")
        ]
        assert annotated, profiler.folded()

    def test_set_engine_phase_is_inert_without_a_session(self):
        from repro.obs import profiler as mod

        assert not profiling_active()
        set_engine_phase("engine.sample")
        # No live session: nothing recorded for this thread.
        assert threading.get_ident() not in mod._engine_phases
        # Clearing always runs (no stale phase can leak into a later session).
        set_engine_phase(None)
        assert threading.get_ident() not in mod._engine_phases

    def test_merge_and_render_folded(self):
        merged = merge_folded(
            [
                ("router", {"main;f": 2}),
                ("shard0", {"main;f": 3, "main;g": 1}),
                ("shard0", {"main;f": 1}),
            ]
        )
        assert merged == {
            "router;main;f": 2,
            "shard0;main;f": 4,
            "shard0;main;g": 1,
        }
        text = render_folded(merged)
        assert text.endswith("\n")
        assert text.splitlines() == [
            "router;main;f 2",
            "shard0;main;f 4",
            "shard0;main;g 1",
        ]
        assert render_folded({}) == ""

    def test_sessions_disarm_wakes_inflight_and_refuses_new(self):
        sessions = ProfileSessions()
        done = {}

        def run():
            done["payload"] = sessions.run(seconds=30, hz=50)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while not profiling_active() and time.monotonic() < deadline:
            time.sleep(0.01)
        t0 = time.monotonic()
        sessions.disarm()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert time.monotonic() - t0 < 5.0  # woke early, not after 30s
        assert done["payload"]["disarmed"] is True
        with pytest.raises(ProfilerDisarmed):
            sessions.run(seconds=1)

    def test_sessions_reject_bad_args_before_registering(self):
        sessions = ProfileSessions()
        with pytest.raises(ValueError, match="seconds"):
            sessions.run(seconds=0)


class TestEventBufferUnit:
    def test_ring_bounds_and_counters(self):
        ring = EventBuffer(capacity=3)
        for i in range(5):
            ring.append({"event": f"e{i}"})
        snap = ring.snapshot()
        assert snap["capacity"] == 3
        assert snap["buffered"] == 3
        assert snap["total"] == 5
        assert snap["dropped"] == 2
        # Oldest-first tail, sequence numbers survive the drop.
        assert [e["event"] for e in snap["events"]] == ["e2", "e3", "e4"]
        assert [e["seq"] for e in snap["events"]] == [3, 4, 5]
        assert [e["event"] for e in ring.tail(2)] == ["e3", "e4"]
        assert ring.tail(0) == []
        with pytest.raises(ValueError):
            EventBuffer(capacity=0)

    def test_handler_captures_events_not_plain_records(self):
        import logging

        handler = install_event_buffer(capacity=8, logger_name="repro.test-ring")
        try:
            logger = logging.getLogger("repro.test-ring.child")
            log_event(logger, "unit_test", dataset="salary", n=3)
            logger.info("a plain record, not an event")
            events = handler.buffer.tail()
        finally:
            uninstall_event_buffer(handler, logger_name="repro.test-ring")
        assert len(events) == 1
        event = events[0]
        assert event["event"] == "unit_test"
        assert event["dataset"] == "salary"
        assert event["n"] == 3
        assert set(("ts", "level", "logger", "seq")) <= set(event)
        # Detached: later events no longer land in the ring.
        log_event(logging.getLogger("repro.test-ring"), "after_uninstall")
        assert handler.buffer.total == 1


class TestServerDebugEndpoints:
    def test_profile_endpoint_attributes_engine_phases(self):
        """The acceptance check, single-server form: a profile taken while
        releases are in flight shows ``[engine.*]`` phase frames."""
        with PCORServer(server_config()) as server:
            stop = threading.Event()

            def hammer():
                client = PCORClient(server.url, tenant="hammer")
                seed = 0
                while not stop.is_set():
                    seed += 1
                    client.release(
                        "salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=seed
                    )

            thread = threading.Thread(target=hammer, daemon=True)
            thread.start()
            try:
                payload = PCORClient(server.url).debug_profile(
                    seconds=0.6, hz=200
                )
            finally:
                stop.set()
                thread.join(timeout=10.0)
            assert payload["supported"] is True
            assert payload["samples"] > 10
            assert any("[engine." in stack for stack in payload["folded"]), (
                sorted(payload["folded"])[:20]
            )

    def test_profile_endpoint_validates_query_params(self):
        with PCORServer(server_config()) as server:
            client = PCORClient(server.url)
            with pytest.raises(SpecError, match="seconds must be"):
                client.debug_profile(seconds=0)
            with pytest.raises(SpecError, match="hz must be"):
                client.debug_profile(seconds=1, hz=10_000)
            # Non-numeric query parameter → typed 400, not a stack trace.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    server.url + "/v1/debug/profile?seconds=soon"
                )
            assert excinfo.value.code == 400

    def test_events_endpoint_shows_request_history(self):
        with PCORServer(server_config()) as server:
            client = PCORClient(server.url, tenant="alice")
            client.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=1)
            body = client.debug_events()
            assert body["total"] >= 1
            assert body["dropped"] == 0
            requests = [e for e in body["events"] if e["event"] == "request"]
            assert requests, body["events"]
            assert requests[-1]["dataset"] == "salary"
            assert requests[-1]["status"] == "ok"
            # ?n= trims the window (oldest dropped first).
            assert len(client.debug_events(n=1)["events"]) == 1
            with pytest.raises(SpecError, match="n must be"):
                client.debug_events(n=-1)

    def test_events_ring_can_be_disabled_by_config(self):
        with PCORServer(server_config(events_buffer=0)) as server:
            with pytest.raises(ServerError, match="event ring is disabled"):
                PCORClient(server.url).debug_events()

    def test_shutdown_disarms_inflight_profile_session(self):
        """The drain bugfix: a 30-second profile in flight must not stall
        shutdown — the session is disarmed, returns its partial samples,
        and the drain barrier completes promptly."""
        server = PCORServer(server_config()).start()
        done = {}

        def long_profile():
            done["payload"] = PCORClient(server.url).debug_profile(seconds=30)

        thread = threading.Thread(target=long_profile, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while not profiling_active() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert profiling_active(), "profile session never started"
        t0 = time.monotonic()
        server.shutdown()
        assert time.monotonic() - t0 < 15.0, "drain stalled on the profiler"
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert done["payload"]["disarmed"] is True

    def test_disarmed_profiler_is_typed_503_with_retry_after(self):
        with PCORServer(server_config()) as server:
            server._profiles.disarm()  # what shutdown does, without dying
            client = PCORClient(server.url, retry_503=0)
            with pytest.raises(ServerError, match="draining"):
                client.debug_profile(seconds=1)
            request = urllib.request.Request(
                server.url + "/v1/debug/profile?seconds=1"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None


def cluster_config(respawn=False) -> ServerConfig:
    return ServerConfig.from_dict(
        {
            "server": {"port": 0},
            "datasets": {
                "salary": {
                    "source": "salary_reduced",
                    "records": RECORDS,
                    "seed": SEED,
                    "budget": 1000.0,
                },
                "other": {"source": "salary_reduced", "records": 200, "seed": 9},
                "third": {"source": "salary_reduced", "records": 150, "seed": 11},
            },
            "cluster": {
                "workers": 2,
                "manager": "thread",
                "heartbeat_interval_s": 0.2,
                "heartbeat_timeout_s": 0.8,
                "respawn": respawn,
            },
        }
    )


def wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestRouterDebugAggregation:
    def test_fleet_profile_merges_under_source_roots(self):
        from repro.cluster import PCORRouter

        with PCORRouter(cluster_config()) as router:
            client = PCORClient(router.url)
            body = client.debug_profile(seconds=0.4, hz=100)
            assert body["supported"] is True
            assert body["unavailable_shards"] == []
            assert set(body["sources"]) == {"router", "shard0", "shard1"}
            roots = {stack.split(";", 1)[0] for stack in body["folded"]}
            assert {"router", "shard0", "shard1"} <= roots, roots
            # folded_text is the flamegraph.pl input for the whole fleet.
            assert body["folded_text"] == render_folded(
                {k: int(v) for k, v in body["folded"].items()}
            )
            assert body["samples"] == sum(
                s["samples"] for s in body["sources"].values()
            )

    def test_fleet_events_are_stamped_and_sorted(self):
        from repro.cluster import PCORRouter

        with PCORRouter(cluster_config()) as router:
            client = PCORClient(router.url, tenant="alice")
            client.release("salary", record_id=OUTLIER_RECORD, spec=SPEC, seed=1)
            body = client.debug_events(n=50)
            assert body["unavailable_shards"] == []
            assert {"router", "shard0", "shard1"} <= set(body["sources"])
            assert body["events"], body
            assert all("source" in e for e in body["events"])
            stamps = [(e.get("ts") or 0.0, str(e["source"])) for e in body["events"]]
            assert stamps == sorted(stamps)
            assert len(body["events"]) <= 50

    def test_dead_shard_degrades_not_500(self):
        """A shard dying mid-scrape: Prometheus still renders a partial
        exposition, both debug endpoints report the hole in
        ``unavailable_shards``, and nothing 500s."""
        from repro.cluster import PCORRouter
        from repro.obs import validate_exposition

        with PCORRouter(cluster_config(respawn=False)) as router:
            shard = router.fleet.shard_for("salary")
            router.fleet._shards[shard].handle.kill()
            assert wait_for(
                lambda: router.fleet.snapshot()[shard]["status"] == "dead"
            ), "fleet never declared the worker dead"
            live = 1 - shard
            client = PCORClient(router.url, retry_503=0)

            exposition = client.prometheus_metrics()
            assert validate_exposition(exposition) == []
            assert f'shard="{live}"' in exposition
            assert f'shard="{shard}"' not in exposition
            assert "pcor_unavailable_shards 1" in exposition

            profile = client.debug_profile(seconds=0.3, hz=100)
            assert profile["unavailable_shards"] == [shard]
            assert set(profile["sources"]) == {"router", f"shard{live}"}
            roots = {stack.split(";", 1)[0] for stack in profile["folded"]}
            assert "router" in roots and f"shard{live}" in roots
            assert f"shard{shard}" not in roots

            events = client.debug_events()
            assert shard in events["unavailable_shards"]
            assert f"shard{live}" in events["sources"]
            sources_seen = {e["source"] for e in events["events"]}
            assert f"shard{shard}" not in sources_seen


class TestClientDebugHelpers:
    def test_debug_timeout_covers_the_sampling_window(self):
        """debug_profile must not time out at the transport default while
        the worker blocks for the full sampling window."""
        with PCORServer(server_config()) as server:
            client = PCORClient(server.url, timeout=0.5)
            payload = client.debug_profile(seconds=1.2, hz=50)
            assert payload["samples"] >= 10
            # Explicit override still wins.
            with pytest.raises(ServerError, match="cannot reach"):
                client.debug_profile(seconds=5, timeout=0.2)

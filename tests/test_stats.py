"""Unit tests for experiment statistics."""

import numpy as np
import pytest

from repro.experiments.stats import (
    format_duration,
    histogram_series,
    summarize_runtimes,
    summarize_utilities,
)


class TestUtilitySummary:
    def test_mean(self):
        s = summarize_utilities([0.8, 0.9, 1.0])
        assert s.mean == pytest.approx(0.9)
        assert s.n == 3

    def test_ci_contains_mean(self):
        s = summarize_utilities([0.5, 0.7, 0.9, 0.6, 0.8])
        assert s.ci_low <= s.mean <= s.ci_high

    def test_ci_narrows_with_samples(self):
        gen = np.random.default_rng(0)
        small = summarize_utilities(gen.normal(0.8, 0.1, size=10))
        large = summarize_utilities(gen.normal(0.8, 0.1, size=1000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_higher_confidence_wider_interval(self):
        data = list(np.random.default_rng(1).normal(0.5, 0.2, size=50))
        narrow = summarize_utilities(data, confidence=0.5)
        wide = summarize_utilities(data, confidence=0.99)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    def test_single_sample_degenerate(self):
        s = summarize_utilities([0.7])
        assert s.mean == s.ci_low == s.ci_high == 0.7

    def test_coverage_of_90_ci(self):
        """The 90% t-interval actually covers the true mean ~90% of the time."""
        gen = np.random.default_rng(7)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = gen.normal(0.8, 0.1, size=25)
            s = summarize_utilities(sample, confidence=0.90)
            if s.ci_low <= 0.8 <= s.ci_high:
                hits += 1
        assert 0.85 <= hits / trials <= 0.95

    def test_as_row_format(self):
        row = summarize_utilities([0.9, 0.9, 0.9]).as_row()
        assert row[0] == "0.90"
        assert row[1].startswith("(")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_utilities([])

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            summarize_utilities([0.5], confidence=1.5)


class TestRuntimeSummary:
    def test_min_max_avg(self):
        s = summarize_runtimes([1.0, 3.0, 2.0])
        assert s.t_min == 1.0
        assert s.t_max == 3.0
        assert s.t_avg == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runtimes([])

    def test_as_row_is_humanised(self):
        row = summarize_runtimes([0.5, 1.5]).as_row()
        assert row[0] == "500.0ms"
        assert row[1] == "1.50s"


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(5e-6) == "5us"

    def test_milliseconds(self):
        assert format_duration(0.0123) == "12.3ms"

    def test_seconds(self):
        assert format_duration(42.5) == "42.50s"

    def test_minutes(self):
        assert format_duration(3600.0) == "60.0m"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestHistogramSeries:
    def test_counts_sum_to_n(self):
        counts, edges = histogram_series([0.1, 0.2, 0.9], bins=5)
        assert counts.sum() == 3
        assert len(edges) == 6

    def test_fixed_range(self):
        counts, edges = histogram_series([0.5], bins=10, value_range=(0.0, 1.0))
        assert edges[0] == 0.0
        assert edges[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram_series([])

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            histogram_series([1.0], bins=0)

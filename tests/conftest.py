"""Shared fixtures: a micro dataset sized so full enumeration is instant.

The micro schema has three attributes of three values each (t = 9), so the
context space has 512 bitmasks, 343 structurally valid contexts, and 64
contexts containing any given record — small enough that every integration
test can compare sampled behaviour against exhaustively computed truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import ReferenceFile
from repro.core.verification import OutlierVerifier
from repro.data.generators import (
    SALARY_EMPLOYERS,
    SALARY_JOB_TITLES,
    SALARY_YEARS,
    synthetic_salary_dataset,
    tiny_income_dataset,
)
from repro.outliers.zscore import ZScoreDetector
from repro.schema import CategoricalAttribute, MetricAttribute, Schema


def make_mini_schema() -> Schema:
    return Schema(
        attributes=[
            CategoricalAttribute("Jobtitle", SALARY_JOB_TITLES[:3]),
            CategoricalAttribute("Employer", SALARY_EMPLOYERS[:3]),
            CategoricalAttribute("Year", SALARY_YEARS[:3]),
        ],
        metric=MetricAttribute("Salary"),
    )


def make_mini_dataset(n_records: int = 300, seed: int = 3):
    return synthetic_salary_dataset(
        n_records=n_records,
        seed=seed,
        anomaly_fraction=0.04,
        schema=make_mini_schema(),
    )


@pytest.fixture(scope="session")
def mini_schema() -> Schema:
    return make_mini_schema()


@pytest.fixture(scope="session")
def mini_dataset():
    return make_mini_dataset()


@pytest.fixture(scope="session")
def mini_detector():
    return ZScoreDetector(z_threshold=2.5, min_population=8)


@pytest.fixture(scope="session")
def mini_verifier(mini_dataset, mini_detector):
    return OutlierVerifier(mini_dataset, mini_detector)


@pytest.fixture(scope="session")
def mini_reference(mini_verifier):
    return ReferenceFile.build(mini_verifier)


@pytest.fixture(scope="session")
def mini_outlier(mini_reference) -> int:
    """A record with a healthy number of matching contexts."""
    best = None
    for rid in mini_reference.outlier_records():
        n = len(mini_reference.matching_contexts(rid))
        if best is None or n > best[1]:
            best = (rid, n)
    assert best is not None, "micro dataset produced no contextual outliers"
    assert best[1] >= 5, f"best outlier has only {best[1]} matching contexts"
    return best[0]


@pytest.fixture(scope="session")
def tiny_dataset():
    return tiny_income_dataset()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)

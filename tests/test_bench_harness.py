"""Benchmark-telemetry harness: schema, comparison, registry, baselines.

The harness itself lives at ``benchmarks/harness.py`` (stdlib-only, loaded
by file location); these tests cover the pieces CI depends on — document
validation, noise-aware baseline comparison, the bench registry staying in
sync with the files on disk, and the committed baselines parsing cleanly.
The actual benchmark execution path is exercised by ``pcor bench --quick``
in CI, not here (it runs whole benchmarks).
"""

import json
from pathlib import Path

import pytest

from repro.cli import load_bench_harness

harness = load_bench_harness()

REPO = Path(__file__).resolve().parents[1]


def valid_doc(name="demo", **overrides):
    doc = harness.bench_document(
        name,
        [
            harness.metric("p50_ms", 12.5, "ms", direction="lower", tolerance=0.5),
            harness.metric("rps", 80.0, "rps", direction="higher", tolerance=0.5),
            harness.metric("note", 1.0, "x"),
        ],
    )
    doc.update(overrides)
    return doc


class TestDocuments:
    def test_metric_rows(self):
        row = harness.metric("p50_ms", 12, "ms", direction="lower")
        assert row == {
            "metric": "p50_ms",
            "value": 12.0,
            "unit": "ms",
            "direction": "lower",
            "tolerance": harness.DEFAULT_TOLERANCE,
        }
        assert "direction" not in harness.metric("x", 1, "ms")
        with pytest.raises(ValueError, match="direction"):
            harness.metric("x", 1, "ms", direction="sideways")

    def test_document_shape_and_fingerprint(self):
        doc = valid_doc("bench_demo")
        assert doc["schema"] == harness.SCHEMA
        assert doc["name"] == "demo"  # bench_ prefix stripped
        assert doc["git_sha"] is None or len(doc["git_sha"]) == 40
        for key in ("python", "platform", "cpus", "scale"):
            assert key in doc["env"]
        assert harness.validate_bench(doc) == []

    def test_malformed_documents_are_rejected(self):
        assert harness.validate_bench("not a dict")
        assert harness.validate_bench({})
        cases = [
            {"schema": "pcor-bench/999"},
            {"metrics": []},
            {"metrics": [{"metric": "a", "value": "NaN-ish", "unit": "ms"}]},
            {"metrics": [{"metric": "a", "value": 1, "unit": "ms"}] * 2},
            {"metrics": [{"metric": "a", "value": 1, "unit": "ms", "direction": "lower"}]},
        ]
        for override in cases:
            assert harness.validate_bench(valid_doc(**override)), override
        with pytest.raises(ValueError, match="malformed"):
            harness.bench_document("bad", [{"metric": "a"}])

    def test_write_and_load_round_trip(self, tmp_path):
        path = harness.write_bench_json(
            tmp_path,
            "bench_demo",
            [harness.metric("p50_ms", 1.5, "ms", direction="lower")],
            context={"records": 300},
        )
        assert path.name == "BENCH_demo.json"
        loaded = harness.load_results(tmp_path)
        assert set(loaded) == {"demo"}
        assert loaded["demo"]["context"] == {"records": 300}
        assert harness.validate_bench(loaded["demo"]) == []

    def test_trajectory_appends_jsonl(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        harness.append_trajectory([valid_doc()], path=path)
        harness.append_trajectory([valid_doc()], path=path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["name"] == "demo" for line in lines)


class TestComparison:
    def test_statuses(self):
        baseline = valid_doc()
        current = valid_doc()
        current["metrics"][0]["value"] = 12.5 * 1.6  # p50 +60% > 50% tol
        current["metrics"][1]["value"] = 80.0 * 1.7  # rps +70% (higher=better)
        rows = {r["metric"]: r for r in harness.compare(current, baseline)}
        assert rows["p50_ms"]["status"] == "regression"
        assert rows["rps"]["status"] == "improved"
        assert rows["note"]["status"] == "info"
        assert rows["p50_ms"]["baseline"] == 12.5
        assert rows["p50_ms"]["delta"] == pytest.approx(0.6)

    def test_within_tolerance_is_ok(self):
        baseline = valid_doc()
        current = valid_doc()
        current["metrics"][0]["value"] = 12.5 * 1.3  # +30% < 50% tolerance
        rows = {r["metric"]: r for r in harness.compare(current, baseline)}
        assert rows["p50_ms"]["status"] == "ok"

    def test_no_baseline_is_new_not_regression(self):
        rows = {r["metric"]: r for r in harness.compare(valid_doc(), None)}
        assert rows["p50_ms"]["status"] == "new"
        assert rows["note"]["status"] == "info"

    def test_zero_baseline_does_not_divide(self):
        baseline = valid_doc()
        baseline["metrics"][0]["value"] = 0.0
        rows = {r["metric"]: r for r in harness.compare(valid_doc(), baseline)}
        assert rows["p50_ms"]["status"] == "regression"
        assert rows["p50_ms"]["delta"] is None  # infinite relative move


class TestRegistry:
    def test_registry_files_exist(self):
        for name, spec in harness.BENCHES.items():
            assert (REPO / "benchmarks" / spec["file"]).is_file(), name
            assert spec["emits"], name

    def test_emitted_names_are_unique(self):
        emitted = [e for spec in harness.BENCHES.values() for e in spec["emits"]]
        assert len(emitted) == len(set(emitted))

    def test_select_benches(self):
        assert set(harness.select_benches(None, quick=True)) == {
            name
            for name, spec in harness.BENCHES.items()
            if spec["quick"]
        }
        assert harness.select_benches(["micro_kernels"]) == ["micro_kernels"]
        with pytest.raises(ValueError, match="unknown benchmark"):
            harness.select_benches(["nope"])

    def test_quick_subset_covers_at_least_three_documents(self):
        quick = harness.select_benches(None, quick=True)
        emitted = [e for name in quick for e in harness.BENCHES[name]["emits"]]
        assert len(emitted) >= 3  # the CI acceptance floor

    def test_committed_baselines_are_valid_documents(self):
        baselines = harness.load_results(harness.BASELINES_DIR)
        assert baselines, "no committed baselines under benchmarks/baselines/"
        for name, doc in baselines.items():
            assert harness.validate_bench(doc) == [], name

    def test_render_report_smoke(self):
        report = {
            "runs": [{"bench": "demo", "returncode": 0, "duration_s": 1.0}],
            "comparisons": {"demo": harness.compare(valid_doc(), valid_doc())},
            "problems": [],
            "regressions": [],
        }
        text = harness.render_report(report)
        assert "demo" in text
        assert "no regressions" in text

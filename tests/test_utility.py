"""Unit tests for the utility functions (Section 3.2)."""

import math

import numpy as np
import pytest

from repro.core.utility import (
    OverlapUtility,
    PopulationSizeUtility,
    SparsityUtility,
    StartingDistanceUtility,
    make_utility,
)
from repro.exceptions import ContextError


@pytest.fixture(scope="module")
def outlier_context(mini_reference, mini_outlier):
    """A matching context for the shared outlier."""
    return mini_reference.matching_contexts(mini_outlier)[0]


class TestPopulationSize:
    def test_matching_context_scores_population(
        self, mini_verifier, mini_outlier, outlier_context
    ):
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        score = util.score(outlier_context)
        assert score == float(mini_verifier.population_size(outlier_context))
        assert score > 0

    def test_non_matching_scores_neg_inf(self, mini_verifier, mini_dataset, mini_reference):
        # A record that is nowhere an outlier scores -inf everywhere.
        outliers = set(mini_reference.outlier_records())
        normal = next(
            int(r) for r in mini_dataset.ids if int(r) not in outliers
        )
        util = PopulationSizeUtility(mini_verifier, normal)
        assert util.score(mini_dataset.schema.full_bits) == -math.inf

    def test_sensitivity_is_one(self, mini_verifier, mini_outlier):
        assert PopulationSizeUtility(mini_verifier, mini_outlier).sensitivity == 1.0

    def test_scores_vector(self, mini_verifier, mini_outlier, mini_reference):
        contexts = list(mini_reference.matching_contexts(mini_outlier)[:5])
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        scores = util.scores(contexts)
        assert scores.shape == (len(contexts),)
        assert (scores > 0).all()

    def test_unknown_record_rejected(self, mini_verifier):
        with pytest.raises(ContextError, match="not in dataset"):
            PopulationSizeUtility(mini_verifier, 99_999)


class TestOverlap:
    def test_self_overlap_is_population(self, mini_verifier, mini_outlier, outlier_context):
        util = OverlapUtility(mini_verifier, mini_outlier, outlier_context)
        assert util.score(outlier_context) == float(
            mini_verifier.population_size(outlier_context)
        )

    def test_overlap_matches_brute_force(
        self, mini_verifier, mini_outlier, mini_reference
    ):
        contexts = mini_reference.matching_contexts(mini_outlier)
        start = contexts[0]
        util = OverlapUtility(mini_verifier, mini_outlier, start)
        start_mask = mini_verifier.masks.population_mask(start)
        for bits in contexts[:10]:
            mask = mini_verifier.masks.population_mask(bits)
            expected = int(np.count_nonzero(mask & start_mask))
            assert util.overlap_size(bits) == expected

    def test_overlap_bounded_by_both_populations(
        self, mini_verifier, mini_outlier, mini_reference
    ):
        contexts = mini_reference.matching_contexts(mini_outlier)
        start = contexts[0]
        util = OverlapUtility(mini_verifier, mini_outlier, start)
        start_pop = mini_verifier.population_size(start)
        for bits in contexts[:10]:
            overlap = util.overlap_size(bits)
            assert overlap <= start_pop
            assert overlap <= mini_verifier.population_size(bits)

    def test_overlap_cache_consistent(self, mini_verifier, mini_outlier, outlier_context):
        util = OverlapUtility(mini_verifier, mini_outlier, outlier_context)
        assert util.overlap_size(outlier_context) == util.overlap_size(outlier_context)

    def test_bad_starting_bits(self, mini_verifier, mini_outlier):
        with pytest.raises(ContextError, match="out of range"):
            OverlapUtility(mini_verifier, mini_outlier, 1 << 40)

    def test_non_matching_scores_neg_inf(
        self, mini_verifier, mini_outlier, outlier_context, mini_dataset
    ):
        util = OverlapUtility(mini_verifier, mini_outlier, outlier_context)
        record_bits = mini_dataset.record_bits(mini_outlier)
        lowest = record_bits & -record_bits
        non_containing = mini_dataset.schema.full_bits & ~lowest
        assert util.score(non_containing) == -math.inf


class TestStructuralUtilities:
    def test_starting_distance(self, mini_verifier, mini_outlier, outlier_context):
        util = StartingDistanceUtility(mini_verifier, mini_outlier, outlier_context)
        assert util.score(outlier_context) == 0.0
        assert util.sensitivity == 0.0

    def test_sparsity_prefers_small_contexts(
        self, mini_verifier, mini_outlier, mini_reference
    ):
        contexts = sorted(
            mini_reference.matching_contexts(mini_outlier),
            key=lambda b: b.bit_count(),
        )
        if len(contexts) < 2 or contexts[0].bit_count() == contexts[-1].bit_count():
            pytest.skip("need matching contexts of different sizes")
        util = SparsityUtility(mini_verifier, mini_outlier)
        assert util.score(contexts[0]) > util.score(contexts[-1])


class TestMakeUtility:
    def test_population_size(self, mini_verifier, mini_outlier):
        util = make_utility("population_size", mini_verifier, mini_outlier)
        assert isinstance(util, PopulationSizeUtility)

    def test_overlap_requires_start(self, mini_verifier, mini_outlier):
        with pytest.raises(ContextError, match="starting context"):
            make_utility("overlap", mini_verifier, mini_outlier)

    def test_overlap_with_start(self, mini_verifier, mini_outlier, outlier_context):
        util = make_utility("overlap", mini_verifier, mini_outlier, outlier_context)
        assert isinstance(util, OverlapUtility)

    def test_unknown_name(self, mini_verifier, mini_outlier):
        with pytest.raises(ContextError, match="unknown utility"):
            make_utility("magic", mini_verifier, mini_outlier)

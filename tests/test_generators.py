"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.generators import (
    HOMICIDE_AGENCY_TYPES,
    homicide_reduced,
    homicide_schema,
    salary_reduced,
    salary_schema,
    synthetic_homicide_dataset,
    synthetic_salary_dataset,
    tiny_income_dataset,
)


class TestSalarySchema:
    def test_paper_domain_sizes(self):
        schema = salary_schema()
        sizes = [len(a) for a in schema.attributes]
        assert sizes == [9, 8, 8]  # Jobtitle x9, Employer x8, Year x8
        assert schema.t == 25
        assert schema.metric.name == "Salary"

    def test_reduced_has_14_attribute_values(self):
        ds = salary_reduced(n_records=100, seed=1)
        assert ds.schema.t == 14  # Section 6.5/6.7: 14 attribute values
        assert ds.schema.m == 3


class TestHomicideSchema:
    def test_paper_domain_sizes(self):
        schema = homicide_schema()
        sizes = [len(a) for a in schema.attributes]
        assert sizes == [4, 6, 6]
        assert schema.metric.name == "VictimAge"

    def test_reduced_has_12_attribute_values(self):
        ds = homicide_reduced(n_records=100, seed=1)
        assert ds.schema.t == 12  # Section 6.7: 12 attribute values
        assert ds.schema.m == 3


class TestGeneration:
    def test_record_count(self):
        assert len(synthetic_salary_dataset(n_records=500, seed=0)) == 500

    def test_deterministic_for_seed(self):
        a = synthetic_salary_dataset(n_records=200, seed=42)
        b = synthetic_salary_dataset(n_records=200, seed=42)
        assert np.array_equal(a.metric, b.metric)
        for attr in a.schema.attributes:
            assert np.array_equal(a.codes(attr.name), b.codes(attr.name))

    def test_different_seeds_differ(self):
        a = synthetic_salary_dataset(n_records=200, seed=1)
        b = synthetic_salary_dataset(n_records=200, seed=2)
        assert not np.array_equal(a.metric, b.metric)

    def test_absent_domain_values_stay_absent(self):
        ds = synthetic_salary_dataset(n_records=2000, seed=0)
        # Section 4: the domain declares values the data never contains.
        jobs = {rec["Jobtitle"] for _, rec in ds.iter_records()}
        assert "DeputyMinister" not in jobs
        employers = {rec["Employer"] for _, rec in ds.iter_records()}
        assert "ProvincialCourts" not in employers

    def test_homicide_absent_agency(self):
        ds = synthetic_homicide_dataset(n_records=2000, seed=0)
        agencies = {rec["AgencyType"] for _, rec in ds.iter_records()}
        assert "FederalAgency" not in agencies
        assert "FederalAgency" in HOMICIDE_AGENCY_TYPES

    def test_salary_values_positive(self):
        ds = synthetic_salary_dataset(n_records=500, seed=3)
        assert (ds.metric > 0).all()

    def test_homicide_age_floor(self):
        ds = synthetic_homicide_dataset(n_records=500, seed=3)
        assert (ds.metric >= 1.0).all()

    def test_anomalies_stay_within_global_range_of_base(self):
        clean = synthetic_salary_dataset(
            n_records=1000, seed=9, anomaly_fraction=0.0
        )
        planted = synthetic_salary_dataset(
            n_records=1000, seed=9, anomaly_fraction=0.05
        )
        # Planting clamps to the clean global range, so the overall spread
        # must not explode.
        assert planted.metric.max() <= clean.metric.max() * 1.0001
        assert planted.metric.min() >= clean.metric.min() * 0.9999

    def test_anomaly_fraction_zero_changes_nothing(self):
        a = synthetic_salary_dataset(n_records=300, seed=5, anomaly_fraction=0.0)
        b = synthetic_salary_dataset(n_records=300, seed=5, anomaly_fraction=0.0)
        assert np.array_equal(a.metric, b.metric)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError, match="n_records"):
            synthetic_salary_dataset(n_records=0)
        with pytest.raises(ValueError, match="anomaly_fraction"):
            synthetic_salary_dataset(n_records=10, anomaly_fraction=1.5)

    def test_anomalies_are_locally_extreme(self):
        """Planted anomalies should be outliers within their own context."""
        ds = synthetic_salary_dataset(n_records=3000, seed=13, anomaly_fraction=0.02)
        # Group records by (Jobtitle, Employer); find per-group z-scores.
        job = ds.codes("Jobtitle")
        emp = ds.codes("Employer")
        keys = job.astype(np.int64) * 100 + emp.astype(np.int64)
        extreme = 0
        for key in np.unique(keys):
            vals = ds.metric[keys == key]
            if vals.size < 30:
                continue
            z = np.abs(vals - np.median(vals)) / (vals.std() or 1.0)
            extreme += int((z > 3.0).sum())
        assert extreme >= 5, "expected some strong within-context anomalies"


class TestTinyIncome:
    def test_matches_paper_table_1(self):
        ds = tiny_income_dataset()
        assert len(ds) == 10
        assert ds.schema.t == 9
        # Record 8 of Table 1 (id 7 here) is the paper's outlier V:
        # a Lawyer in Ottawa's Diplomatic district.
        rec = ds.record(7)
        assert rec["Jobtitle"] == "Lawyer"
        assert rec["City"] == "Ottawa"
        assert rec["District"] == "Diplomatic"
        # And its salary is the extreme one.
        assert rec["Salary"] == ds.metric.max()

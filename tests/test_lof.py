"""Unit tests for the from-scratch 1-d LOF, checked against an O(n^2) oracle."""

import numpy as np
import pytest

from repro.outliers.lof import LOFDetector, lof_scores


def lof_scores_bruteforce(values: np.ndarray, k: int) -> np.ndarray:
    """Direct transcription of Breunig et al. with exact-k neighbours.

    Quadratic reference implementation used only to validate the vectorised
    windowed version.  Ties broken by (distance, sorted position) like the
    production code.
    """
    arr = np.asarray(values, dtype=np.float64)
    n = arr.shape[0]
    order = np.argsort(arr, kind="stable")
    sv = arr[order]

    nbrs = np.zeros((n, k), dtype=np.int64)
    kdist = np.zeros(n)
    for i in range(n):
        dists = np.abs(sv - sv[i])
        dists[i] = np.inf
        cand = sorted(range(n), key=lambda j: (dists[j], j))[:k]
        nbrs[i] = cand
        kdist[i] = dists[cand[-1]]

    lrd = np.zeros(n)
    for i in range(n):
        reach = [max(kdist[j], abs(sv[j] - sv[i])) for j in nbrs[i]]
        mean_reach = float(np.mean(reach))
        lrd[i] = np.inf if mean_reach == 0.0 else 1.0 / mean_reach

    scores_sorted = np.zeros(n)
    for i in range(n):
        ratios = []
        for j in nbrs[i]:
            if np.isinf(lrd[j]) and np.isinf(lrd[i]):
                ratios.append(1.0)
            else:
                ratios.append(lrd[j] / lrd[i])
        scores_sorted[i] = float(np.mean(ratios))

    scores = np.empty(n)
    scores[order] = scores_sorted
    return scores


class TestScoresAgainstOracle:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_bruteforce_random(self, k, rng):
        values = rng.normal(0.0, 1.0, size=60)
        fast = lof_scores(values, k)
        slow = lof_scores_bruteforce(values, k)
        assert np.allclose(fast, slow, rtol=1e-10, equal_nan=True)

    def test_matches_bruteforce_with_cluster_and_outlier(self, rng):
        values = np.concatenate([rng.normal(0.0, 0.5, size=40), [25.0]])
        assert np.allclose(
            lof_scores(values, 4), lof_scores_bruteforce(values, 4), rtol=1e-10
        )

    def test_matches_bruteforce_with_duplicates(self):
        values = np.array([1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 9.0])
        assert np.allclose(
            lof_scores(values, 2), lof_scores_bruteforce(values, 2), rtol=1e-10
        )


class TestScoreSemantics:
    def test_uniform_grid_scores_near_one(self):
        values = np.linspace(0.0, 1.0, 200)
        scores = lof_scores(values, 5)
        interior = scores[10:-10]
        assert np.all(np.abs(interior - 1.0) < 0.25)

    def test_isolated_point_scores_high(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, size=99), [30.0]])
        scores = lof_scores(values, 10)
        assert scores[99] > 2.0
        assert scores[99] == scores.max()

    def test_all_duplicates_score_one(self):
        scores = lof_scores(np.full(30, 3.0), 5)
        assert np.allclose(scores, 1.0)

    def test_needs_more_than_k_points(self):
        with pytest.raises(ValueError, match="more than"):
            lof_scores(np.arange(5.0), 5)

    def test_deterministic(self, rng):
        values = rng.normal(size=120)
        assert np.array_equal(lof_scores(values, 7), lof_scores(values.copy(), 7))

    def test_scale_invariance(self, rng):
        # LOF is a ratio of densities, so positive rescaling preserves scores.
        values = rng.normal(size=80)
        a = lof_scores(values, 5)
        b = lof_scores(values * 1000.0, 5)
        assert np.allclose(a, b, rtol=1e-9)


class TestDetector:
    def test_flags_isolated_point(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, size=99), [30.0]])
        det = LOFDetector(k=10, threshold=1.5)
        assert 99 in det.outlier_positions(values)

    def test_threshold_controls_strictness(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, size=200), [8.0]])
        loose = LOFDetector(k=10, threshold=1.1)
        strict = LOFDetector(k=10, threshold=50.0)
        assert len(loose.outlier_positions(values)) >= len(
            strict.outlier_positions(values)
        )
        assert strict.outlier_positions(values).size == 0

    def test_min_population_covers_k(self):
        det = LOFDetector(k=10)
        assert det.min_population >= 11
        # Too-small populations are silently clean, never an error.
        assert det.outlier_positions(np.arange(5.0)).size == 0

    def test_explicit_min_population_respects_k_floor(self):
        det = LOFDetector(k=10, min_population=2)
        assert det.min_population == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            LOFDetector(k=0)
        with pytest.raises(ValueError):
            LOFDetector(threshold=0.0)

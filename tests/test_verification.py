"""Unit tests for the cached outlier verifier (f_M)."""

import numpy as np
import pytest

from repro.core.verification import OutlierVerifier
from repro.data.masks import PredicateMaskIndex
from repro.exceptions import VerificationError
from repro.outliers.zscore import ZScoreDetector


class TestProfiles:
    def test_full_context_profile(self, mini_dataset, mini_detector):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        pop, outliers = verifier.context_profile(mini_dataset.schema.full_bits)
        assert pop == len(mini_dataset)
        # Outlier ids must be real record ids.
        for rid in outliers:
            assert mini_dataset.has_record(rid)

    def test_empty_context_profile(self, mini_dataset, mini_detector):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        pop, outliers = verifier.context_profile(0)
        assert pop == 0
        assert outliers == frozenset()

    def test_profile_matches_direct_detector_run(self, mini_dataset, mini_detector):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        bits = mini_dataset.schema.full_bits
        _, outliers = verifier.context_profile(bits)
        positions = mini_detector.outlier_positions(mini_dataset.metric)
        expected = frozenset(int(mini_dataset.ids[p]) for p in positions)
        assert outliers == expected

    def test_population_size_shortcut(self, mini_verifier, mini_dataset):
        assert (
            mini_verifier.population_size(mini_dataset.schema.full_bits)
            == len(mini_dataset)
        )


class TestCaching:
    def test_second_profile_is_cached(self, mini_dataset, mini_detector):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        bits = mini_dataset.schema.full_bits
        verifier.context_profile(bits)
        evals = verifier.fm_evaluations
        verifier.context_profile(bits)
        assert verifier.fm_evaluations == evals

    def test_cache_size_grows(self, mini_dataset, mini_detector):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        assert verifier.cache_size() == 0
        verifier.context_profile(0b111_111_111)
        verifier.context_profile(0b111_111_110)
        assert verifier.cache_size() == 2

    def test_clear_cache(self, mini_dataset, mini_detector):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        verifier.context_profile(0b111_111_111)
        verifier.clear_cache()
        assert verifier.cache_size() == 0

    def test_reset_counters(self, mini_dataset, mini_detector):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        verifier.context_profile(0b111_111_111)
        verifier.reset_counters()
        assert verifier.fm_evaluations == 0
        assert verifier.fm_queries == 0


class TestIsMatching:
    def test_requires_containment(self, mini_verifier, mini_dataset):
        rid = int(mini_dataset.ids[0])
        record_bits = mini_dataset.record_bits(rid)
        # A context missing one of the record's own bits can never match.
        lowest_bit = record_bits & -record_bits
        bits = mini_dataset.schema.full_bits & ~lowest_bit
        assert not mini_verifier.is_matching(bits, rid)

    def test_containment_shortcircuit_skips_detector(
        self, mini_dataset, mini_detector
    ):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        rid = int(mini_dataset.ids[0])
        record_bits = mini_dataset.record_bits(rid)
        lowest_bit = record_bits & -record_bits
        bits = mini_dataset.schema.full_bits & ~lowest_bit
        verifier.is_matching(bits, rid)
        assert verifier.fm_evaluations == 0  # no profile computed

    def test_matching_agrees_with_profile(self, mini_verifier, mini_reference, mini_outlier):
        for bits in mini_reference.matching_contexts(mini_outlier)[:20]:
            assert mini_verifier.is_matching(bits, mini_outlier)

    def test_unknown_record_raises(self, mini_verifier, mini_dataset):
        with pytest.raises(VerificationError, match="not in dataset"):
            mini_verifier.is_matching(mini_dataset.schema.full_bits, 10_000)

    def test_queries_counted(self, mini_dataset, mini_detector):
        verifier = OutlierVerifier(mini_dataset, mini_detector)
        rid = int(mini_dataset.ids[0])
        verifier.is_matching(mini_dataset.schema.full_bits, rid)
        verifier.is_matching(mini_dataset.schema.full_bits, rid)
        assert verifier.fm_queries == 2


class TestConstruction:
    def test_shared_mask_index(self, mini_dataset, mini_detector):
        index = PredicateMaskIndex(mini_dataset)
        a = OutlierVerifier(mini_dataset, mini_detector, index)
        b = OutlierVerifier(mini_dataset, mini_detector, index)
        assert a.masks is b.masks

    def test_foreign_mask_index_rejected(self, mini_dataset, mini_detector):
        other = mini_dataset.without_records([int(mini_dataset.ids[0])])
        index = PredicateMaskIndex(other)
        with pytest.raises(VerificationError, match="different dataset"):
            OutlierVerifier(mini_dataset, mini_detector, index)

    def test_min_population_respected(self, mini_dataset):
        detector = ZScoreDetector(z_threshold=0.1, min_population=10_000)
        verifier = OutlierVerifier(mini_dataset, detector)
        _, outliers = verifier.context_profile(mini_dataset.schema.full_bits)
        assert outliers == frozenset()

"""Unit tests for neighbouring-dataset generation (OCDP machinery)."""

import numpy as np
import pytest

from repro.data.neighbors import add_random_records, neighboring_dataset, remove_random_records
from repro.exceptions import DatasetError
from repro.mechanisms.ocdp import differ_by_one_record


class TestRemove:
    def test_removes_exactly_delta(self, mini_dataset, rng):
        out = remove_random_records(mini_dataset, 5, rng)
        assert len(out) == len(mini_dataset) - 5

    def test_protected_ids_survive(self, mini_dataset, rng):
        protected = [0, 1, 2]
        for _ in range(10):
            out = remove_random_records(
                mini_dataset, 50, rng, protected_ids=protected
            )
            for rid in protected:
                assert out.has_record(rid)

    def test_remove_zero_is_identity_sized(self, mini_dataset, rng):
        out = remove_random_records(mini_dataset, 0, rng)
        assert len(out) == len(mini_dataset)

    def test_negative_delta_rejected(self, mini_dataset, rng):
        with pytest.raises(DatasetError):
            remove_random_records(mini_dataset, -1, rng)

    def test_removing_too_many_rejected(self, mini_dataset, rng):
        with pytest.raises(DatasetError, match="cannot remove"):
            remove_random_records(mini_dataset, len(mini_dataset) + 1, rng)

    def test_remove_one_gives_dp_neighbor(self, mini_dataset, rng):
        out = remove_random_records(mini_dataset, 1, rng)
        assert differ_by_one_record(mini_dataset, out)

    def test_deterministic_given_seed(self, mini_dataset):
        a = remove_random_records(mini_dataset, 3, np.random.default_rng(5))
        b = remove_random_records(mini_dataset, 3, np.random.default_rng(5))
        assert list(a.ids) == list(b.ids)


class TestAdd:
    def test_adds_exactly_delta(self, mini_dataset, rng):
        out = add_random_records(mini_dataset, 4, rng)
        assert len(out) == len(mini_dataset) + 4

    def test_added_records_use_fresh_ids(self, mini_dataset, rng):
        out = add_random_records(mini_dataset, 2, rng)
        new_ids = set(int(i) for i in out.ids) - set(int(i) for i in mini_dataset.ids)
        assert len(new_ids) == 2
        assert min(new_ids) > int(mini_dataset.ids.max())

    def test_added_records_are_schema_valid(self, mini_dataset, rng):
        # Construction would raise if categorical values were invalid;
        # also check the metric is finite.
        out = add_random_records(mini_dataset, 10, rng)
        assert np.isfinite(out.metric).all()

    def test_add_zero_is_identity(self, mini_dataset, rng):
        assert add_random_records(mini_dataset, 0, rng) is mini_dataset

    def test_add_one_gives_dp_neighbor(self, mini_dataset, rng):
        out = add_random_records(mini_dataset, 1, rng)
        assert differ_by_one_record(mini_dataset, out)

    def test_negative_delta_rejected(self, mini_dataset, rng):
        with pytest.raises(DatasetError):
            add_random_records(mini_dataset, -1, rng)


class TestNeighboringDataset:
    def test_remove_mode(self, mini_dataset, rng):
        out = neighboring_dataset(mini_dataset, 3, mode="remove", rng=rng)
        assert len(out) == len(mini_dataset) - 3

    def test_add_mode(self, mini_dataset, rng):
        out = neighboring_dataset(mini_dataset, 3, mode="add", rng=rng)
        assert len(out) == len(mini_dataset) + 3

    def test_mixed_mode_total_changes(self, mini_dataset, rng):
        out = neighboring_dataset(mini_dataset, 4, mode="mixed", rng=rng)
        ids_before = set(int(i) for i in mini_dataset.ids)
        ids_after = set(int(i) for i in out.ids)
        assert len(ids_before ^ ids_after) == 4

    def test_unknown_mode_rejected(self, mini_dataset, rng):
        with pytest.raises(DatasetError, match="unknown"):
            neighboring_dataset(mini_dataset, 1, mode="wat", rng=rng)

"""Unit tests for the experiment harness (workbench + runner)."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.harness import (
    Workbench,
    make_sampler,
    run_direct_experiment,
    run_pcor_experiment,
)

BENCH_ARGS = ("salary_reduced", 400, 7, "lof", {"k": 5, "threshold": 1.5})


@pytest.fixture(scope="module")
def bench() -> Workbench:
    return Workbench.get(*BENCH_ARGS)


class TestWorkbench:
    def test_memoised(self, bench):
        assert Workbench.get(*BENCH_ARGS) is bench

    def test_different_config_different_bench(self, bench):
        other = Workbench.get("salary_reduced", 400, 8, "lof", {"k": 5, "threshold": 1.5})
        assert other is not bench

    def test_unknown_dataset(self):
        with pytest.raises(ExperimentError, match="unknown dataset"):
            Workbench.get("census", 100, 0, "lof")

    def test_fresh_verifier_shares_masks(self, bench):
        v1 = bench.fresh_verifier()
        v2 = bench.fresh_verifier()
        assert v1 is not v2
        assert v1.masks is v2.masks
        assert v1.cache_size() == 0

    def test_pick_outliers_deterministic(self, bench):
        a = bench.pick_outliers(5, np.random.default_rng(1))
        b = bench.pick_outliers(5, np.random.default_rng(1))
        assert a == b

    def test_pick_outliers_have_matching_contexts(self, bench):
        for rid in bench.pick_outliers(5, 0, min_matching_contexts=10):
            assert len(bench.reference.matching_contexts(rid)) >= 10

    def test_pick_outliers_floor_fallback(self, bench):
        # An absurd floor must degrade, not error.
        picks = bench.pick_outliers(3, 0, min_matching_contexts=10**9)
        assert picks

    def test_clear_cache(self, bench):
        Workbench.clear_cache()
        try:
            fresh = Workbench.get(*BENCH_ARGS)
            assert fresh is not bench
        finally:
            Workbench.clear_cache()


class TestMakeSampler:
    @pytest.mark.parametrize("name", ["uniform", "random_walk", "dfs", "bfs"])
    def test_known_samplers(self, name):
        sampler = make_sampler(name, 7)
        assert sampler.name == name
        assert sampler.n_samples == 7

    def test_unknown_sampler(self):
        with pytest.raises(ExperimentError, match="unknown sampler"):
            make_sampler("quantum", 7)


class TestRunExperiment:
    def test_summary_structure(self, bench):
        summary = run_pcor_experiment(
            bench,
            sampler_name="bfs",
            epsilon=0.2,
            n_samples=8,
            repetitions=4,
            n_outlier_records=3,
            rng=0,
        )
        assert len(summary.repetitions) == 4
        assert summary.algorithm == "bfs"
        assert summary.detector == "lof"
        us = summary.utility_summary()
        assert 0.0 <= us.mean <= 1.0 + 1e-9
        rt = summary.runtime_summary()
        assert rt.t_min <= rt.t_avg <= rt.t_max

    def test_ratios_in_unit_interval(self, bench):
        summary = run_pcor_experiment(
            bench, "random_walk", repetitions=4, n_samples=8,
            n_outlier_records=3, rng=1,
        )
        for rep in summary.repetitions:
            assert 0.0 <= rep.utility_ratio <= 1.0 + 1e-9
            assert rep.utility_value <= rep.max_utility + 1e-9

    def test_deterministic_given_seed(self, bench):
        a = run_pcor_experiment(
            bench, "bfs", repetitions=3, n_samples=6, n_outlier_records=2, rng=5
        )
        b = run_pcor_experiment(
            bench, "bfs", repetitions=3, n_samples=6, n_outlier_records=2, rng=5
        )
        assert a.utility_ratios == b.utility_ratios

    def test_overlap_utility_experiment(self, bench):
        summary = run_pcor_experiment(
            bench, "bfs", utility_name="overlap", repetitions=3,
            n_samples=6, n_outlier_records=2, rng=2,
        )
        assert summary.utility == "overlap"
        for rep in summary.repetitions:
            assert 0.0 <= rep.utility_ratio <= 1.0 + 1e-9

    def test_fm_counts_recorded(self, bench):
        summary = run_pcor_experiment(
            bench, "bfs", repetitions=3, n_samples=6, n_outlier_records=2, rng=3
        )
        assert summary.mean_fm_evaluations() > 0

    def test_direct_experiment(self, bench):
        summary = run_direct_experiment(
            bench, repetitions=2, n_outlier_records=2, rng=4
        )
        assert summary.algorithm == "direct"
        assert len(summary.repetitions) == 2
        # The direct approach's pool is the whole COE, so its utility ratio
        # is the mechanism's own accuracy - high for decisive populations.
        for rep in summary.repetitions:
            assert rep.utility_ratio > 0.0

"""Tests for the Section 6.7 experiments (COE match, privacy ratio, locality)."""

import pytest

from repro.experiments.coe_match import coe_match_for_detector, table_12
from repro.experiments.config import ExperimentScale
from repro.experiments.harness import Workbench
from repro.experiments.locality import locality_experiment, locality_table
from repro.experiments.privacy_ratio import privacy_ratio_experiment

MICRO = ExperimentScale(
    name="micro",
    salary_records=400,
    salary_reduced_records=400,
    homicide_reduced_records=400,
    repetitions=2,
    n_outlier_records=3,
    n_samples=6,
    coe_neighbors=1,
    coe_outliers=4,
)


@pytest.fixture(scope="module")
def lof_bench():
    return Workbench.get("salary_reduced", 400, 7, "lof", {"k": 5, "threshold": 1.5})


class TestCOEMatch:
    def test_fractions_in_unit_interval(self, lof_bench):
        fractions = coe_match_for_detector(
            lof_bench, deltas=(1, 5), n_neighbors=1, n_outliers=4, rng=0
        )
        assert len(fractions) == 2
        for f in fractions:
            assert 0.0 <= f <= 1.0

    def test_match_degrades_with_delta(self, lof_bench):
        """The paper's core finding: bigger Delta-D, lower match."""
        fractions = coe_match_for_detector(
            lof_bench, deltas=(1, 25), n_neighbors=2, n_outliers=6, rng=1
        )
        assert fractions[0] >= fractions[1] - 0.05  # allow small noise

    def test_table_12_structure(self):
        table = table_12(MICRO, seed=0, deltas=(1, 5))
        assert table.table_id == "12"
        assert [row[0] for row in table.rows] == ["Grubbs", "LOF", "Histogram"]
        assert all(cell.endswith("%") for row in table.rows for cell in row[1:])
        rendered = table.render()
        assert "COE Match" in rendered
        assert "dD = 1" in rendered


class TestPrivacyRatio:
    def test_experiment_structure(self):
        result = privacy_ratio_experiment(
            MICRO, seed=0, epsilon=0.2, detectors=("lof",)
        )
        assert result.epsilon == 0.2
        assert result.bound == pytest.approx(pytest.approx(1.2214, rel=1e-3))
        (max_ratio, n_measured, n_mismatch) = result.by_detector["lof"]
        assert max_ratio >= 0.0
        assert n_measured >= 0
        table = result.to_table()
        assert "max ratio" in table.render()


class TestLocality:
    def test_profile_shape_and_bounds(self):
        results = locality_experiment(
            MICRO, seed=0, detectors=("lof",), max_radius=2, n_centers=3
        )
        assert len(results) == 1
        res = results[0]
        assert res.radii == [0, 1, 2]
        assert res.match_rate_by_radius[0] == 1.0  # the center is matching
        for rate in res.match_rate_by_radius:
            assert 0.0 <= rate <= 1.0
        assert 0.0 < res.global_density < 1.0

    def test_locality_hypothesis_holds(self):
        """Section 5.2: connected contexts are likelier matches than random."""
        results = locality_experiment(
            MICRO, seed=0, detectors=("lof",), max_radius=1, n_centers=5
        )
        res = results[0]
        assert res.match_rate_by_radius[1] > res.global_density

    def test_table_rendering(self):
        results = locality_experiment(
            MICRO, seed=0, detectors=("lof",), max_radius=1, n_centers=2
        )
        text = locality_table(results).render()
        assert "match@r=1" in text
        assert "gain" in text

"""Property-based tests for numeric binning."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.binning import BinSpec

specs = st.builds(
    BinSpec.equal_width,
    st.just("X"),
    st.floats(min_value=-1e3, max_value=0.0),
    st.floats(min_value=1.0, max_value=1e3),
    st.integers(min_value=1, max_value=16),
)


@given(spec=specs)
@settings(max_examples=100)
def test_labels_match_bin_count(spec):
    assert len(spec.labels()) == spec.n_bins
    assert len(set(spec.labels())) == spec.n_bins  # labels are distinct


@given(spec=specs, data=st.data())
@settings(max_examples=100)
def test_assignment_total_and_in_range(spec, data):
    lo, hi = spec.edges[0], spec.edges[-1]
    values = data.draw(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=50),
            elements=st.floats(min_value=lo, max_value=hi, allow_nan=False),
        )
    )
    idx = spec.assign(values)
    assert idx.shape == values.shape
    assert (idx >= 0).all() and (idx < spec.n_bins).all()


@given(spec=specs, data=st.data())
@settings(max_examples=100)
def test_assignment_is_monotone(spec, data):
    """Larger values never land in earlier bins (order preservation)."""
    lo, hi = spec.edges[0], spec.edges[-1]
    values = data.draw(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=40),
            elements=st.floats(min_value=lo, max_value=hi, allow_nan=False),
        )
    )
    ordered = np.sort(values)
    idx = spec.assign(ordered)
    assert (np.diff(idx) >= 0).all()


@given(spec=specs)
@settings(max_examples=100)
def test_edges_assign_to_their_own_bin(spec):
    """Every interior edge belongs to the bin it opens (half-open rule)."""
    interior = np.asarray(spec.edges[1:-1])
    if interior.size:
        idx = spec.assign(interior)
        assert idx.tolist() == list(range(1, spec.n_bins))
    # The global max goes to the last bin.
    assert spec.assign([spec.edges[-1]]).tolist() == [spec.n_bins - 1]


@given(
    values=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=30, max_value=200),
        elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    ),
    n_bins=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60)
def test_quantile_bins_cover_fitted_data(values, n_bins):
    if np.unique(values).size < 2:
        return  # constant data is rejected by construction
    spec = BinSpec.quantile("X", values, n_bins)
    idx = spec.assign(values)  # must not raise: fitted data is in range
    assert (idx >= 0).all() and (idx < spec.n_bins).all()

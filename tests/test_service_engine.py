"""Tests for the ReleaseEngine service layer.

Covers the acceptance criteria of the spec-driven redesign:

* engine-vs-facade equivalence — same seed, same released context bits,
  across all four samplers, including after a spec dict round-trip;
* one engine serving different detectors/epsilons charges one shared
  accountant and rejects over-budget requests before any ``f_M`` run;
* the callable-utility needs-starting-context fix.
"""

import json

import pytest

from repro.analysis.session import ReleaseSession
from repro.core.pcor import PCOR
from repro.core.starting import starting_context_from_reference
from repro.core.utility import OverlapUtility
from repro.core.verification import OutlierVerifier
from repro.exceptions import PrivacyBudgetError, SamplingError, VerificationError
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

ZSCORE_KWARGS = {"z_threshold": 2.5, "min_population": 8}


@pytest.fixture()
def start(mini_reference, mini_outlier):
    return starting_context_from_reference(mini_reference, mini_outlier, 0)


def named_spec(**overrides):
    base = dict(
        detector="zscore",
        detector_kwargs=ZSCORE_KWARGS,
        epsilon=0.5,
        n_samples=6,
    )
    base.update(overrides)
    return PipelineSpec(**base)


class TestEquivalence:
    """ReleaseEngine.submit == PCOR.release, bit for bit, per seed."""

    @pytest.mark.parametrize("sampler", ["uniform", "random_walk", "dfs", "bfs"])
    @pytest.mark.parametrize("utility", ["population_size", "overlap"])
    def test_engine_matches_facade(
        self, mini_dataset, mini_detector, mini_outlier, start, sampler, utility
    ):
        from repro.core.sampling import make_sampler

        pcor = PCOR(
            mini_dataset,
            mini_detector,
            utility=utility,
            epsilon=0.5,
            sampler=make_sampler(sampler, 6),
            verifier=OutlierVerifier(mini_dataset, mini_detector),
        )
        facade = pcor.release(mini_outlier, starting_context=start, seed=11)

        engine = ReleaseEngine(mini_dataset)
        spec = named_spec(sampler=sampler, utility=utility)
        served = engine.submit(
            ReleaseRequest(
                record_id=mini_outlier,
                spec=spec,
                starting_context=start,
                seed=11,
            )
        )
        assert served.context.bits == facade.context.bits
        assert served.algorithm == facade.algorithm
        assert served.utility_value == facade.utility_value

    @pytest.mark.parametrize("sampler", ["uniform", "random_walk", "dfs", "bfs"])
    def test_spec_round_trip_preserves_release(
        self, mini_dataset, mini_outlier, start, sampler
    ):
        spec = named_spec(sampler=sampler)
        rehydrated = PipelineSpec.from_dict(json.loads(spec.to_json()))

        a = ReleaseEngine(mini_dataset).submit(
            ReleaseRequest(mini_outlier, spec, starting_context=start, seed=5)
        )
        b = ReleaseEngine(mini_dataset).submit(
            ReleaseRequest(mini_outlier, rehydrated, starting_context=start, seed=5)
        )
        assert a.context.bits == b.context.bits

    def test_automatic_starting_search_matches_facade(
        self, mini_dataset, mini_detector, mini_outlier
    ):
        pcor = PCOR(
            mini_dataset,
            mini_detector,
            epsilon=0.5,
            verifier=OutlierVerifier(mini_dataset, mini_detector),
        )
        facade = pcor.release(mini_outlier, seed=3)
        served = ReleaseEngine(mini_dataset).submit(
            ReleaseRequest(mini_outlier, named_spec(n_samples=50), seed=3)
        )
        assert served.context.bits == facade.context.bits

    def test_mapping_requests_accepted(self, mini_dataset, mini_outlier, start):
        spec = named_spec()
        a = ReleaseEngine(mini_dataset).submit(
            ReleaseRequest(mini_outlier, spec, starting_context=start, seed=2)
        )
        b = ReleaseEngine(mini_dataset).submit(
            {
                "record_id": mini_outlier,
                "spec": spec.to_dict(),
                "starting_context": start,
                "seed": 2,
            }
        )
        assert a.context.bits == b.context.bits

    def test_invalid_starting_context_rejected(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset)
        with pytest.raises(SamplingError, match="not a matching context"):
            engine.submit(
                ReleaseRequest(mini_outlier, named_spec(), starting_context=0, seed=1)
            )


class TestSharedState:
    def test_one_verifier_per_detector_config(self, mini_dataset, mini_outlier, start):
        engine = ReleaseEngine(mini_dataset)
        for seed in (1, 2):
            engine.submit(
                ReleaseRequest(mini_outlier, named_spec(), starting_context=start, seed=seed)
            )
        engine.submit(
            ReleaseRequest(
                mini_outlier,
                named_spec(detector="iqr", detector_kwargs={}),
                seed=3,
            )
        )
        metrics = engine.metrics()
        assert metrics.n_verifiers == 2
        assert metrics.releases_completed == 3

    def test_profile_cache_shared_across_specs(self, mini_dataset, mini_outlier, start):
        """Different sampler/epsilon specs over one detector share one cache."""
        engine = ReleaseEngine(mini_dataset)
        engine.submit(
            ReleaseRequest(mini_outlier, named_spec(), starting_context=start, seed=1)
        )
        fm_first = engine.metrics().fm_evaluations
        engine.submit(
            ReleaseRequest(
                mini_outlier,
                named_spec(sampler="uniform", epsilon=0.9),
                starting_context=start,
                seed=1,
            )
        )
        metrics = engine.metrics()
        assert metrics.n_verifiers == 1
        assert metrics.profile_hits > 0
        # The t=9 mini space is tiny, so the warmed cache absorbs most of the
        # second spec's probes even though its sampler differs.
        assert metrics.fm_evaluations < 2 * fm_first

    def test_adopted_verifier_serves_matching_requests(
        self, mini_dataset, mini_verifier, mini_outlier, start
    ):
        engine = ReleaseEngine(mini_dataset)
        engine.adopt_verifier(mini_verifier)
        engine.submit(
            ReleaseRequest(mini_outlier, named_spec(), starting_context=start, seed=1)
        )
        assert engine.metrics().n_verifiers == 1

    def test_adopt_foreign_dataset_rejected(self, mini_verifier, tiny_dataset):
        engine = ReleaseEngine(tiny_dataset)
        with pytest.raises(VerificationError, match="different dataset"):
            engine.adopt_verifier(mini_verifier)

    def test_pcor_rejects_mismatched_verifier(self, mini_dataset, mini_verifier):
        """An explicit verifier must carry the same detector configuration,
        or it would be silently bypassed by fingerprint-keyed resolution."""
        from repro.outliers.zscore import ZScoreDetector

        with pytest.raises(SamplingError, match="detector configuration"):
            PCOR(
                mini_dataset,
                ZScoreDetector(z_threshold=9.9, min_population=8),
                verifier=mini_verifier,
            )

    def test_adoption_skips_mask_index_build(self, mini_dataset, mini_verifier):
        """Engines serving only adopted verifiers never build a second index."""
        engine = ReleaseEngine(mini_dataset)
        engine.adopt_verifier(mini_verifier)
        assert engine._masks is None  # lazy: untouched by adoption

    def test_metrics_to_dict(self, mini_dataset, mini_outlier, start):
        engine = ReleaseEngine(mini_dataset)
        engine.submit(
            ReleaseRequest(mini_outlier, named_spec(), starting_context=start, seed=1)
        )
        snapshot = engine.metrics().to_dict()
        assert snapshot["releases_completed"] == 1
        assert snapshot["fm_evaluations"] > 0
        assert json.dumps(snapshot)  # JSON-able


class TestBudget:
    def test_over_budget_rejected_before_any_fm(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset, budget=0.1)
        with pytest.raises(PrivacyBudgetError):
            engine.submit(ReleaseRequest(mini_outlier, named_spec(epsilon=0.2), seed=1))
        metrics = engine.metrics()
        assert metrics.fm_evaluations == 0
        assert metrics.n_verifiers == 0  # no component was even built
        assert metrics.requests_rejected == 1
        assert engine.spent == 0.0

    def test_mixed_detectors_and_epsilons_share_one_ledger(
        self, mini_dataset, mini_outlier, start
    ):
        engine = ReleaseEngine(mini_dataset, budget=0.4)
        engine.submit(
            ReleaseRequest(
                mini_outlier, named_spec(epsilon=0.1), starting_context=start, seed=1
            )
        )
        engine.submit(
            ReleaseRequest(
                mini_outlier,
                named_spec(detector="iqr", detector_kwargs={}, epsilon=0.15),
                seed=2,
            )
        )
        assert engine.spent == pytest.approx(0.25)
        assert engine.metrics().n_verifiers == 2

        fm_before = engine.metrics().fm_evaluations
        with pytest.raises(PrivacyBudgetError):
            engine.submit(
                ReleaseRequest(
                    mini_outlier, named_spec(epsilon=0.2), starting_context=start, seed=3
                )
            )
        assert engine.metrics().fm_evaluations == fm_before  # rejected pre-data
        assert engine.spent == pytest.approx(0.25)
        assert len(engine.accountant.ledger()) == 2
        assert engine.can_submit(0.15) and not engine.can_submit(0.2)

    def test_submit_many_rejects_whole_batch_upfront(self, mini_dataset, mini_outlier):
        """All-or-nothing: a rejected batch must not spend *any* budget."""
        engine = ReleaseEngine(mini_dataset, budget=0.3)
        requests = [
            ReleaseRequest(mini_outlier, named_spec(epsilon=0.2), seed=s)
            for s in (1, 2)
        ]
        with pytest.raises(PrivacyBudgetError, match="batch of 2"):
            engine.submit_many(requests)
        assert engine.spent == 0.0  # the first request was not charged either
        assert engine.metrics().fm_evaluations == 0
        assert engine.metrics().releases_completed == 0
        assert engine.metrics().requests_rejected == 2
        # The untouched budget still admits a single release.
        engine.submit(
            ReleaseRequest(mini_outlier, named_spec(epsilon=0.2), seed=1)
        )
        assert engine.spent == pytest.approx(0.2)

    def test_submit_many_matches_sequential_submits(
        self, mini_dataset, mini_outlier, start
    ):
        """Batch == sequence of singles under the substream contract: a
        shared generator yields one spawned child per request, in request
        order, on every execution backend."""
        import numpy as np

        spec = named_spec()
        batch = ReleaseEngine(mini_dataset).submit_many(
            [
                ReleaseRequest(mini_outlier, spec, starting_context=start, seed=gen)
                for gen in [np.random.default_rng(9)] * 2
            ]
        )
        engine = ReleaseEngine(mini_dataset)
        children = np.random.default_rng(9).spawn(2)
        sequential = [
            engine.submit(
                ReleaseRequest(mini_outlier, spec, starting_context=start, seed=child)
            )
            for child in children
        ]
        assert [r.context.bits for r in batch] == [
            r.context.bits for r in sequential
        ]


class TestAccountantInjection:
    """The server's hooks: a shared accountant and the execute() path."""

    def test_injected_accountant_is_charged_by_submit(
        self, mini_dataset, mini_outlier
    ):
        from repro.mechanisms.accounting import PrivacyAccountant

        shared = PrivacyAccountant(1.0)
        engine = ReleaseEngine(mini_dataset, accountant=shared)
        assert engine.accountant is shared
        engine.submit(ReleaseRequest(mini_outlier, named_spec(epsilon=0.25), seed=1))
        assert shared.spent == pytest.approx(0.25)
        # External charges count against the same ledger submit checks.
        shared.charge("external", 0.7)
        with pytest.raises(PrivacyBudgetError):
            engine.submit(
                ReleaseRequest(mini_outlier, named_spec(epsilon=0.25), seed=2)
            )
        engine.close()

    def test_budget_and_accountant_are_mutually_exclusive(self, mini_dataset):
        from repro.mechanisms.accounting import PrivacyAccountant

        with pytest.raises(PrivacyBudgetError, match="not both"):
            ReleaseEngine(
                mini_dataset, budget=1.0, accountant=PrivacyAccountant(1.0)
            )

    def test_execute_skips_the_ledger_but_counts_the_request(
        self, mini_dataset, mini_outlier
    ):
        engine = ReleaseEngine(mini_dataset, budget=0.1)
        result = engine.execute(
            ReleaseRequest(mini_outlier, named_spec(epsilon=0.5), seed=3)
        )
        assert result.record_id == mini_outlier
        assert engine.spent == 0.0  # admission happened elsewhere
        metrics = engine.metrics()
        assert metrics.requests_submitted == 1
        assert metrics.releases_completed == 1
        engine.close()

    def test_execute_matches_submit_bit_identically(
        self, mini_dataset, mini_outlier
    ):
        spec = named_spec(epsilon=0.5)
        submitting = ReleaseEngine(mini_dataset)
        executing = ReleaseEngine(mini_dataset)
        for seed in (5, 6):
            via_submit = submitting.submit(
                ReleaseRequest(mini_outlier, spec, seed=seed)
            )
            via_execute = executing.execute(
                ReleaseRequest(mini_outlier, spec, seed=seed)
            )
            assert via_execute.context.bits == via_submit.context.bits
        submitting.close()
        executing.close()

    def test_sinked_accountant_gives_durable_engine_accounting(
        self, mini_dataset, mini_outlier, tmp_path
    ):
        """Embedder path: an engine charging a sink-wired accountant gets
        the same WAL-replay durability the HTTP server has, without the
        tenant layer."""
        from repro.mechanisms.accounting import PrivacyAccountant
        from repro.server.ledger import JsonlLedgerStore

        path = tmp_path / "engine.ledger.jsonl"
        store = JsonlLedgerStore(path)
        accountant = PrivacyAccountant(
            0.5,
            sink=lambda label, cost: store.append(
                {"label": label, "epsilon": cost}
            ),
        )
        engine = ReleaseEngine(mini_dataset, accountant=accountant)
        engine.submit(ReleaseRequest(mini_outlier, named_spec(epsilon=0.3), seed=1))
        engine.close()
        store.close()

        # "Restart": replay the WAL into a fresh accountant; the budget
        # picture survives and over-budget submits stay rejected.
        replayed_store = JsonlLedgerStore(path)
        replayed = PrivacyAccountant(0.5)
        replayed.restore(
            [(r["label"], r["epsilon"]) for r in replayed_store.replay()]
        )
        restarted = ReleaseEngine(mini_dataset, accountant=replayed)
        assert restarted.spent == pytest.approx(0.3)
        with pytest.raises(PrivacyBudgetError):
            restarted.submit(
                ReleaseRequest(mini_outlier, named_spec(epsilon=0.3), seed=2)
            )
        restarted.close()
        replayed_store.close()

    def test_metrics_expose_ledger_breakdown(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset, budget=1.0)
        engine.submit(ReleaseRequest(mini_outlier, named_spec(epsilon=0.25), seed=1))
        metrics = engine.metrics()
        assert metrics.epsilon_budget == 1.0
        assert metrics.epsilon_remaining == pytest.approx(0.75)
        assert metrics.ledger_charges == 1
        body = metrics.to_dict()
        assert body["epsilon_budget"] == 1.0
        assert body["spend_by_tenant"] == {}  # filled by the server layer
        assert json.loads(json.dumps(body)) == body
        # Unbudgeted engines report the gauges as None, not 0.
        unbudgeted = ReleaseEngine(mini_dataset)
        assert unbudgeted.metrics().epsilon_budget is None
        engine.close()
        unbudgeted.close()


class TestCallableUtilityNeedsStart:
    """Satellite fix: callable specs are no longer silently start-free."""

    def test_attribute_flag_triggers_search(self, mini_dataset, mini_outlier):
        seen = {}

        def factory(verifier, record_id, starting_bits):
            seen["starting_bits"] = starting_bits
            return OverlapUtility(verifier, record_id, starting_bits)

        factory.needs_starting_context = True
        engine = ReleaseEngine(mini_dataset)
        result = engine.submit(
            ReleaseRequest(
                mini_outlier,
                named_spec(sampler="uniform", utility=factory),
                seed=4,
            )
        )
        assert seen["starting_bits"] is not None
        assert result.starting_context is not None

    def test_explicit_flag_via_pcor(self, mini_dataset, mini_detector, mini_outlier):
        seen = {}

        def factory(verifier, record_id, starting_bits):
            seen["starting_bits"] = starting_bits
            return OverlapUtility(verifier, record_id, starting_bits)

        from repro.core.sampling import UniformSampler

        pcor = PCOR(
            mini_dataset,
            mini_detector,
            utility=factory,
            epsilon=0.5,
            sampler=UniformSampler(n_samples=6),
            verifier=OutlierVerifier(mini_dataset, mini_detector),
            utility_needs_starting_context=True,
        )
        result = pcor.release(mini_outlier, seed=4)
        assert seen["starting_bits"] is not None
        assert result.starting_context is not None

    def test_unflagged_callable_stays_start_free(
        self, mini_dataset, mini_detector, mini_outlier
    ):
        """Without the flag, the engine keeps the historical behaviour."""
        seen = {}

        def factory(verifier, record_id, starting_bits):
            seen["starting_bits"] = starting_bits
            from repro.core.utility import PopulationSizeUtility

            return PopulationSizeUtility(verifier, record_id)

        from repro.core.sampling import UniformSampler

        pcor = PCOR(
            mini_dataset,
            mini_detector,
            utility=factory,
            epsilon=0.5,
            sampler=UniformSampler(n_samples=6),
            verifier=OutlierVerifier(mini_dataset, mini_detector),
        )
        result = pcor.release(mini_outlier, seed=4)
        assert seen["starting_bits"] is None
        assert result.starting_context is None


class TestFacadeIntegration:
    def test_pcor_exposes_its_engine(self, mini_dataset, mini_detector, mini_outlier, start):
        pcor = PCOR(
            mini_dataset,
            mini_detector,
            epsilon=0.5,
            verifier=OutlierVerifier(mini_dataset, mini_detector),
        )
        pcor.release(mini_outlier, starting_context=start, seed=1)
        assert pcor.engine.releases_completed == 1
        assert pcor.engine.metrics().fm_evaluations > 0

    def test_session_shares_engine_ledger(
        self, mini_dataset, mini_detector, mini_verifier, mini_outlier, start
    ):
        """Satellite fix: exactly one ledger between session and engine."""
        from repro.core.sampling import BFSSampler

        pcor = PCOR(
            mini_dataset,
            mini_detector,
            epsilon=0.2,
            sampler=BFSSampler(n_samples=6),
            verifier=mini_verifier,
        )
        session = ReleaseSession(pcor, total_budget=0.5)
        session.release(mini_outlier, starting_context=start, seed=1)
        session.release(mini_outlier, starting_context=start, seed=2)
        assert session.accountant is session.engine.accountant
        assert len(session.accountant.ledger()) == 2
        assert session.spent == pytest.approx(session.engine.spent)

    def test_session_results_share_objects(
        self, mini_dataset, mini_detector, mini_verifier, mini_outlier, start
    ):
        from repro.core.sampling import BFSSampler

        pcor = PCOR(
            mini_dataset,
            mini_detector,
            epsilon=0.2,
            sampler=BFSSampler(n_samples=6),
            verifier=mini_verifier,
        )
        session = ReleaseSession(pcor, total_budget=0.5)
        result = session.release(mini_outlier, starting_context=start, seed=1)
        listed = session.results
        assert listed[0] is result  # the result objects are shared...
        listed.append(None)
        assert len(session.results) == 1  # ...but the list is a fresh copy


class TestResultSerialization:
    def test_to_dict_round_trips_context_bits(
        self, mini_dataset, mini_outlier, start
    ):
        result = ReleaseEngine(mini_dataset).submit(
            ReleaseRequest(mini_outlier, named_spec(), starting_context=start, seed=1)
        )
        data = json.loads(result.to_json())
        assert data["record_id"] == mini_outlier
        assert data["context"]["bits"] == result.context.bits
        assert data["context"]["bitstring"] == result.context.to_bitstring()
        assert data["starting_context"]["bits"] == start.bits
        assert data["stats"]["candidates_collected"] >= 0
        assert data["epsilon_total"] == pytest.approx(0.5)

    def test_startless_result_serializes_null(self, mini_dataset, mini_outlier):
        result = ReleaseEngine(mini_dataset).submit(
            ReleaseRequest(mini_outlier, named_spec(sampler="uniform"), seed=1)
        )
        assert json.loads(result.to_json())["starting_context"] is None

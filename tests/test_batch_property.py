"""Property tests: the batch kernels agree with their scalar wrappers.

The batched verification engine promises bit-exact equivalence between the
batch kernels (``population_masks``, ``profiles``, ``is_matching_many``,
``scores``) and element-wise scalar evaluation, across arbitrary schemas,
datasets and context batches.  Hypothesis drives random instances of all
three through both paths.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import (
    bool_matrix_to_ints,
    bool_to_int,
    int_to_bool,
    ints_to_bool_matrix,
    pack_bool_matrix,
    popcount_rows,
    unpack_words,
)
from repro.core.utility import (
    OverlapUtility,
    PopulationSizeUtility,
    SparsityUtility,
    StartingDistanceUtility,
)
from repro.core.verification import OutlierVerifier
from repro.data.masks import PredicateMaskIndex
from repro.data.table import Dataset
from repro.outliers.zscore import ZScoreDetector
from repro.schema import CategoricalAttribute, MetricAttribute, Schema

# ----------------------------------------------------------------- strategies


@st.composite
def schema_dataset_contexts(draw):
    """A random (dataset, batch-of-context-bits) pair."""
    n_attrs = draw(st.integers(min_value=1, max_value=3))
    attrs = [
        CategoricalAttribute(
            f"A{i}",
            [f"v{i}_{j}" for j in range(draw(st.integers(min_value=2, max_value=4)))],
        )
        for i in range(n_attrs)
    ]
    schema = Schema(attributes=attrs, metric=MetricAttribute("M"))
    n = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    gen = np.random.default_rng(seed)
    columns = {
        a.name: [a.domain[int(c)] for c in gen.integers(0, len(a), size=n)]
        for a in attrs
    }
    metric = gen.normal(loc=50.0, scale=20.0, size=n)
    dataset = Dataset(schema, columns, metric)
    batch = draw(st.integers(min_value=0, max_value=12))
    contexts = [
        draw(st.integers(min_value=0, max_value=(1 << schema.t) - 1))
        for _ in range(batch)
    ]
    return dataset, contexts


PROP_SETTINGS = settings(max_examples=40, deadline=None)


def make_verifier(dataset: Dataset) -> OutlierVerifier:
    return OutlierVerifier(dataset, ZScoreDetector(z_threshold=1.5, min_population=3))


# -------------------------------------------------------------------- bitops


@given(
    bits=st.integers(min_value=0, max_value=(1 << 200) - 1),
    t_extra=st.integers(min_value=0, max_value=16),
)
@PROP_SETTINGS
def test_int_bool_roundtrip(bits, t_extra):
    t = max(bits.bit_length(), 1) + t_extra
    flags = int_to_bool(bits, t)
    assert flags.shape == (t,)
    assert bool_to_int(flags) == bits
    assert all(flags[k] == bool((bits >> k) & 1) for k in range(t))


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rows=st.integers(min_value=0, max_value=5),
    n=st.integers(min_value=0, max_value=200),
)
@PROP_SETTINGS
def test_pack_unpack_popcount_roundtrip(seed, rows, n):
    gen = np.random.default_rng(seed)
    matrix = gen.random((rows, n)) < 0.4
    packed = pack_bool_matrix(matrix)
    assert packed.shape == (rows, (n + 63) // 64)
    for k in range(rows):
        assert np.array_equal(unpack_words(packed[k], n), matrix[k])
    assert np.array_equal(popcount_rows(packed), matrix.sum(axis=1))
    ints = bool_matrix_to_ints(matrix)
    assert np.array_equal(ints_to_bool_matrix(ints, n), matrix)


# ------------------------------------------------------------------ data layer


@given(data=schema_dataset_contexts())
@PROP_SETTINGS
def test_population_masks_match_scalar(data):
    dataset, contexts = data
    index = PredicateMaskIndex(dataset)
    packed = index.population_masks(contexts)
    assert packed.shape == (len(contexts), index.n_words)
    sizes = index.population_sizes(contexts)
    for k, bits in enumerate(contexts):
        scalar_mask = index.population_mask(bits)
        assert np.array_equal(unpack_words(packed[k], len(dataset)), scalar_mask)
        assert sizes[k] == int(np.count_nonzero(scalar_mask))
        assert sizes[k] == index.population_size(bits)


# ---------------------------------------------------------- verification layer


@given(data=schema_dataset_contexts())
@PROP_SETTINGS
def test_profiles_match_scalar(data):
    dataset, contexts = data
    batch_verifier = make_verifier(dataset)
    scalar_verifier = make_verifier(dataset)
    batched = batch_verifier.profiles(contexts)
    for bits, profile in zip(contexts, batched):
        assert profile == scalar_verifier.context_profile(bits)


@given(data=schema_dataset_contexts())
@PROP_SETTINGS
def test_is_matching_many_matches_scalar(data):
    dataset, contexts = data
    verifier = make_verifier(dataset)
    record_id = int(dataset.ids[0])
    batched = verifier.is_matching_many(contexts, record_id)
    fresh = make_verifier(dataset)
    for bits, got in zip(contexts, batched):
        assert bool(got) == fresh.is_matching(bits, record_id)


# --------------------------------------------------------------- utility layer


@given(data=schema_dataset_contexts())
@PROP_SETTINGS
def test_scores_match_scalar(data):
    dataset, contexts = data
    verifier = make_verifier(dataset)
    record_id = int(dataset.ids[0])
    starting_bits = dataset.record_bits(record_id)
    utilities = [
        PopulationSizeUtility(verifier, record_id),
        OverlapUtility(verifier, record_id, starting_bits),
        StartingDistanceUtility(verifier, record_id, starting_bits),
        SparsityUtility(verifier, record_id),
    ]
    for utility in utilities:
        batched = utility.scores(contexts)
        for bits, got in zip(contexts, batched):
            expected = utility.score(bits)
            if math.isinf(expected):
                assert math.isinf(got) and got < 0
            else:
                assert got == pytest.approx(expected)


@given(data=schema_dataset_contexts())
@PROP_SETTINGS
def test_overlap_sizes_match_mask_intersection(data):
    dataset, contexts = data
    verifier = make_verifier(dataset)
    record_id = int(dataset.ids[0])
    starting_bits = dataset.record_bits(record_id)
    utility = OverlapUtility(verifier, record_id, starting_bits)
    starting_mask = verifier.masks.population_mask(starting_bits)
    sizes = utility.overlap_sizes(contexts)
    for bits, got in zip(contexts, sizes):
        expected = int(
            np.count_nonzero(verifier.masks.population_mask(bits) & starting_mask)
        )
        assert int(got) == expected

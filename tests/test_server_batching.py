"""The coalescing admission front end: grouping independence, partial-batch
admission, drain-on-close, and the coalesced HTTP path.

The load-bearing property is *grouping independence*: where the flush
boundaries fall (batches of 1, of k, of everything) must never change what
a given ``(record_id, spec, seed)`` releases — the coalescer is a
throughput lever, invisible in results.  The deterministic tests drive
``flush_now`` directly (``autostart=False``) so every grouping is exact.
"""

import threading

import pytest

from repro.core.verification import OutlierVerifier
from repro.data.generators import salary_reduced
from repro.exceptions import ContextError, PrivacyBudgetError, ReproError
from repro.outliers.zscore import ZScoreDetector
from repro.server import (
    CoalescerClosed,
    InMemoryLedgerStore,
    JsonlLedgerStore,
    PCORClient,
    PCORServer,
    ReleaseCoalescer,
    ServerConfig,
    TenantBudgets,
)
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

RECORDS = 300
SEED = 3

SPEC = {
    "detector": "zscore",
    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
    "sampler": "uniform",
    "epsilon": 0.1,
    "n_samples": 3,
}


@pytest.fixture(scope="module")
def dataset():
    return salary_reduced(n_records=RECORDS, seed=SEED)


@pytest.fixture(scope="module")
def outlier_record(dataset) -> int:
    verifier = OutlierVerifier(
        dataset, ZScoreDetector(z_threshold=2.5, min_population=8)
    )
    for rid in map(int, dataset.ids):
        if verifier.is_matching(dataset.record_bits(rid), rid):
            return rid
    raise AssertionError("no contextual outlier in the test dataset")


def make_requests(outlier_record, n, first_seed=100):
    spec = PipelineSpec.from_dict(SPEC)
    return [
        ReleaseRequest(record_id=outlier_record, spec=spec, seed=first_seed + i)
        for i in range(n)
    ]


def strip_timing(result_dict):
    out = dict(result_dict)
    out.pop("wall_time_s")
    return out


def direct_baseline(dataset, requests):
    """What a lone, unbatched engine releases for each request, in order."""
    engine = ReleaseEngine(dataset)
    try:
        return [strip_timing(engine.submit(r).to_dict()) for r in requests]
    finally:
        engine.close()


class TestGroupingIndependence:
    """Coalesced releases are bit-identical to direct engine.submit per
    seed, for every flush grouping: 1, k, and all."""

    @pytest.mark.parametrize("grouping", ["ones", "threes", "all"])
    def test_flush_grouping_never_changes_results(
        self, dataset, outlier_record, grouping
    ):
        n = 6
        requests = make_requests(outlier_record, n)
        expected = direct_baseline(dataset, requests)

        engine = ReleaseEngine(dataset)
        coalescer = ReleaseCoalescer(
            tenants=TenantBudgets(),
            engine_for=lambda: engine,
            max_batch=n,
            name="salary",
            autostart=False,
        )
        futures = [
            coalescer.submit(f"t{i}", f"req-{i}", r)
            for i, r in enumerate(requests)
        ]
        limit = {"ones": 1, "threes": 3, "all": None}[grouping]
        flushed = 0
        while True:
            took = coalescer.flush_now(limit)
            if not took:
                break
            flushed += took
        assert flushed == n
        got = [strip_timing(f.result(timeout=0).to_dict()) for f in futures]
        assert got == expected
        coalescer.close()
        engine.close()

    def test_execute_many_matches_submit_per_request(
        self, dataset, outlier_record
    ):
        """The engine-level batch path (externally-admitted) is itself
        grouping-independent versus one-at-a-time submit."""
        requests = make_requests(outlier_record, 5)
        expected = direct_baseline(dataset, requests)
        engine = ReleaseEngine(dataset)
        got = [
            strip_timing(r.to_dict()) for r in engine.execute_many(requests)
        ]
        engine.close()
        assert got == expected

    def test_execute_many_isolates_per_request_failures(
        self, dataset, outlier_record
    ):
        """One doomed request in a batch fails alone; its neighbours
        release exactly what they would have without it."""
        requests = make_requests(outlier_record, 3)
        expected = direct_baseline(dataset, requests)
        doomed = ReleaseRequest(
            record_id=10**9, spec=PipelineSpec.from_dict(SPEC), seed=1
        )
        engine = ReleaseEngine(dataset)
        batch = [requests[0], doomed, requests[1], requests[2]]
        outcomes = engine.execute_many(batch, return_exceptions=True)
        engine.close()
        assert isinstance(outcomes[1], ContextError)
        got = [strip_timing(o.to_dict()) for o in (outcomes[0], *outcomes[2:])]
        assert got == expected

    def test_execute_many_groups_mixed_backend_specs(
        self, dataset, outlier_record
    ):
        """A batch whose specs name different backends (which submit_many
        rejects) is partitioned per backend and scattered back into
        request order — each release identical to a lone submit."""
        serial_spec = PipelineSpec.from_dict({**SPEC, "backend": "serial"})
        thread_spec = PipelineSpec.from_dict(
            {**SPEC, "backend": "thread", "workers": 2}
        )
        batch = [
            ReleaseRequest(record_id=outlier_record, spec=serial_spec, seed=100),
            ReleaseRequest(record_id=outlier_record, spec=thread_spec, seed=101),
            ReleaseRequest(record_id=outlier_record, spec=serial_spec, seed=102),
        ]
        engine = ReleaseEngine(dataset)
        got = [r.context.bits for r in engine.execute_many(batch)]
        engine.close()

        expected = []
        for request in batch:
            lone = ReleaseEngine(dataset)
            expected.append(lone.submit(request).context.bits)
            lone.close()
        assert got == expected

    def test_execute_many_raises_without_return_exceptions(
        self, dataset
    ):
        engine = ReleaseEngine(dataset)
        doomed = ReleaseRequest(
            record_id=10**9, spec=PipelineSpec.from_dict(SPEC), seed=1
        )
        with pytest.raises(ReproError):
            engine.execute_many([doomed])
        engine.close()


class TestPartialBatchAdmission:
    def test_exhausted_tenant_rejected_alone_and_charged_exactly_once(
        self, dataset, outlier_record, tmp_path
    ):
        """One exhausted tenant in a batch gets its PrivacyBudgetError
        (HTTP 402) while co-batched tenants succeed — and the WAL holds
        exactly one charge per *admitted* request, none for the rejection."""
        store = JsonlLedgerStore(tmp_path / "salary.ledger.jsonl")
        tenants = TenantBudgets(
            default_budget=1.0,
            budgets={"poor": 0.05},  # below one 0.1-epsilon release
            store=store,
            dataset="salary",
        )
        engine = ReleaseEngine(dataset)
        coalescer = ReleaseCoalescer(
            tenants=tenants,
            engine_for=lambda: engine,
            max_batch=8,
            name="salary",
            autostart=False,
        )
        requests = make_requests(outlier_record, 3)
        f_rich1 = coalescer.submit("rich-1", "r1", requests[0])
        f_poor = coalescer.submit("poor", "p", requests[1])
        f_rich2 = coalescer.submit("rich-2", "r2", requests[2])
        assert coalescer.flush_now() == 3

        with pytest.raises(PrivacyBudgetError, match="poor"):
            f_poor.result(timeout=0)
        assert f_rich1.result(timeout=0).record_id == outlier_record
        assert f_rich2.result(timeout=0).record_id == outlier_record

        charged = [(r["tenant"], r["epsilon"]) for r in store.replay()]
        assert sorted(charged) == [("rich-1", 0.1), ("rich-2", 0.1)]
        assert tenants.rejections() == {"poor": 1}
        coalescer.close()
        engine.close()
        store.close()

    def test_admit_many_outcomes_in_order_and_persisted_once(self):
        store = InMemoryLedgerStore()
        tenants = TenantBudgets(
            default_budget=0.25, store=store, dataset="d"
        )
        outcomes = tenants.admit_many(
            [
                ("a", "q1", 0.2),
                ("a", "q2", 0.2),  # over a's remaining 0.05
                ("b", "q3", 0.2),
                ("b", "bad", -1.0),  # invalid epsilon
            ]
        )
        assert outcomes[0] is None
        assert isinstance(outcomes[1], PrivacyBudgetError)
        assert outcomes[2] is None
        assert isinstance(outcomes[3], PrivacyBudgetError)
        assert [(r["tenant"], r["label"]) for r in store.replay()] == [
            ("a", "q1"),
            ("b", "q3"),
        ]
        assert tenants.spent("a") == pytest.approx(0.2)
        assert tenants.spent("b") == pytest.approx(0.2)

    def test_admit_many_falls_back_without_append_many(self):
        class MinimalStore:
            """Only the original LedgerStore surface: no append_many."""

            def __init__(self):
                self.records = []

            def append(self, record):
                self.records.append(dict(record))

            def replay(self):
                return [dict(r) for r in self.records]

            def close(self):
                pass

        store = MinimalStore()
        tenants = TenantBudgets(store=store, dataset="d")
        assert tenants.admit_many([("a", "q1", 0.1), ("b", "q2", 0.2)]) == [
            None,
            None,
        ]
        assert [r["tenant"] for r in store.records] == ["a", "b"]


class TestDrainOnClose:
    def test_close_flushes_queue_and_completes_every_future(
        self, dataset, outlier_record
    ):
        engine = ReleaseEngine(dataset)
        coalescer = ReleaseCoalescer(
            tenants=TenantBudgets(),
            engine_for=lambda: engine,
            max_batch=4,
            name="salary",
            autostart=False,  # nothing will flush unless close() drains
        )
        requests = make_requests(outlier_record, 5)
        futures = [
            coalescer.submit("t", f"q{i}", r) for i, r in enumerate(requests)
        ]
        coalescer.close()
        assert all(f.done() for f in futures)
        expected = direct_baseline(dataset, requests)
        got = [strip_timing(f.result(timeout=0).to_dict()) for f in futures]
        assert got == expected
        engine.close()

    def test_submit_after_close_raises_coalescer_closed(self, outlier_record):
        coalescer = ReleaseCoalescer(
            tenants=TenantBudgets(),
            engine_for=lambda: None,
            max_batch=4,
            autostart=False,
        )
        coalescer.close()
        [request] = make_requests(outlier_record, 1)
        with pytest.raises(CoalescerClosed):
            coalescer.submit("t", "q", request)

    def test_flusher_thread_completes_concurrent_submissions(
        self, dataset, outlier_record
    ):
        """The real (autostarted) flusher under concurrent producers:
        every future completes and the counters account for every request."""
        engine = ReleaseEngine(dataset)
        coalescer = ReleaseCoalescer(
            tenants=TenantBudgets(),
            engine_for=lambda: engine,
            max_batch=4,
            max_delay_ms=5.0,
            name="salary",
        )
        requests = make_requests(outlier_record, 12)
        futures = [None] * len(requests)

        def enqueue(i):
            futures[i] = coalescer.submit("t", f"q{i}", requests[i])

        threads = [
            threading.Thread(target=enqueue, args=(i,))
            for i in range(len(requests))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [f.result(timeout=30) for f in futures]
        assert all(r.record_id == outlier_record for r in results)
        coalescer.close()
        snap = coalescer.snapshot()
        assert snap["batch_requests"] == len(requests)
        assert snap["batch_queue_depth"] == 0
        assert 1 <= snap["batch_size_max"] <= 4
        assert snap["batch_flushes"] >= 3  # 12 requests, batches capped at 4
        assert snap["batch_queue_wait_s"] >= 0.0
        engine.close()


class TestCoalescedHTTP:
    def test_concurrent_http_releases_match_direct_engine(
        self, dataset, outlier_record
    ):
        """End-to-end: release_many against a coalescing server releases
        the same contexts a direct engine does, and the batching counters
        on /v1/metrics account for every request."""
        config = ServerConfig.from_dict(
            {
                "server": {"port": 0},
                "datasets": {
                    "salary": {
                        "source": "salary_reduced",
                        "records": RECORDS,
                        "seed": SEED,
                        "budget": 50.0,
                        "max_batch": 8,
                        "max_delay_ms": 5.0,
                    }
                },
            }
        )
        n = 12
        seeds = list(range(500, 500 + n))
        with PCORServer(config) as server:
            client = PCORClient(server.url, tenant="alice")
            served = client.release_many(
                "salary",
                [outlier_record] * n,
                SPEC,
                seeds=seeds,
                concurrency=6,
                timeout=120.0,
            )
            metrics = client.metrics()["datasets"]["salary"]
            client.close()

        spec = PipelineSpec.from_dict(SPEC)
        engine = ReleaseEngine(dataset)
        for seed, response in zip(seeds, served):
            direct = engine.submit(
                ReleaseRequest(record_id=outlier_record, spec=spec, seed=seed)
            )
            result = response["result"]
            # The released values are seed-determined; cache-order counters
            # (fm_evaluations, wall time) legitimately vary under
            # concurrency — same contract as the unbatched server.
            assert result["context"]["bits"] == direct.context.bits
            assert result["utility_value"] == pytest.approx(direct.utility_value)
            assert result["epsilon_one"] == pytest.approx(direct.epsilon_one)
            assert result["n_candidates"] == direct.n_candidates
        engine.close()

        assert metrics["batch_requests"] == n
        assert metrics["batch_flushes"] >= 2  # 12 requests, max_batch 8
        assert metrics["batch_size_max"] <= 8
        assert metrics["epsilon_spent"] == pytest.approx(n * SPEC["epsilon"])

    def test_max_batch_one_keeps_direct_path(self):
        """max_batch = 1 (the default) builds no coalescer at all: the
        server behaves exactly as before batching existed."""
        config = ServerConfig.from_dict(
            {
                "server": {"port": 0},
                "datasets": {
                    "salary": {
                        "source": "salary_reduced",
                        "records": RECORDS,
                        "seed": SEED,
                    }
                },
            }
        )
        server = PCORServer(config)
        try:
            assert server._coalescers == {}
        finally:
            server.shutdown()

"""DatasetRegistry: lazy engines, independent budgets, durable wiring."""

import pytest

from repro.exceptions import ServerError
from repro.server.config import ServerConfig
from repro.server.ledger import InMemoryLedgerStore, JsonlLedgerStore
from repro.server.registry import DatasetRegistry


def config(tmp_path=None, **server) -> ServerConfig:
    body = {
        "server": {"port": 0, **server},
        "datasets": {
            "a": {"source": "salary_reduced", "records": 200, "seed": 1,
                  "budget": 1.0, "tenant_budget": 0.5},
            "b": {"source": "salary_reduced", "records": 200, "seed": 2,
                  "budget": 2.0},
        },
    }
    if tmp_path is not None:
        body["server"].update(
            {"ledger": "jsonl", "ledger_dir": str(tmp_path / "ledgers")}
        )
    return ServerConfig.from_dict(body)


class TestRegistry:
    def test_engines_are_lazy(self):
        with DatasetRegistry(config()) as registry:
            assert registry.names() == ["a", "b"]
            assert not registry.get("a").built
            engine = registry.get("a").engine
            assert registry.get("a").built
            assert registry.get("a").engine is engine  # memoised
            assert not registry.get("b").built  # untouched neighbour

    def test_unknown_dataset_raises_server_error(self):
        with DatasetRegistry(config()) as registry:
            with pytest.raises(ServerError, match="unknown dataset"):
                registry.get("nope")
            assert "a" in registry and "nope" not in registry

    def test_budgets_are_independent_and_shared_with_engine(self):
        with DatasetRegistry(config()) as registry:
            a, b = registry.get("a"), registry.get("b")
            a.tenants.admit("alice", "q", 0.5)
            assert a.accountant.spent == pytest.approx(0.5)
            assert b.accountant.spent == 0.0
            # The engine charges the *same* accountant object.
            assert a.engine.accountant is a.accountant
            assert a.engine.spent == pytest.approx(0.5)

    def test_memory_ledger_by_default(self):
        with DatasetRegistry(config()) as registry:
            assert isinstance(registry.get("a").tenants.store, InMemoryLedgerStore)

    def test_jsonl_ledger_per_dataset(self, tmp_path):
        cfg = config(tmp_path)
        with DatasetRegistry(cfg) as registry:
            store = registry.get("a").tenants.store
            assert isinstance(store, JsonlLedgerStore)
            registry.get("a").tenants.admit("alice", "q", 0.25)
        ledger_dir = tmp_path / "ledgers"
        assert (ledger_dir / "a.ledger.jsonl").exists()
        assert (ledger_dir / "b.ledger.jsonl").exists()

        # A fresh registry on the same dir replays the spend.
        with DatasetRegistry(config(tmp_path)) as registry:
            assert registry.get("a").tenants.spent("alice") == pytest.approx(0.25)
            assert registry.get("a").accountant.spent == pytest.approx(0.25)
            assert registry.get("b").accountant.spent == 0.0

    def test_close_is_idempotent(self):
        registry = DatasetRegistry(config())
        registry.get("a").engine  # build one
        registry.close()
        registry.close()

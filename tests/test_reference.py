"""Unit tests for the reference file (Section 6.2)."""

import pytest

from repro.context import ContextSpace
from repro.core.reference import ReferenceFile
from repro.core.utility import PopulationSizeUtility
from repro.exceptions import EnumerationError


class TestBuild:
    def test_covers_every_valid_context(self, mini_reference, mini_schema):
        space = ContextSpace(mini_schema)
        assert len(mini_reference) == space.n_structurally_valid
        for ctx in space.enumerate_valid():
            assert ctx.bits in mini_reference

    def test_population_sizes_match_verifier(self, mini_reference, mini_verifier):
        for bits in list(mini_reference._entries)[:50]:
            assert mini_reference.population_size(bits) == mini_verifier.population_size(bits)

    def test_outlier_lists_match_verifier(self, mini_reference, mini_verifier):
        for bits in list(mini_reference._entries)[:50]:
            entry = mini_reference.entry(bits)
            assert frozenset(entry.outlier_ids) == mini_verifier.outlier_ids(bits)

    def test_invalid_context_not_included(self, mini_reference):
        with pytest.raises(EnumerationError, match="not in reference"):
            mini_reference.entry(0)  # empty context is structurally invalid


class TestQueries:
    def test_outlier_records_sorted_unique(self, mini_reference):
        records = mini_reference.outlier_records()
        assert records == sorted(set(records))
        assert len(records) > 0

    def test_matching_contexts_consistent_with_entries(self, mini_reference, mini_outlier):
        for bits in mini_reference.matching_contexts(mini_outlier):
            assert mini_outlier in mini_reference.entry(bits).outlier_ids

    def test_max_population_utility(self, mini_reference, mini_outlier):
        matching = mini_reference.matching_contexts(mini_outlier)
        expected = max(mini_reference.population_size(b) for b in matching)
        assert mini_reference.max_population_utility(mini_outlier) == float(expected)

    def test_max_population_utility_no_contexts(self, mini_reference, mini_dataset):
        outliers = set(mini_reference.outlier_records())
        normal = next(int(r) for r in mini_dataset.ids if int(r) not in outliers)
        assert mini_reference.max_population_utility(normal) == 0.0

    def test_max_utility_generic(self, mini_reference, mini_verifier, mini_outlier):
        util = PopulationSizeUtility(mini_verifier, mini_outlier)
        assert mini_reference.max_utility(
            mini_outlier, util
        ) == mini_reference.max_population_utility(mini_outlier)

    def test_coe_equals_matching_set(self, mini_reference, mini_outlier):
        assert mini_reference.coe(mini_outlier) == frozenset(
            mini_reference.matching_contexts(mini_outlier)
        )


class TestSerialization:
    def test_json_round_trip(self, mini_reference, tmp_path):
        path = tmp_path / "reference.json"
        mini_reference.to_json(path)
        loaded = ReferenceFile.from_json(path)
        assert len(loaded) == len(mini_reference)
        assert loaded.schema == mini_reference.schema
        assert loaded.outlier_records() == mini_reference.outlier_records()
        for bits in list(mini_reference._entries)[:20]:
            assert loaded.entry(bits) == mini_reference.entry(bits)

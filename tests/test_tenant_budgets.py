"""TenantBudgets: atomic two-ledger admission and durable replay."""

import pytest

from repro.exceptions import LedgerError, PrivacyBudgetError
from repro.mechanisms.accounting import PrivacyAccountant
from repro.server.ledger import InMemoryLedgerStore, JsonlLedgerStore
from repro.server.tenants import TenantBudgets


class TestAdmission:
    def test_charges_both_ledgers(self):
        global_acct = PrivacyAccountant(1.0)
        tenants = TenantBudgets(global_acct, default_budget=0.5)
        tenants.admit("alice", "q1", 0.2)
        assert global_acct.spent == pytest.approx(0.2)
        assert tenants.spent("alice") == pytest.approx(0.2)
        assert tenants.remaining("alice") == pytest.approx(0.3)

    def test_tenant_rejection_leaves_global_untouched(self):
        global_acct = PrivacyAccountant(10.0)
        tenants = TenantBudgets(global_acct, default_budget=0.3)
        tenants.admit("alice", "q1", 0.25)
        with pytest.raises(PrivacyBudgetError, match="tenant 'alice'"):
            tenants.admit("alice", "q2", 0.25)
        assert global_acct.spent == pytest.approx(0.25)
        assert tenants.spent("alice") == pytest.approx(0.25)
        assert len(tenants.store.replay()) == 1
        assert tenants.rejections() == {"alice": 1}

    def test_global_rejection_leaves_tenant_untouched(self):
        global_acct = PrivacyAccountant(0.3)
        tenants = TenantBudgets(global_acct, default_budget=1.0)
        tenants.admit("alice", "q1", 0.25)
        with pytest.raises(PrivacyBudgetError):
            tenants.admit("bob", "q2", 0.25)
        assert tenants.spent("bob") == 0.0
        assert tenants.remaining("bob") == pytest.approx(1.0)
        assert len(tenants.store.replay()) == 1

    def test_per_tenant_overrides_beat_default(self):
        tenants = TenantBudgets(
            None, default_budget=0.1, budgets={"vip": 1.0}
        )
        tenants.admit("vip", "q", 0.5)
        with pytest.raises(PrivacyBudgetError):
            tenants.admit("joe", "q", 0.5)
        assert tenants.budget_for("vip") == 1.0
        assert tenants.budget_for("joe") == 0.1

    def test_unbounded_tenants_still_hit_global(self):
        global_acct = PrivacyAccountant(0.4)
        tenants = TenantBudgets(global_acct)  # no tenant quotas at all
        tenants.admit("alice", "q1", 0.3)
        with pytest.raises(PrivacyBudgetError):
            tenants.admit("alice", "q2", 0.3)
        assert tenants.spent("alice") == pytest.approx(0.3)
        assert tenants.remaining("alice") is None
        assert tenants.spend_by_tenant() == {"alice": pytest.approx(0.3)}

    def test_bad_epsilon_rejected_without_side_effects(self):
        tenants = TenantBudgets(PrivacyAccountant(1.0), default_budget=0.5)
        for bad in (0.0, -0.1, float("nan"), float("inf")):
            with pytest.raises(PrivacyBudgetError):
                tenants.admit("alice", "q", bad)
        assert tenants.spent("alice") == 0.0
        assert tenants.store.replay() == []

    def test_bad_default_budget_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            TenantBudgets(None, default_budget=-1.0)


class TestDurability:
    def test_admitted_charges_are_persisted_before_return(self):
        store = InMemoryLedgerStore()
        tenants = TenantBudgets(
            PrivacyAccountant(1.0), default_budget=0.5, store=store, dataset="d"
        )
        tenants.admit("alice", "q1", 0.2)
        [record] = store.replay()
        assert record == {
            "tenant": "alice",
            "dataset": "d",
            "label": "q1",
            "epsilon": 0.2,
        }

    def test_replay_restores_tenant_and_global_spend(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        store = JsonlLedgerStore(path)
        global_acct = PrivacyAccountant(1.0)
        tenants = TenantBudgets(global_acct, default_budget=0.4, store=store)
        tenants.admit("alice", "q1", 0.2)
        tenants.admit("alice", "q2", 0.2)
        tenants.admit("bob", "q3", 0.1)
        tenants.close()

        # "Restart": fresh accountants, same ledger file.
        restarted = TenantBudgets(
            PrivacyAccountant(1.0),
            default_budget=0.4,
            store=JsonlLedgerStore(path),
        )
        assert restarted.spent("alice") == pytest.approx(0.4)
        assert restarted.spent("bob") == pytest.approx(0.1)
        assert restarted.accountant.spent == pytest.approx(0.5)
        # Alice stays exhausted across the restart...
        with pytest.raises(PrivacyBudgetError, match="tenant 'alice'"):
            restarted.admit("alice", "q4", 0.05)
        # ...and bob keeps the quota he has left.
        restarted.admit("bob", "q4", 0.3)
        restarted.close()

    def test_replay_survives_torn_tail_and_keeps_rejecting(self, tmp_path):
        """The ISSUE's crash scenario: a torn final record is truncated,
        replay is clean, and over-budget requests stay rejected."""
        path = tmp_path / "d.ledger.jsonl"
        tenants = TenantBudgets(
            None, default_budget=0.2, store=JsonlLedgerStore(path)
        )
        tenants.admit("alice", "q1", 0.1)
        tenants.admit("alice", "q2", 0.1)  # alice now exhausted
        tenants.close()
        with open(path, "ab") as fh:
            fh.write(b'{"tenant": "alice", "epsilon": 0.1, "la')  # torn

        restarted = TenantBudgets(
            None, default_budget=0.2, store=JsonlLedgerStore(path)
        )
        assert restarted.spent("alice") == pytest.approx(0.2)
        with pytest.raises(PrivacyBudgetError):
            restarted.admit("alice", "q3", 0.1)
        restarted.close()

    def test_replay_exceeding_lowered_budget_blocks_everything(self, tmp_path):
        path = tmp_path / "d.ledger.jsonl"
        tenants = TenantBudgets(
            None, default_budget=1.0, store=JsonlLedgerStore(path)
        )
        tenants.admit("alice", "q1", 0.8)
        tenants.close()
        # The owner tightens the quota below the already-recorded spend.
        restarted = TenantBudgets(
            None, default_budget=0.5, store=JsonlLedgerStore(path)
        )
        assert restarted.spent("alice") == pytest.approx(0.8)
        with pytest.raises(PrivacyBudgetError):
            restarted.admit("alice", "q2", 0.01)
        restarted.close()

    def test_unreplayable_record_raises_ledger_error(self):
        store = InMemoryLedgerStore()
        store.append({"dataset": "d", "label": "q"})  # no tenant/epsilon
        with pytest.raises(LedgerError, match="unreplayable"):
            TenantBudgets(None, default_budget=1.0, store=store)


class TestIntrospection:
    def test_describe_is_json_able(self):
        import json

        tenants = TenantBudgets(PrivacyAccountant(1.0), default_budget=0.5)
        tenants.admit("alice", "q", 0.1)
        snapshot = tenants.describe("alice")
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["spent"] == pytest.approx(0.1)
        assert snapshot["dataset_remaining"] == pytest.approx(0.9)

    def test_read_only_probes_allocate_no_state(self):
        """Anyone can put any name in the tenant header: probing budgets
        must not grow the tenant table or the metrics breakdown."""
        tenants = TenantBudgets(PrivacyAccountant(1.0), default_budget=0.5)
        for i in range(50):
            name = f"scraper-{i}"
            assert tenants.remaining(name) == 0.5
            assert tenants.spent(name) == 0.0
            assert tenants.describe(name)["remaining"] == 0.5
        assert tenants.spend_by_tenant() == {}
        assert tenants.tenants() == []

    def test_tenants_listing(self):
        tenants = TenantBudgets(None, default_budget=1.0)
        tenants.admit("bob", "q", 0.1)
        tenants.admit("alice", "q", 0.1)
        assert tenants.tenants() == ["alice", "bob"]

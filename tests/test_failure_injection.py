"""Failure-injection tests: broken components must fail loudly, not corrupt.

Production DP systems have a hard requirement: a malfunctioning component
must never silently degrade into releasing something unintended.  These
tests inject faults (raising detectors, absurd parameters, poisoned inputs)
and assert clean propagation.
"""

import numpy as np
import pytest

from repro.core.enumeration import COEEnumerator
from repro.core.pcor import PCOR
from repro.core.sampling import BFSSampler
from repro.core.sampling.base import SamplingStats
from repro.core.verification import OutlierVerifier
from repro.exceptions import MechanismError, ReproError, SamplingError
from repro.mechanisms.exponential import ExponentialMechanism
from repro.outliers.base import OutlierDetector


class ExplodingDetector(OutlierDetector):
    """Raises after ``fuse`` invocations — simulates a mid-run fault."""

    name = "exploding"

    def __init__(self, fuse: int = 0, min_population: int = 1):
        super().__init__(min_population=min_population)
        self.fuse = fuse
        self.calls = 0

    def _outlier_positions(self, values):
        self.calls += 1
        if self.calls > self.fuse:
            raise RuntimeError("detector hardware fault")
        return np.empty(0, dtype=np.int64)


class NonDeterministicDetector(OutlierDetector):
    """Violates the determinism contract — used to document cache semantics."""

    name = "nondeterministic"

    def __init__(self):
        super().__init__(min_population=1)
        self._rng = np.random.default_rng(0)

    def _outlier_positions(self, values):
        k = int(self._rng.integers(0, max(1, values.shape[0])))
        return np.array([k], dtype=np.int64) if values.shape[0] else np.empty(0, dtype=np.int64)


class TestDetectorFaults:
    def test_detector_fault_propagates_from_verifier(self, mini_dataset):
        verifier = OutlierVerifier(mini_dataset, ExplodingDetector(fuse=0))
        with pytest.raises(RuntimeError, match="hardware fault"):
            verifier.context_profile(mini_dataset.schema.full_bits)

    def test_detector_fault_propagates_from_enumeration(self, mini_dataset):
        verifier = OutlierVerifier(mini_dataset, ExplodingDetector(fuse=3))
        enumerator = COEEnumerator(verifier)
        with pytest.raises(RuntimeError):
            enumerator.coe(int(mini_dataset.ids[0]))

    def test_mid_run_fault_leaves_no_partial_cache_entry(self, mini_dataset):
        verifier = OutlierVerifier(mini_dataset, ExplodingDetector(fuse=0))
        bits = mini_dataset.schema.full_bits
        with pytest.raises(RuntimeError):
            verifier.context_profile(bits)
        # The failed context must not be cached as "no outliers".
        assert verifier.cache_size() == 0

    def test_nondeterministic_detector_is_masked_by_cache(self, mini_dataset):
        """The verifier caches per context, so within one verifier even a
        faulty nondeterministic detector yields stable answers — the cache
        is the last line of defence for release validity."""
        verifier = OutlierVerifier(mini_dataset, NonDeterministicDetector())
        bits = mini_dataset.schema.full_bits
        first = verifier.outlier_ids(bits)
        for _ in range(5):
            assert verifier.outlier_ids(bits) == first


class TestPoisonedInputs:
    def test_sampler_with_foreign_starting_context_rejected(
        self, mini_dataset, mini_detector, mini_verifier, mini_outlier
    ):
        pcor = PCOR(
            mini_dataset, mini_detector, sampler=BFSSampler(n_samples=4),
            verifier=mini_verifier,
        )
        with pytest.raises(ReproError):
            pcor.release(mini_outlier, starting_context=1 << 60, seed=0)

    def test_mechanism_rejects_poisoned_utilities(self, rng):
        mech = ExponentialMechanism(0.1)
        with pytest.raises(MechanismError):
            mech.select_index([1.0, float("nan"), 2.0], rng)

    def test_verifier_mismatched_pcor_dataset(self, mini_dataset, mini_detector):
        other = mini_dataset.without_records([int(mini_dataset.ids[0])])
        verifier = OutlierVerifier(other, mini_detector)
        with pytest.raises(SamplingError, match="different dataset"):
            PCOR(mini_dataset, mini_detector, verifier=verifier)


class TestStatsMerge:
    def test_merge_adds_counters(self):
        a = SamplingStats(candidates_collected=2, contexts_examined=10,
                          mechanism_invocations=1, steps=5)
        b = SamplingStats(candidates_collected=3, contexts_examined=7,
                          mechanism_invocations=2, steps=4)
        merged = a.merge(b)
        assert merged.candidates_collected == 5
        assert merged.contexts_examined == 17
        assert merged.mechanism_invocations == 3
        assert merged.steps == 9
        # Originals untouched.
        assert a.candidates_collected == 2

"""End-to-end ``pcor serve`` smoke: spawn, release, budget, clean shutdown.

This is the CI smoke test the ISSUE asks for: a real subprocess running the
CLI entrypoint, spoken to over real sockets, stopped with a real SIGTERM.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.data.generators import salary_reduced
from repro.server import PCORClient

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

SPEC = {
    "detector": "zscore",
    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
    "sampler": "uniform",
    "epsilon": 0.1,
    "n_samples": 3,
}


def write_config(tmp_path: Path) -> Path:
    config = tmp_path / "server.json"
    config.write_text(
        json.dumps(
            {
                "server": {
                    "port": 0,
                    "ledger": "jsonl",
                    "ledger_dir": str(tmp_path / "ledgers"),
                },
                "datasets": {
                    "salary": {
                        "source": "salary_reduced",
                        "records": 300,
                        "seed": 3,
                        "budget": 5.0,
                        "tenant_budget": 0.3,
                    }
                },
            }
        )
    )
    return config


def server_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    return env


def spawn_server(config: Path) -> tuple:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--config", str(config)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=server_env(),
    )
    # The CLI prints its bound URL (flush=True) as its first line.
    line = process.stdout.readline()
    assert "listening on" in line, f"unexpected banner: {line!r}"
    url = next(tok for tok in line.split() if tok.startswith("http://"))
    return process, url


def find_outlier() -> int:
    from repro.core.verification import OutlierVerifier
    from repro.outliers.zscore import ZScoreDetector

    dataset = salary_reduced(n_records=300, seed=3)
    verifier = OutlierVerifier(
        dataset, ZScoreDetector(z_threshold=2.5, min_population=8)
    )
    return next(
        rid
        for rid in map(int, dataset.ids)
        if verifier.is_matching(dataset.record_bits(rid), rid)
    )


def test_serve_release_budget_shutdown(tmp_path):
    config = write_config(tmp_path)
    process, url = spawn_server(config)
    try:
        client = PCORClient(url, tenant="smoke")
        assert client.health()["status"] == "ok"

        record_id = find_outlier()
        response = client.release("salary", record_id=record_id, spec=SPEC, seed=42)
        assert response["result"]["record_id"] == record_id

        budget = client.budget(dataset="salary")["datasets"]["salary"]
        assert budget["spent"] == pytest.approx(0.1)
        assert budget["remaining"] == pytest.approx(0.2)

        # The WAL exists and holds exactly the admitted charge.
        ledger = tmp_path / "ledgers" / "salary.ledger.jsonl"
        [record] = [json.loads(l) for l in ledger.read_text().splitlines()]
        assert record["tenant"] == "smoke"
        assert record["epsilon"] == 0.1
    finally:
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
    assert process.returncode == 0, out
    assert "stopped; ledgers closed" in out


def test_serve_rejects_bad_config(tmp_path):
    config = tmp_path / "bad.json"
    config.write_text(json.dumps({"server": {}, "datasets": {}}))
    process = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--config", str(config)],
        capture_output=True,
        text=True,
        timeout=60,
        env=server_env(),
    )
    assert process.returncode == 1
    assert "no datasets" in process.stderr

"""End-to-end ``pcor serve`` smoke: spawn, release, budget, clean shutdown.

This is the CI smoke test the ISSUE asks for: a real subprocess running the
CLI entrypoint, spoken to over real sockets, stopped with a real SIGTERM.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.data.generators import salary_reduced
from repro.exceptions import ReproError, ServerError
from repro.server import JsonlLedgerStore, PCORClient

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

SPEC = {
    "detector": "zscore",
    "detector_kwargs": {"z_threshold": 2.5, "min_population": 8},
    "sampler": "uniform",
    "epsilon": 0.1,
    "n_samples": 3,
}


def write_config(tmp_path: Path) -> Path:
    config = tmp_path / "server.json"
    config.write_text(
        json.dumps(
            {
                "server": {
                    "port": 0,
                    "ledger": "jsonl",
                    "ledger_dir": str(tmp_path / "ledgers"),
                },
                "datasets": {
                    "salary": {
                        "source": "salary_reduced",
                        "records": 300,
                        "seed": 3,
                        "budget": 5.0,
                        "tenant_budget": 0.3,
                    }
                },
            }
        )
    )
    return config


def server_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    return env


def spawn_server(config: Path) -> tuple:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--config", str(config)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=server_env(),
    )
    # The CLI prints its bound URL (flush=True) as its first line.
    line = process.stdout.readline()
    assert "listening on" in line, f"unexpected banner: {line!r}"
    url = next(tok for tok in line.split() if tok.startswith("http://"))
    return process, url


def find_outlier() -> int:
    from repro.core.verification import OutlierVerifier
    from repro.outliers.zscore import ZScoreDetector

    dataset = salary_reduced(n_records=300, seed=3)
    verifier = OutlierVerifier(
        dataset, ZScoreDetector(z_threshold=2.5, min_population=8)
    )
    return next(
        rid
        for rid in map(int, dataset.ids)
        if verifier.is_matching(dataset.record_bits(rid), rid)
    )


def test_serve_release_budget_shutdown(tmp_path):
    config = write_config(tmp_path)
    process, url = spawn_server(config)
    try:
        client = PCORClient(url, tenant="smoke")
        assert client.health()["status"] == "ok"

        record_id = find_outlier()
        response = client.release("salary", record_id=record_id, spec=SPEC, seed=42)
        assert response["result"]["record_id"] == record_id

        budget = client.budget(dataset="salary")["datasets"]["salary"]
        assert budget["spent"] == pytest.approx(0.1)
        assert budget["remaining"] == pytest.approx(0.2)

        # The WAL exists and holds exactly the admitted charge.
        ledger = tmp_path / "ledgers" / "salary.ledger.jsonl"
        [record] = [json.loads(l) for l in ledger.read_text().splitlines()]
        assert record["tenant"] == "smoke"
        assert record["epsilon"] == 0.1
    finally:
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
    assert process.returncode == 0, out
    assert "stopped; ledgers closed" in out


def test_sigterm_drains_inflight_requests_and_closes_ledger_cleanly(tmp_path):
    """SIGTERM racing live handler threads must not tear the ledger.

    ``ThreadingHTTPServer`` handler threads are daemonic — without the
    drain barrier a SIGTERM could close the WAL underneath an in-flight
    admission.  Here concurrent clients hammer a *coalescing* dataset
    while SIGTERM lands mid-flight; afterwards the ledger must replay
    cleanly and hold exactly one charge per successful response (503s and
    connection drops during shutdown are never charged)."""
    config = tmp_path / "server.json"
    config.write_text(
        json.dumps(
            {
                "server": {
                    "port": 0,
                    "ledger": "jsonl",
                    "ledger_dir": str(tmp_path / "ledgers"),
                },
                "datasets": {
                    "salary": {
                        "source": "salary_reduced",
                        "records": 300,
                        "seed": 3,
                        "budget": 200.0,
                        "max_batch": 4,
                        "max_delay_ms": 5.0,
                    }
                },
            }
        )
    )
    process, url = spawn_server(config)
    record_id = find_outlier()
    successes = [0] * 4
    stop = threading.Event()

    def hammer(i):
        client = PCORClient(url, tenant=f"hammer-{i}", timeout=30.0)
        seed = i * 10_000
        try:
            while not stop.is_set():
                seed += 1
                try:
                    client.release(
                        "salary", record_id=record_id, spec=SPEC, seed=seed
                    )
                    successes[i] += 1
                except ServerError:
                    return  # 503 during drain, or the listener went away
                except ReproError:
                    return  # budget exhausted etc. — stop hammering
        finally:
            client.close()

    threads = [
        threading.Thread(target=hammer, args=(i,))
        for i in range(len(successes))
    ]
    try:
        for t in threads:
            t.start()
        time.sleep(0.5)  # let requests be genuinely in flight
    finally:
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
        stop.set()
        for t in threads:
            t.join(timeout=60)
    assert process.returncode == 0, out
    assert "stopped; ledgers closed" in out
    assert sum(successes) > 0, "no request ever completed"

    # Ledger integrity: every line parses, the store replays without
    # complaint (no torn tail truncation needed after a *clean* drain),
    # and the charges match the acknowledged successes exactly.
    ledger = tmp_path / "ledgers" / "salary.ledger.jsonl"
    raw = ledger.read_text()
    assert raw.endswith("\n"), "ledger has a torn final record"
    records = [json.loads(line) for line in raw.splitlines()]
    assert all(r["epsilon"] == 0.1 for r in records)
    store = JsonlLedgerStore(ledger)
    assert len(store.replay()) == len(records) == sum(successes)
    store.close()


def test_serve_rejects_bad_config(tmp_path):
    config = tmp_path / "bad.json"
    config.write_text(json.dumps({"server": {}, "datasets": {}}))
    process = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--config", str(config)],
        capture_output=True,
        text=True,
        timeout=60,
        env=server_env(),
    )
    assert process.returncode == 1
    assert "no datasets" in process.stderr

"""Unit tests for ContextSpace enumeration and sampling."""

import math

import numpy as np
import pytest

from repro.context import Context, ContextSpace
from repro.exceptions import EnumerationError
from repro.schema import CategoricalAttribute, MetricAttribute, Schema


@pytest.fixture(scope="module")
def schema() -> Schema:
    return Schema(
        attributes=[
            CategoricalAttribute("A", ["a1", "a2"]),
            CategoricalAttribute("B", ["b1", "b2", "b3"]),
        ],
        metric=MetricAttribute("M"),
    )


@pytest.fixture(scope="module")
def space(schema) -> ContextSpace:
    return ContextSpace(schema)


class TestCounts:
    def test_size(self, space):
        assert space.size == 2**5

    def test_n_structurally_valid(self, space):
        # (2^2 - 1) * (2^3 - 1) = 3 * 7
        assert space.n_structurally_valid == 21

    def test_log2_size(self, space):
        assert space.log2_size() == 5.0


class TestEnumeration:
    def test_enumerate_all_yields_every_bitmask(self, space):
        bits = [c.bits for c in space.enumerate_all()]
        assert bits == list(range(32))

    def test_enumerate_valid_matches_filter(self, space):
        via_enumerate = {c.bits for c in space.enumerate_valid()}
        via_filter = {
            c.bits for c in space.enumerate_all() if c.is_structurally_valid
        }
        assert via_enumerate == via_filter
        assert len(via_enumerate) == space.n_structurally_valid

    def test_enumerate_containing(self, space, schema):
        record_bits = schema.record_bits({"A": "a1", "B": "b2"})
        containing = [c.bits for c in space.enumerate_containing(record_bits)]
        assert len(containing) == 2 ** (schema.t - schema.m)
        assert all((record_bits & b) == record_bits for b in containing)
        # Every containing context is structurally valid by construction.
        assert all(Context(schema, b).is_structurally_valid for b in containing)

    def test_enumerate_all_refuses_above_limit(self, space):
        with pytest.raises(EnumerationError, match="refused"):
            list(space.enumerate_all(limit=4))

    def test_enumerate_valid_refuses_above_limit(self, space):
        with pytest.raises(EnumerationError, match="refused"):
            list(space.enumerate_valid(limit=4))

    def test_enumerate_containing_refuses_above_limit(self, space, schema):
        record_bits = schema.record_bits({"A": "a1", "B": "b2"})
        with pytest.raises(EnumerationError, match="refused"):
            list(space.enumerate_containing(record_bits, limit=2))

    def test_no_limit_allows_enumeration(self, space):
        assert len(list(space.enumerate_all(limit=None))) == 32


class TestSampling:
    def test_random_context_in_range(self, space, rng):
        for _ in range(50):
            ctx = space.random_context(rng)
            assert 0 <= ctx.bits < space.size

    def test_random_context_p_extremes(self, space, rng):
        assert space.random_context(rng, p=0.0).bits == 0
        assert space.random_context(rng, p=1.0).bits == space.size - 1

    def test_random_context_bad_p(self, space, rng):
        with pytest.raises(ValueError):
            space.random_context(rng, p=1.5)

    def test_random_valid_context_is_valid(self, space, rng):
        for _ in range(100):
            assert space.random_valid_context(rng).is_structurally_valid

    def test_random_valid_context_is_roughly_uniform(self, space):
        gen = np.random.default_rng(7)
        draws = [space.random_valid_context(gen).bits for _ in range(4200)]
        counts = {}
        for b in draws:
            counts[b] = counts.get(b, 0) + 1
        assert len(counts) == space.n_structurally_valid
        # Expected 200 per context; allow generous slack.
        assert min(counts.values()) > 120
        assert max(counts.values()) < 300

    def test_random_containing_contains_record(self, space, schema, rng):
        record_bits = schema.record_bits({"A": "a2", "B": "b1"})
        for _ in range(100):
            ctx = space.random_containing(record_bits, rng)
            assert (ctx.bits & record_bits) == record_bits


class TestExpectedDraws:
    def test_matches_theorem_5_2(self, space):
        # n * 2^t / N
        assert space.expected_uniform_draws(50, 10) == pytest.approx(50 * 32 / 10)

    def test_zero_matching_is_infinite(self, space):
        assert math.isinf(space.expected_uniform_draws(50, 0))

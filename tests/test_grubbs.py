"""Unit tests for the Grubbs detector."""

import math

import numpy as np
import pytest

from repro.outliers.grubbs import GrubbsDetector, grubbs_critical_value


class TestCriticalValue:
    def test_known_value_n20_alpha05(self):
        # Published two-sided Grubbs critical value for N=20, alpha=0.05.
        assert grubbs_critical_value(20, 0.05) == pytest.approx(2.708, abs=5e-3)

    def test_known_value_n10_alpha05(self):
        assert grubbs_critical_value(10, 0.05) == pytest.approx(2.290, abs=5e-3)

    def test_monotone_in_n(self):
        values = [grubbs_critical_value(n, 0.05) for n in range(5, 200, 10)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_undefined_below_three(self):
        assert math.isinf(grubbs_critical_value(2, 0.05))


class TestDetection:
    def test_flags_planted_outlier(self, rng):
        values = np.concatenate([rng.normal(100.0, 5.0, size=99), [200.0]])
        det = GrubbsDetector(alpha=0.05, min_population=10)
        positions = det.outlier_positions(values)
        assert 99 in positions

    def test_clean_normal_sample_mostly_clean(self, rng):
        det = GrubbsDetector(alpha=0.01, min_population=10)
        flagged = 0
        for _ in range(20):
            values = rng.normal(0.0, 1.0, size=200)
            flagged += len(det.outlier_positions(values))
        # alpha=0.01 per test; a handful of false positives over 20 trials
        # is expected, dozens are not.
        assert flagged <= 6

    def test_detects_both_tails(self, rng):
        values = np.concatenate([[-50.0], rng.normal(0.0, 1.0, size=98), [50.0]])
        det = GrubbsDetector()
        positions = set(det.outlier_positions(values).tolist())
        assert 0 in positions and 99 in positions

    def test_iterative_unmasking(self, rng):
        # Two close-together extremes mask each other for a single Grubbs
        # pass; the iterative procedure should flag both.
        values = np.concatenate([rng.normal(0.0, 1.0, size=100), [30.0, 31.0]])
        det = GrubbsDetector()
        positions = set(det.outlier_positions(values).tolist())
        assert {100, 101} <= positions

    def test_max_outliers_budget(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, size=100), [40.0, 50.0, 60.0]])
        det = GrubbsDetector(max_outliers=2)
        assert len(det.outlier_positions(values)) <= 2

    def test_constant_values_no_outliers(self):
        det = GrubbsDetector()
        assert det.outlier_positions(np.full(50, 7.0)).size == 0

    def test_below_min_population_no_outliers(self):
        det = GrubbsDetector(min_population=10)
        values = np.array([1.0, 2.0, 3.0, 100.0])
        assert det.outlier_positions(values).size == 0

    def test_deterministic(self, rng):
        values = rng.normal(0.0, 1.0, size=300)
        values[13] = 9.0
        det = GrubbsDetector()
        a = det.outlier_positions(values)
        b = det.outlier_positions(values.copy())
        assert np.array_equal(a, b)

    def test_positions_sorted_and_valid(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, 150), [25.0, -25.0, 30.0]])
        positions = GrubbsDetector().outlier_positions(values)
        assert np.array_equal(positions, np.sort(positions))
        assert positions.min() >= 0 and positions.max() < values.shape[0]

    def test_detect_mask_agrees_with_positions(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, 100), [20.0]])
        det = GrubbsDetector()
        mask = det.detect(values)
        positions = det.outlier_positions(values)
        assert np.array_equal(np.flatnonzero(mask), positions)

    def test_is_outlier(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, 100), [20.0]])
        det = GrubbsDetector()
        assert det.is_outlier(values, 100)
        assert not det.is_outlier(values, 0)

    def test_affine_invariance(self, rng):
        # Grubbs statistics are location/scale free.
        values = np.concatenate([rng.normal(10.0, 2.0, 120), [60.0, -40.0]])
        det = GrubbsDetector()
        base = det.outlier_positions(values)
        shifted = det.outlier_positions(values * 3.5 - 100.0)
        assert np.array_equal(base, shifted)


class TestValidation:
    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            GrubbsDetector(alpha=0.0)
        with pytest.raises(ValueError):
            GrubbsDetector(alpha=1.0)

    def test_bad_max_outliers(self):
        with pytest.raises(ValueError):
            GrubbsDetector(max_outliers=0)

    def test_bad_min_population(self):
        with pytest.raises(ValueError):
            GrubbsDetector(min_population=0)

    def test_rejects_2d_input(self):
        det = GrubbsDetector()
        with pytest.raises(Exception):
            det.outlier_positions(np.zeros((3, 3)))

"""Unit tests for the Laplace mechanism."""

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError
from repro.mechanisms import LaplaceMechanism


class TestConstruction:
    def test_scale(self):
        assert LaplaceMechanism(0.5, sensitivity=2.0).scale == 4.0

    def test_privacy_cost_is_epsilon(self):
        assert LaplaceMechanism(0.3).privacy_cost == 0.3

    def test_bad_epsilon(self):
        for eps in (0.0, -1.0, float("nan")):
            with pytest.raises(PrivacyBudgetError):
                LaplaceMechanism(eps)

    def test_bad_sensitivity(self):
        with pytest.raises(PrivacyBudgetError):
            LaplaceMechanism(0.5, sensitivity=-1.0)


class TestRelease:
    def test_scalar_release_returns_float(self, rng):
        out = LaplaceMechanism(1.0).release(10.0, rng)
        assert isinstance(out, float)

    def test_vector_release_shape(self, rng):
        out = LaplaceMechanism(1.0).release([1.0, 2.0, 3.0], rng)
        assert isinstance(out, np.ndarray)
        assert out.shape == (3,)

    def test_noise_scale_statistics(self):
        mech = LaplaceMechanism(0.5)  # scale 2.0, std = sqrt(2)*2
        gen = np.random.default_rng(42)
        noise = np.array([mech.release(0.0, gen) for _ in range(20_000)])
        assert abs(noise.mean()) < 0.1
        assert noise.std() == pytest.approx(np.sqrt(2.0) * 2.0, rel=0.05)

    def test_release_count(self, rng):
        out = LaplaceMechanism(1.0).release_count(100, rng)
        assert isinstance(out, float)

    def test_deterministic_with_seed(self):
        mech = LaplaceMechanism(1.0)
        a = mech.release(5.0, np.random.default_rng(3))
        b = mech.release(5.0, np.random.default_rng(3))
        assert a == b

    def test_higher_epsilon_less_noise(self):
        loose = LaplaceMechanism(0.01)
        tight = LaplaceMechanism(10.0)
        gen_a, gen_b = np.random.default_rng(1), np.random.default_rng(1)
        loose_err = abs(loose.release(0.0, gen_a))
        tight_err = abs(tight.release(0.0, gen_b))
        # Same underlying uniform draw, scaled differently.
        assert tight_err < loose_err


class TestConfidence:
    def test_halfwidth_monotone_in_confidence(self):
        mech = LaplaceMechanism(1.0)
        hs = [mech.confidence_halfwidth(c) for c in (0.5, 0.9, 0.99)]
        assert hs[0] < hs[1] < hs[2]

    def test_empirical_coverage(self):
        mech = LaplaceMechanism(0.7)
        h = mech.confidence_halfwidth(0.9)
        gen = np.random.default_rng(5)
        noise = np.array([mech.release(0.0, gen) for _ in range(10_000)])
        coverage = float(np.mean(np.abs(noise) <= h))
        assert coverage == pytest.approx(0.9, abs=0.02)

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(1.0).confidence_halfwidth(1.0)

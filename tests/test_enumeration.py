"""Unit tests for COE_M enumeration, checked against a full-space oracle."""

import pytest

from repro.context import Context, ContextSpace
from repro.core.enumeration import COEEnumerator
from repro.exceptions import EnumerationError, VerificationError


@pytest.fixture(scope="module")
def enumerator(mini_verifier) -> COEEnumerator:
    return COEEnumerator(mini_verifier)


class TestCOE:
    def test_matches_full_space_oracle(self, enumerator, mini_verifier, mini_outlier):
        """COE via superset enumeration == brute force over all 2^t masks."""
        space = ContextSpace(mini_verifier.schema)
        oracle = {
            ctx.bits
            for ctx in space.enumerate_all()
            if mini_verifier.is_matching(ctx.bits, mini_outlier)
        }
        assert enumerator.coe(mini_outlier) == frozenset(oracle)

    def test_every_matching_context_contains_record(
        self, enumerator, mini_verifier, mini_outlier
    ):
        record_bits = mini_verifier.dataset.record_bits(mini_outlier)
        for bits in enumerator.coe(mini_outlier):
            assert (bits & record_bits) == record_bits

    def test_every_matching_context_structurally_valid(
        self, enumerator, mini_verifier, mini_outlier
    ):
        for bits in enumerator.coe(mini_outlier):
            assert Context(mini_verifier.schema, bits).is_structurally_valid

    def test_matching_contexts_sorted(self, enumerator, mini_outlier):
        contexts = enumerator.matching_contexts(mini_outlier)
        assert contexts == sorted(contexts)

    def test_non_outlier_has_empty_coe(self, enumerator, mini_verifier, mini_reference):
        outliers = set(mini_reference.outlier_records())
        normal = next(
            int(r) for r in mini_verifier.dataset.ids if int(r) not in outliers
        )
        assert enumerator.coe(normal) == frozenset()

    def test_agrees_with_reference_file(self, enumerator, mini_reference, mini_outlier):
        assert enumerator.coe(mini_outlier) == mini_reference.coe(mini_outlier)

    def test_unknown_record(self, enumerator):
        with pytest.raises(VerificationError):
            enumerator.coe(123_456)

    def test_limit_enforced(self, enumerator, mini_outlier):
        with pytest.raises(EnumerationError):
            list(enumerator.iter_matching(mini_outlier, limit=2))

"""Smoke tests for the ablation experiments (micro scale)."""

import pytest

from repro.experiments.ablations import (
    mechanism_parameterisation_ablation,
    random_walk_restart_ablation,
    starting_context_ablation,
)
from repro.experiments.config import ExperimentScale

MICRO = ExperimentScale(
    name="micro",
    salary_records=400,
    salary_reduced_records=400,
    homicide_reduced_records=400,
    repetitions=3,
    n_outlier_records=3,
    n_samples=6,
    coe_neighbors=1,
    coe_outliers=3,
)


class TestStartingContextAblation:
    def test_structure(self):
        table = starting_context_ablation(MICRO, seed=0, modes=("min", "max"))
        assert table.table_id == "A1"
        assert [row[0] for row in table.rows] == ["min", "max"]
        for summary in table.summaries.values():
            assert len(summary.repetitions) == MICRO.repetitions
            assert 0.0 <= summary.utility_summary().mean <= 1.0 + 1e-9

    def test_max_seed_starts_at_optimum(self):
        """With a max-population seed the search starts at the answer, so
        the released context can only be as good or slightly worse."""
        table = starting_context_ablation(MICRO, seed=1, modes=("max",))
        summary = table.summaries["max"]
        # Every repetition starts at the best context; the pool contains it.
        for rep in summary.repetitions:
            assert rep.utility_ratio > 0.0


class TestWalkRestartAblation:
    def test_structure_and_pairing(self):
        table = random_walk_restart_ablation(MICRO, seed=0)
        assert table.table_id == "A2"
        labels = [row[0] for row in table.rows]
        assert labels == ["paper (stop)", "restart"]
        # Paired protocol: both arms evaluated the same records.
        plain = [r.record_id for r in table.summaries["paper (stop)"].repetitions]
        restart = [r.record_id for r in table.summaries["restart"].repetitions]
        assert plain == restart


class TestMechanismWeightsAblation:
    def test_structure(self):
        table = mechanism_parameterisation_ablation(MICRO, seed=0)
        assert table.table_id == "A3"
        assert len(table.rows) == 2
        rendered = table.render()
        assert "parameterisation" in rendered

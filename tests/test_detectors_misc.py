"""Unit tests for z-score / IQR detectors and the registry."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.outliers import (
    IQRDetector,
    ZScoreDetector,
    available_detectors,
    make_detector,
    register_detector,
)
from repro.outliers.base import OutlierDetector


class TestZScore:
    def test_flags_extreme_value(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, size=100), [15.0]])
        det = ZScoreDetector(z_threshold=3.0)
        assert 100 in det.outlier_positions(values)

    def test_constant_data_clean(self):
        assert ZScoreDetector().outlier_positions(np.full(50, 2.0)).size == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ZScoreDetector(z_threshold=0.0)

    def test_masking_effect_exists(self, rng):
        # Several huge outliers inflate sigma; the z-score rule misses the
        # smaller one that IQR still catches - motivates having both.
        values = np.concatenate(
            [rng.normal(0.0, 1.0, size=100), [10.0, 500.0, 600.0]]
        )
        z = ZScoreDetector(z_threshold=3.0).outlier_positions(values)
        iqr = IQRDetector(factor=1.5).outlier_positions(values)
        assert 100 not in z  # masked by the 500/600 pair
        assert 100 in iqr


class TestIQR:
    def test_flags_both_tails(self, rng):
        values = np.concatenate([[-50.0], rng.normal(0.0, 1.0, size=100), [50.0]])
        positions = set(IQRDetector().outlier_positions(values).tolist())
        assert 0 in positions and 101 in positions

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            IQRDetector(factor=0.0)

    def test_wider_factor_flags_less(self, rng):
        values = np.concatenate([rng.normal(0.0, 1.0, size=200), [6.0]])
        narrow = IQRDetector(factor=1.5).outlier_positions(values)
        wide = IQRDetector(factor=10.0).outlier_positions(values)
        assert len(wide) <= len(narrow)


class TestRegistry:
    def test_builtin_detectors_registered(self):
        names = available_detectors()
        for expected in ("grubbs", "histogram", "lof", "zscore", "iqr"):
            assert expected in names

    def test_make_detector_with_kwargs(self):
        det = make_detector("lof", k=7, threshold=2.0)
        assert det.k == 7
        assert det.threshold == 2.0

    def test_make_detector_case_insensitive(self):
        assert make_detector("GRUBBS").name == "grubbs"

    def test_unknown_detector(self):
        with pytest.raises(ReproError, match="unknown detector"):
            make_detector("nonsense")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            register_detector("lof", lambda: None)

    def test_custom_detector_registration(self):
        class EverythingDetector(OutlierDetector):
            name = "everything_test"

            def _outlier_positions(self, values):
                return np.arange(values.shape[0])

        register_detector("everything_test", EverythingDetector)
        det = make_detector("everything_test", min_population=1)
        assert det.outlier_positions(np.arange(3.0)).tolist() == [0, 1, 2]

"""Unit tests for the predicate bitmap index, checked against brute force."""

import numpy as np
import pytest

from repro.context import Context, ContextSpace
from repro.data import Dataset, PredicateMaskIndex
from repro.exceptions import ContextError
from repro.schema import CategoricalAttribute, MetricAttribute, Schema


@pytest.fixture(scope="module")
def schema() -> Schema:
    return Schema(
        attributes=[
            CategoricalAttribute("A", ["a1", "a2"]),
            CategoricalAttribute("B", ["b1", "b2", "b3"]),
        ],
        metric=MetricAttribute("M"),
    )


@pytest.fixture(scope="module")
def dataset(schema) -> Dataset:
    gen = np.random.default_rng(11)
    n = 60
    a_vals = [("a1", "a2")[i] for i in gen.integers(0, 2, size=n)]
    b_vals = [("b1", "b2", "b3")[i] for i in gen.integers(0, 3, size=n)]
    return Dataset(
        schema,
        columns={"A": a_vals, "B": b_vals},
        metric_values=gen.normal(size=n),
    )


@pytest.fixture(scope="module")
def index(dataset) -> PredicateMaskIndex:
    return PredicateMaskIndex(dataset)


def brute_force_mask(dataset: Dataset, bits: int) -> np.ndarray:
    """Reference implementation: per-record predicate evaluation."""
    schema = dataset.schema
    out = np.zeros(len(dataset), dtype=bool)
    for pos, (rid, rec) in enumerate(dataset.iter_records()):
        ok = True
        for i, attr in enumerate(schema.attributes):
            block = (bits >> schema.offsets[i]) & ((1 << len(attr)) - 1)
            j = attr.index_of(rec[attr.name])
            if not (block >> j) & 1:
                ok = False
                break
        out[pos] = ok
    return out


class TestPredicateMasks:
    def test_predicate_mask_matches_column(self, index, dataset, schema):
        for bit in range(schema.t):
            pred = schema.predicate_at(bit)
            expected = np.array(
                [
                    rec[pred.attribute] == pred.value
                    for _, rec in dataset.iter_records()
                ]
            )
            assert np.array_equal(index.predicate_mask(bit), expected)

    def test_predicate_mask_read_only(self, index):
        with pytest.raises(ValueError):
            index.predicate_mask(0)[0] = True

    def test_predicate_mask_out_of_range(self, index):
        with pytest.raises(ContextError):
            index.predicate_mask(99)


class TestPopulationMask:
    def test_matches_brute_force_on_all_contexts(self, index, dataset, schema):
        for bits in range(1 << schema.t):
            assert np.array_equal(
                index.population_mask(bits), brute_force_mask(dataset, bits)
            ), f"mismatch at bits={bits:05b}"

    def test_empty_block_gives_empty_population(self, index, schema):
        # Only attribute A selected; attribute B block empty.
        bits = 0b00011
        assert not index.population_mask(bits).any()

    def test_full_context_selects_everything(self, index, dataset, schema):
        assert index.population_mask(schema.full_bits).all()

    def test_population_size(self, index, dataset, schema):
        assert index.population_size(schema.full_bits) == len(dataset)
        assert index.population_size(0) == 0

    def test_population_returns_aligned_arrays(self, index, dataset, schema):
        positions, ids, metric = index.population(schema.full_bits)
        assert len(positions) == len(ids) == len(metric) == len(dataset)
        assert np.array_equal(metric, dataset.metric[positions])

    def test_out_of_range_bits_rejected(self, index, schema):
        with pytest.raises(ContextError):
            index.population_mask(1 << schema.t)
        with pytest.raises(ContextError):
            index.population_mask(-1)


class TestContainsRecord:
    def test_agrees_with_population_membership(self, index, dataset, schema):
        space = ContextSpace(schema)
        gen = np.random.default_rng(5)
        for _ in range(50):
            ctx = space.random_context(gen)
            mask = index.population_mask(ctx.bits)
            for rid in (0, 10, 59):
                pos = dataset.position_of(rid)
                assert index.contains_record(ctx.bits, rid) == bool(mask[pos])


class TestCounters:
    def test_population_evaluations_counted(self, dataset):
        idx = PredicateMaskIndex(dataset)
        assert idx.population_evaluations == 0
        idx.population_mask(0b00101)
        idx.population_size(0b00101)
        assert idx.population_evaluations == 2
        idx.reset_counters()
        assert idx.population_evaluations == 0

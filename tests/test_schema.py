"""Unit tests for the schema layer (attributes, bit layout, predicates)."""

import pytest

from repro.exceptions import SchemaError
from repro.schema import CategoricalAttribute, MetricAttribute, Predicate, Schema


def make_schema() -> Schema:
    return Schema(
        attributes=[
            CategoricalAttribute("Jobtitle", ["CEO", "MedicalDoctor", "Lawyer"]),
            CategoricalAttribute("City", ["Montreal", "Ottawa", "Toronto"]),
            CategoricalAttribute("District", ["Business", "Historic", "Diplomatic"]),
        ],
        metric=MetricAttribute("Salary"),
    )


class TestCategoricalAttribute:
    def test_domain_preserved_in_order(self):
        attr = CategoricalAttribute("A", ["x", "y", "z"])
        assert attr.domain == ("x", "y", "z")

    def test_len_is_domain_size(self):
        assert len(CategoricalAttribute("A", ["x", "y"])) == 2

    def test_index_of(self):
        attr = CategoricalAttribute("A", ["x", "y", "z"])
        assert attr.index_of("y") == 1

    def test_index_of_missing_value_raises(self):
        attr = CategoricalAttribute("A", ["x"])
        with pytest.raises(SchemaError, match="not in domain"):
            attr.index_of("nope")

    def test_contains(self):
        attr = CategoricalAttribute("A", ["x", "y"])
        assert "x" in attr
        assert "w" not in attr

    def test_values_coerced_to_str(self):
        attr = CategoricalAttribute("Year", [2012, 2013])
        assert attr.domain == ("2012", "2013")

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError, match="empty domain"):
            CategoricalAttribute("A", [])

    def test_duplicate_values_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            CategoricalAttribute("A", ["x", "x"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            CategoricalAttribute("", ["x"])


class TestMetricAttribute:
    def test_name(self):
        assert MetricAttribute("Salary").name == "Salary"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            MetricAttribute("")


class TestSchemaLayout:
    def test_m_and_t(self):
        schema = make_schema()
        assert schema.m == 3
        assert schema.t == 9

    def test_offsets(self):
        assert make_schema().offsets == (0, 3, 6)

    def test_block_masks(self):
        schema = make_schema()
        assert schema.block_masks == (0b000000111, 0b000111000, 0b111000000)

    def test_full_bits(self):
        assert make_schema().full_bits == (1 << 9) - 1

    def test_metric_from_string(self):
        schema = Schema(
            attributes=[CategoricalAttribute("A", ["x"])], metric="Value"
        )
        assert schema.metric.name == "Value"

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            Schema(attributes=[], metric="M")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(
                attributes=[
                    CategoricalAttribute("A", ["x"]),
                    CategoricalAttribute("A", ["y"]),
                ],
                metric="M",
            )

    def test_metric_name_collision_rejected(self):
        with pytest.raises(SchemaError, match="collides"):
            Schema(
                attributes=[CategoricalAttribute("A", ["x"])],
                metric=MetricAttribute("A"),
            )


class TestSchemaAccess:
    def test_attribute_lookup(self):
        schema = make_schema()
        assert schema.attribute("City").name == "City"

    def test_attribute_lookup_missing(self):
        with pytest.raises(SchemaError, match="no attribute"):
            make_schema().attribute("Nope")

    def test_attribute_index(self):
        assert make_schema().attribute_index("District") == 2

    def test_bit_for(self):
        schema = make_schema()
        # City=Toronto is the paper's P23: attribute 2 (1-indexed), value 3.
        assert schema.bit_for("City", "Toronto") == 5

    def test_predicate_at_round_trip(self):
        schema = make_schema()
        for bit in range(schema.t):
            pred = schema.predicate_at(bit)
            assert isinstance(pred, Predicate)
            assert schema.bit_for(pred.attribute, pred.value) == bit

    def test_predicate_at_out_of_range(self):
        with pytest.raises(SchemaError, match="out of range"):
            make_schema().predicate_at(9)

    def test_predicates_iterates_all(self):
        schema = make_schema()
        preds = list(schema.predicates())
        assert len(preds) == schema.t
        assert [p.bit for p in preds] == list(range(schema.t))

    def test_attribute_of_bit(self):
        schema = make_schema()
        assert schema.attribute_of_bit(0) == 0
        assert schema.attribute_of_bit(3) == 1
        assert schema.attribute_of_bit(8) == 2

    def test_attribute_of_bit_out_of_range(self):
        with pytest.raises(SchemaError):
            make_schema().attribute_of_bit(-1)


class TestRecordBits:
    def test_record_bits_sets_one_bit_per_attribute(self):
        schema = make_schema()
        bits = schema.record_bits(
            {"Jobtitle": "Lawyer", "City": "Ottawa", "District": "Diplomatic"}
        )
        assert bits.bit_count() == schema.m
        assert (bits >> schema.bit_for("Jobtitle", "Lawyer")) & 1
        assert (bits >> schema.bit_for("City", "Ottawa")) & 1
        assert (bits >> schema.bit_for("District", "Diplomatic")) & 1

    def test_record_bits_missing_attribute(self):
        with pytest.raises(SchemaError, match="missing attribute"):
            make_schema().record_bits({"Jobtitle": "CEO"})

    def test_record_bits_unknown_value(self):
        with pytest.raises(SchemaError, match="not in domain"):
            make_schema().record_bits(
                {"Jobtitle": "Baker", "City": "Ottawa", "District": "Business"}
            )


class TestSchemaSerialization:
    def test_round_trip(self):
        schema = make_schema()
        clone = Schema.from_dict(schema.to_dict())
        assert clone == schema

    def test_describe_mentions_every_attribute(self):
        text = make_schema().describe()
        for name in ("Jobtitle", "City", "District", "Salary"):
            assert name in text

"""Unit tests for the bounded LRU profile store and its shared registry."""

import pytest

from repro.core.profiles import ProfileStore, shared_profile_store
from repro.core.verification import OutlierVerifier
from repro.outliers.zscore import ZScoreDetector


class TestProfileStore:
    def test_get_put_roundtrip(self):
        store = ProfileStore(capacity=4)
        assert store.get(1) is None
        store.put(1, (10, frozenset({3})))
        assert store.get(1) == (10, frozenset({3}))

    def test_hit_miss_counters(self):
        store = ProfileStore(capacity=4)
        store.get(1)
        store.put(1, (1, frozenset()))
        store.get(1)
        store.get(2)
        assert store.misses == 2
        assert store.hits == 1

    def test_capacity_evicts_lru(self):
        store = ProfileStore(capacity=2)
        store.put(1, (1, frozenset()))
        store.put(2, (2, frozenset()))
        store.get(1)  # refresh 1: now 2 is least recently used
        store.put(3, (3, frozenset()))
        assert store.evictions == 1
        assert 2 not in store
        assert 1 in store and 3 in store

    def test_peek_does_not_touch_state(self):
        store = ProfileStore(capacity=2)
        store.put(1, (1, frozenset()))
        store.put(2, (2, frozenset()))
        store.peek(1)  # no LRU refresh
        store.put(3, (3, frozenset()))
        assert 1 not in store  # 1 stayed least recently used
        assert store.hits == 0 and store.misses == 0

    def test_stats_and_reset(self):
        store = ProfileStore(capacity=2)
        store.get(1)
        store.put(1, (1, frozenset()))
        snap = store.stats()
        assert snap["size"] == 1
        assert snap["misses"] == 1
        store.reset_counters()
        assert store.stats()["misses"] == 0
        assert len(store) == 1  # counters reset, contents kept

    def test_clear(self):
        store = ProfileStore(capacity=2)
        store.put(1, (1, frozenset()))
        store.clear()
        assert len(store) == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ProfileStore(capacity=0)


class TestSharedRegistry:
    def test_same_pair_shares_store(self, mini_dataset):
        a = shared_profile_store(mini_dataset, ZScoreDetector(z_threshold=2.0))
        b = shared_profile_store(mini_dataset, ZScoreDetector(z_threshold=2.0))
        assert a is b

    def test_different_detector_config_separates(self, mini_dataset):
        a = shared_profile_store(mini_dataset, ZScoreDetector(z_threshold=2.0))
        b = shared_profile_store(mini_dataset, ZScoreDetector(z_threshold=3.0))
        assert a is not b

    def test_different_dataset_separates(self, mini_dataset, tiny_dataset):
        det = ZScoreDetector(z_threshold=2.0)
        assert shared_profile_store(mini_dataset, det) is not shared_profile_store(
            tiny_dataset, det
        )

    def test_verifiers_share_profiles_through_store(self, mini_dataset, mini_detector):
        store = ProfileStore()
        a = OutlierVerifier(mini_dataset, mini_detector, profile_store=store)
        b = OutlierVerifier(mini_dataset, mini_detector, profile_store=store)
        bits = mini_dataset.schema.full_bits
        a.context_profile(bits)
        evals_before = b.fm_evaluations
        b.context_profile(bits)  # cache hit via the shared store
        assert b.fm_evaluations == evals_before

    def test_default_verifier_store_is_private(self, mini_dataset, mini_detector):
        a = OutlierVerifier(mini_dataset, mini_detector)
        b = OutlierVerifier(mini_dataset, mini_detector)
        assert a.profile_store is not b.profile_store


class TestDetectorFingerprint:
    def test_callable_configs_never_collide(self, mini_dataset):
        """Detectors configured with distinct callables (address-based reprs)
        must not share a store, even though their reprs could coincide."""
        from repro.outliers.zscore import ZScoreDetector

        def make_detector(fn):
            det = ZScoreDetector(z_threshold=2.0)
            det.transform = fn  # user extension carrying a callable
            return det

        a = shared_profile_store(mini_dataset, make_detector(lambda v: v))
        b = shared_profile_store(mini_dataset, make_detector(lambda v: v + 1))
        assert a is not b

    def test_ndarray_configs_compared_by_contents(self, mini_dataset):
        from repro.outliers.zscore import ZScoreDetector
        import numpy as np

        def make_detector(arr):
            det = ZScoreDetector(z_threshold=2.0)
            det.weights = arr
            return det

        big = np.arange(5000, dtype=np.float64)
        tweaked = big.copy()
        tweaked[2500] = -1.0  # elided from repr() of a large array
        assert shared_profile_store(
            mini_dataset, make_detector(big)
        ) is not shared_profile_store(mini_dataset, make_detector(tweaked))
        assert shared_profile_store(
            mini_dataset, make_detector(big)
        ) is shared_profile_store(mini_dataset, make_detector(big.copy()))

"""Shared-memory transport tests: round-trip fidelity and leak-free cleanup.

The process backend owns exactly one shared segment per bound dataset; it
must be unlinked on ``close()`` — and on a worker crash — with no segment
left behind.  Attachment must reproduce the dataset and the packed mask
matrix exactly (the matrix as a zero-copy view).
"""

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.core.verification import OutlierVerifier
from repro.data.masks import PredicateMaskIndex
from repro.exceptions import ContextError, ExecutionError
from repro.runtime import ProcessBackend, SharedDatasetExport, attach_shared_dataset
from repro.runtime import worker as worker_mod
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

ZSCORE_KWARGS = {"z_threshold": 2.5, "min_population": 8}


def _spec(**overrides) -> PipelineSpec:
    base = dict(
        detector="zscore",
        detector_kwargs=ZSCORE_KWARGS,
        sampler="bfs",
        epsilon=0.5,
        n_samples=4,
    )
    base.update(overrides)
    return PipelineSpec(**base)


def segment_exists(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


class TestExportAttachRoundTrip:
    def test_arrays_and_masks_survive(self, mini_dataset, mini_verifier):
        export = SharedDatasetExport(mini_dataset, mini_verifier.masks)
        try:
            rebuilt, masks, shm = attach_shared_dataset(export.handle)
            try:
                assert len(rebuilt) == len(mini_dataset)
                assert rebuilt.ids.tolist() == mini_dataset.ids.tolist()
                assert rebuilt.metric.tolist() == mini_dataset.metric.tolist()
                for attr in mini_dataset.schema.attributes:
                    assert (
                        rebuilt.codes(attr.name).tolist()
                        == mini_dataset.codes(attr.name).tolist()
                    )
                assert np.array_equal(
                    masks.packed_matrix, mini_verifier.masks.packed_matrix
                )
                # The packed matrix is a view straight into the segment.
                assert masks.packed_matrix.base is not None
                # Population queries agree bit for bit.
                probe = list(range(0, 512, 7))
                assert (
                    masks.population_sizes(probe).tolist()
                    == mini_verifier.masks.population_sizes(probe).tolist()
                )
            finally:
                shm.close()
        finally:
            export.close()

    def test_close_is_idempotent_and_unlinks(self, mini_dataset, mini_verifier):
        export = SharedDatasetExport(mini_dataset, mini_verifier.masks)
        name = export.shm.name
        assert segment_exists(name)
        export.close()
        assert not segment_exists(name)
        export.close()  # idempotent

    def test_from_packed_validates_shape(self, mini_dataset):
        with pytest.raises(ContextError, match="packed matrix must be"):
            PredicateMaskIndex.from_packed(
                mini_dataset, np.zeros((1, 1), dtype=np.uint64)
            )


class TestBackendCleanup:
    def test_engine_close_unlinks_segment(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset, backend="process", workers=2)
        gen = np.random.default_rng(3)
        engine.submit_many(
            [ReleaseRequest(mini_outlier, _spec(), seed=gen) for _ in range(2)]
        )
        name = engine.backend._export.shm.name
        assert segment_exists(name)
        engine.close()
        assert not segment_exists(name)

    def test_backend_close_without_use_is_safe(self):
        backend = ProcessBackend(workers=2)
        backend.close()
        backend.close()

    def test_worker_crash_raises_execution_error_and_frees_segment(
        self, mini_dataset, mini_verifier
    ):
        backend = ProcessBackend(workers=2)
        try:
            backend._ensure_bound(mini_dataset, mini_verifier.masks)
            name = backend._export.shm.name
            assert segment_exists(name)
            with pytest.raises(ExecutionError, match="process backend \\(2 workers\\)"):
                backend._map(None, worker_mod.crash_task, [None])
            # The crash tore down the pool *and* the shared segment.
            assert not segment_exists(name)
            assert backend._pool is None
        finally:
            backend.close()

    def test_backend_respawns_after_crash(self, mini_dataset, mini_outlier):
        engine = ReleaseEngine(mini_dataset, backend="process", workers=2)
        try:
            gen = np.random.default_rng(3)
            requests = [
                ReleaseRequest(mini_outlier, _spec(), seed=gen) for _ in range(2)
            ]
            before = engine.submit_many(requests)
            engine.backend._map(None, worker_mod.crash_task, [None])
        except ExecutionError:
            pass
        try:
            gen = np.random.default_rng(3)
            requests = [
                ReleaseRequest(mini_outlier, _spec(), seed=gen) for _ in range(2)
            ]
            after = engine.submit_many(requests)
            assert [r.context.bits for r in after] == [r.context.bits for r in before]
        finally:
            engine.close()

    def test_rebinding_another_dataset_releases_first_segment(
        self, mini_dataset, mini_verifier, tiny_dataset
    ):
        backend = ProcessBackend(workers=1)
        try:
            backend._ensure_bound(mini_dataset, mini_verifier.masks)
            first = backend._export.shm.name
            backend._ensure_bound(tiny_dataset, PredicateMaskIndex(tiny_dataset))
            second = backend._export.shm.name
            assert first != second
            assert not segment_exists(first)
            assert segment_exists(second)
        finally:
            backend.close()


class TestShippability:
    def test_unpicklable_utility_rejected_clearly(self, mini_dataset, mini_outlier):
        from repro.core.utility import PopulationSizeUtility

        factory = lambda verifier, record_id, starting_bits=None: (  # noqa: E731
            PopulationSizeUtility(verifier, record_id)
        )
        spec = _spec(utility=factory)
        engine = ReleaseEngine(mini_dataset, backend="process", workers=2)
        try:
            with pytest.raises(ExecutionError, match="cannot be shipped"):
                engine.submit_many(
                    [ReleaseRequest(mini_outlier, spec, seed=s) for s in (1, 2)]
                )
        finally:
            engine.close()

    def test_detector_rebuilds_from_fingerprint_not_pickle(self):
        """The worker-bound payload carries class path + public params."""
        from repro.outliers import LOFDetector

        payload = worker_mod.detector_payload(LOFDetector(k=7))
        assert payload[0] == "class"
        rebuilt = worker_mod.rebuild_detector(payload)
        from repro.core.profiles import detector_fingerprint

        assert detector_fingerprint(rebuilt) == detector_fingerprint(LOFDetector(k=7))

    def test_non_roundtrippable_detector_rejected(self, mini_dataset, mini_outlier):
        from repro.outliers.zscore import ZScoreDetector

        class SneakyDetector(ZScoreDetector):
            """Stores config under a name its constructor does not accept."""

            def __init__(self, z_threshold=2.5):
                super().__init__(z_threshold=z_threshold, min_population=8)
                self.derived_only = z_threshold * 2

        spec = _spec(detector=SneakyDetector(), detector_kwargs={})
        engine = ReleaseEngine(mini_dataset, backend="process", workers=2)
        try:
            with pytest.raises(ExecutionError):
                engine.submit_many(
                    [ReleaseRequest(mini_outlier, spec, seed=s) for s in (1, 2)]
                )
        finally:
            engine.close()

"""Unit tests for the context graph (hypercube structure, search helpers)."""

import networkx as nx
import pytest

from repro.context import Context, ContextGraph
from repro.exceptions import EnumerationError
from repro.schema import CategoricalAttribute, MetricAttribute, Schema


@pytest.fixture(scope="module")
def schema() -> Schema:
    return Schema(
        attributes=[
            CategoricalAttribute("A", ["a1", "a2"]),
            CategoricalAttribute("B", ["b1", "b2"]),
        ],
        metric=MetricAttribute("M"),
    )


@pytest.fixture(scope="module")
def graph(schema) -> ContextGraph:
    return ContextGraph(schema)


class TestStructure:
    def test_degree_is_t(self, graph, schema):
        assert graph.degree == schema.t == 4

    def test_n_vertices(self, graph):
        assert graph.n_vertices == 16

    def test_neighbors_bits(self, graph):
        nbs = graph.neighbors_bits(0b0000)
        assert sorted(nbs) == [0b0001, 0b0010, 0b0100, 0b1000]

    def test_are_connected(self, graph, schema):
        a = Context(schema, 0b0001)
        b = Context(schema, 0b0011)
        c = Context(schema, 0b0111)
        assert graph.are_connected(a, b)
        assert not graph.are_connected(a, c)


class TestPaths:
    def test_shortest_path_length_is_hamming(self, graph, schema):
        a = Context(schema, 0b0000)
        b = Context(schema, 0b1011)
        assert graph.shortest_path_length(a, b) == 3

    def test_shortest_path_is_geodesic(self, graph, schema):
        a = Context(schema, 0b0101)
        b = Context(schema, 0b1010)
        path = graph.shortest_path(a, b)
        assert path[0] == a
        assert path[-1] == b
        assert len(path) == a.hamming_distance(b) + 1
        for u, v in zip(path, path[1:]):
            assert u.hamming_distance(v) == 1

    def test_shortest_path_same_node(self, graph, schema):
        a = Context(schema, 0b0101)
        assert graph.shortest_path(a, a) == [a]


class TestBall:
    def test_ball_radius_zero(self, graph, schema):
        center = Context(schema, 0b0101)
        assert [c.bits for c in graph.ball(center, 0)] == [0b0101]

    def test_ball_radius_one_is_closed_neighborhood(self, graph, schema):
        center = Context(schema, 0b0000)
        ball = {c.bits for c in graph.ball(center, 1)}
        assert ball == {0b0000, 0b0001, 0b0010, 0b0100, 0b1000}

    def test_ball_counts_match_binomials(self, graph, schema):
        center = Context(schema, 0b0000)
        # |ball(r)| = sum_{i<=r} C(t, i)
        assert len(list(graph.ball(center, 2))) == 1 + 4 + 6

    def test_full_radius_ball_covers_space(self, graph, schema):
        center = Context(schema, 0b1111)
        assert len(list(graph.ball(center, schema.t))) == graph.n_vertices

    def test_negative_radius_rejected(self, graph, schema):
        with pytest.raises(ValueError):
            list(graph.ball(Context(schema, 0), -1))


class TestLocalityProfile:
    def test_matcher_everything_gives_ones(self, graph, schema):
        profile = graph.locality_profile(lambda b: True, Context(schema, 0), 2)
        assert profile == [1.0, 1.0, 1.0]

    def test_matcher_nothing_gives_zeros_beyond_center(self, graph, schema):
        profile = graph.locality_profile(lambda b: False, Context(schema, 0), 2)
        assert profile == [0.0, 0.0, 0.0]

    def test_local_matcher_decays(self, graph, schema):
        center = Context(schema, 0b0000)
        # Match only contexts within distance 1 of the center.
        profile = graph.locality_profile(
            lambda b: b.bit_count() <= 1, center, 3
        )
        assert profile[0] == 1.0
        assert profile[1] == 1.0
        assert profile[2] == 0.0


class TestMaterialisation:
    def test_to_networkx_is_hypercube(self, graph):
        g = graph.to_networkx()
        assert g.number_of_nodes() == 16
        assert g.number_of_edges() == 16 * 4 // 2
        assert nx.is_connected(g)
        assert all(d == 4 for _, d in g.degree())

    def test_to_networkx_respects_limit(self, graph):
        with pytest.raises(EnumerationError):
            graph.to_networkx(limit=8)

    def test_induced_subgraph(self, graph):
        g = graph.induced_subgraph(lambda b: b.bit_count() <= 1)
        assert set(g.nodes) == {0b0000, 0b0001, 0b0010, 0b0100, 0b1000}
        assert g.number_of_edges() == 4  # star around 0

"""Serve PCOR over HTTP and query it as an analyst.

The deployment the paper describes (Sections 1, 6.3): a data owner hosts a
protected dataset behind the multi-tenant release service; analysts issue
budgeted queries over the wire and are cut off — with a 402 — the moment
their per-analyst quota (or the dataset's global budget) runs out.

1. configure one dataset with a global budget, per-tenant quotas, and a
   durable JSONL write-ahead ledger,
2. start :class:`repro.server.PCORServer` in-process,
3. query it with :class:`repro.server.PCORClient` as two different analysts,
4. watch alice exhaust her quota while bob keeps his,
5. restart the server on the same ledger — alice stays exhausted.

Run:  python examples/serve_and_query.py
(For a standalone process use: pcor serve --config server.toml)
"""

import tempfile
from pathlib import Path

from repro import (
    LOFDetector,
    OutlierVerifier,
    PCORClient,
    PCORServer,
    PrivacyBudgetError,
    ServerConfig,
    salary_reduced,
)

SPEC = {
    "detector": "lof",
    "detector_kwargs": {"k": 10},
    "sampler": "bfs",
    "n_samples": 25,
    "epsilon": 0.2,
}


def make_config(ledger_dir: Path) -> ServerConfig:
    return ServerConfig.from_dict(
        {
            "server": {
                "port": 0,  # ephemeral port; read it off server.url
                "ledger": "jsonl",
                "ledger_dir": str(ledger_dir),
            },
            "datasets": {
                "salary": {
                    "source": "salary_reduced",
                    "records": 2000,
                    "seed": 7,
                    "budget": 5.0,        # dataset-global OCDP budget
                    "tenant_budget": 0.4,  # default per-analyst quota
                    "tenant_budgets": {"bob": 1.0},  # bob negotiated more
                }
            },
        }
    )


def pick_outlier() -> int:
    """A record of the served dataset that has a matching context."""
    dataset = salary_reduced(n_records=2000, seed=7)
    verifier = OutlierVerifier(dataset, LOFDetector(k=10))
    return next(
        rid
        for rid in map(int, dataset.ids)
        if verifier.is_matching(dataset.record_bits(rid), rid)
    )


def main() -> None:
    record_id = pick_outlier()
    ledger_dir = Path(tempfile.mkdtemp(prefix="pcor-ledgers-"))

    with PCORServer(make_config(ledger_dir)) as server:
        print(f"server up at {server.url}, ledgers in {ledger_dir}\n")
        alice = PCORClient(server.url, tenant="alice")
        bob = PCORClient(server.url, tenant="bob")

        # Alice releases twice — that's her whole 0.4 quota at eps=0.2.
        for seed in (1, 2):
            response = alice.release("salary", record_id, SPEC, seed=seed)
            context = response["result"]["context"]["description"]
            print(f"alice (seed={seed}): {context}")
            print(f"  quota: {response['budget']['remaining']:.2f} left\n")

        # Her third request is refused at admission — before any detector
        # run — while bob's bigger quota still has room.
        try:
            alice.release("salary", record_id, SPEC, seed=3)
        except PrivacyBudgetError as exc:
            print(f"alice cut off: {exc}\n")
        response = bob.release("salary", record_id, SPEC, seed=3)
        print(f"bob still fine: {response['budget']['remaining']:.2f} left\n")

        print("metrics snapshot:")
        metrics = bob.metrics()["datasets"]["salary"]
        print(f"  releases completed : {metrics['releases_completed']}")
        print(f"  epsilon spent      : {metrics['epsilon_spent']:.2f} of "
              f"{metrics['epsilon_budget']:.2f}")
        print(f"  spend by tenant    : {metrics['spend_by_tenant']}")

    # The ledgers survive the server: a restart replays them, so alice is
    # *still* exhausted — privacy accounting has no reset button.
    with PCORServer(make_config(ledger_dir)) as server:
        alice = PCORClient(server.url, tenant="alice")
        try:
            alice.release("salary", record_id, SPEC, seed=4)
        except PrivacyBudgetError as exc:
            print(f"\nafter restart, alice is still cut off: {exc}")


if __name__ == "__main__":
    main()

"""Debug a live PCOR fleet: scrape its events and take a flamegraph profile.

The operator loop the debug endpoints exist for: something looks slow, so

1. start a sharded deployment (router + 2 in-process workers — the same
   topology ``pcor serve --config server.toml --workers 2`` gives you),
2. put release load on it from a background analyst thread,
3. ``GET /v1/debug/events`` — the last structured events of every shard,
   merged and source-stamped, without grepping any stdout,
4. ``GET /v1/debug/profile`` — a merged cross-fleet sampling profile whose
   collapsed stacks attribute time to engine phases (``[engine.sample]``,
   ``[engine.select]``), written to ``profile.folded`` for flamegraph.pl
   or speedscope.

Run:  python examples/scrape_and_profile.py
Against a running deployment you don't own, the same two calls are plain
HTTP: ``curl 'http://host:port/v1/debug/profile?seconds=5&hz=99'``.
"""

import threading

from repro import PCORClient, PCORRouter, ServerConfig

SPEC = {
    "detector": "lof",
    "detector_kwargs": {"k": 10},
    "sampler": "bfs",
    "n_samples": 25,
    "epsilon": 0.1,
}

CONFIG = {
    "server": {"port": 0},
    "datasets": {
        "salary": {
            "source": "salary_reduced",
            "records": 2000,
            "seed": 7,
            "budget": 1000.0,
        },
        "housing": {
            "source": "salary_reduced",
            "records": 1500,
            "seed": 9,
            "budget": 1000.0,
        },
    },
    # In-process worker fleet: real HTTP on both hops, no subprocesses —
    # swap manager for "process" (the default) in a real deployment.
    "cluster": {"workers": 2, "manager": "thread"},
}


def find_outlier(client: PCORClient, dataset: str) -> int:
    """First record the detector flags in its own exact context."""
    for record_id in range(0, 2000, 7):
        try:
            result = client.release(
                dataset, record_id=record_id, spec=SPEC, seed=record_id
            )
            return result["result"]["record_id"]
        except Exception:
            continue
    raise RuntimeError(f"no contextual outlier found in {dataset}")


def main() -> None:
    config = ServerConfig.from_dict(CONFIG)
    with PCORRouter(config) as router:
        print(f"fleet up at {router.url} (router + 2 workers)")
        analyst = PCORClient(router.url, tenant="analyst")
        record_id = find_outlier(analyst, "salary")

        # Background load, so the profile has engine work to attribute.
        stop = threading.Event()

        def hammer() -> None:
            seed = 0
            while not stop.is_set():
                seed += 1
                analyst.release(
                    "salary", record_id=record_id, spec=SPEC, seed=seed
                )

        load = threading.Thread(target=hammer, daemon=True)
        load.start()

        operator = PCORClient(router.url, tenant="operator")
        try:
            # --- the last structured events, fleet-wide -----------------
            events = operator.debug_events(n=10)
            print(f"\nlast {len(events['events'])} events "
                  f"(sources: {', '.join(sorted(events['sources']))}):")
            for event in events["events"]:
                print(f"  [{event['source']:<7s}] {event['event']:<12s} "
                      + " ".join(
                          f"{k}={event[k]}"
                          for k in ("dataset", "tenant", "status")
                          if k in event
                      ))

            # --- a 3-second cross-fleet profile -------------------------
            print("\nprofiling the fleet for 3s at 99 Hz ...")
            profile = operator.debug_profile(seconds=3, hz=99)
        finally:
            stop.set()
            load.join(timeout=30.0)

        print(f"  {profile['samples']} samples over "
              f"{len(profile['sources'])} sources; "
              f"unavailable shards: {profile['unavailable_shards']}")
        phases = sorted(
            {
                part
                for stack in profile["folded"]
                for part in stack.split(";")
                if part.startswith("[engine.")
            }
        )
        print(f"  engine phases attributed: {', '.join(phases) or '(none)'}")
        top = sorted(
            profile["folded"].items(), key=lambda kv: -kv[1]
        )[:5]
        print("  hottest stacks:")
        for stack, count in top:
            leaf = stack.rsplit(";", 1)[-1]
            print(f"    {count:5d}  {stack.split(';', 1)[0]} ... {leaf}")

        with open("profile.folded", "w") as fh:
            fh.write(profile["folded_text"])
        print("\nwrote profile.folded — feed it to flamegraph.pl or "
              "speedscope (https://speedscope.app, 'folded' format)")


if __name__ == "__main__":
    main()

"""The paper's income-analysis scenario (Sections 1 and 3), end to end.

A market analyst may report that a specific individual's salary is
anomalous, but the *context* that explains the anomaly ("Lawyers and CEOs
in Ottawa's Diplomatic district") leaks information about everyone else in
that context.  This example contrasts:

* the non-private release (the true maximum context — what a naive system
  would print), and
* PCOR releases under both paper utilities, with the direct approach and
  with BFS sampling,

and shows the privacy accounting for a sequence of releases.

Run:  python examples/income_analysis.py
"""

import numpy as np

from repro import (
    BFSSampler,
    Context,
    DirectPCOR,
    LOFDetector,
    OutlierVerifier,
    PCOR,
    PrivacyAccountant,
    ReferenceFile,
    salary_reduced,
    starting_context_from_reference,
)
from repro.core.utility import PopulationSizeUtility


def main() -> None:
    dataset = salary_reduced(n_records=3000, seed=11)
    detector = LOFDetector(k=10, threshold=1.5)
    verifier = OutlierVerifier(dataset, detector)

    # The data owner's one-off reference computation (Section 6.2): every
    # valid context, its population and its outliers.  This is the expensive
    # artefact PCOR's samplers let you avoid at query time.
    print("building the reference file (the paper's 'three day' artefact)...")
    reference = ReferenceFile.build(verifier)
    print(f"  {len(reference)} contexts profiled, "
          f"{len(reference.outlier_records())} records are contextual outliers\n")

    # Pick the most "explainable" outlier: many matching contexts.
    record_id = max(
        reference.outlier_records(),
        key=lambda r: len(reference.matching_contexts(r)),
    )
    record = dataset.record(record_id)
    print(f"queried outlier V = record {record_id}: {record}")

    # --- the naive, non-private answer --------------------------------
    matching = reference.matching_contexts(record_id)
    true_max = max(matching, key=reference.population_size)
    print("\nNON-PRIVATE release (what PCOR prevents):")
    print(f"  maximum context: {Context(dataset.schema, true_max).describe()}")
    print(f"  population     : {reference.population_size(true_max)} individuals")
    print("  -> deterministic: an adversary with side information can infer")
    print("     membership of other individuals in this context.")

    # --- PCOR with a privacy budget ------------------------------------
    accountant = PrivacyAccountant(budget=1.0)
    rng = np.random.default_rng(5)
    starting = starting_context_from_reference(reference, record_id, rng)

    print("\nPCOR release #1: population-size utility, BFS, eps=0.2")
    pcor = PCOR(dataset, detector, utility="population_size", epsilon=0.2,
                sampler=BFSSampler(n_samples=50), verifier=verifier)
    result = pcor.release(record_id, starting_context=starting, seed=rng)
    accountant.charge("bfs population_size release", result.epsilon_total)
    print(result.describe())
    max_utility = reference.max_population_utility(record_id)
    print(f"  utility retained : {result.utility_value / max_utility:.0%} of the maximum")

    print("\nPCOR release #2: overlap utility (stay close to a chosen context)")
    pcor_overlap = PCOR(dataset, detector, utility="overlap", epsilon=0.2,
                        sampler=BFSSampler(n_samples=50), verifier=verifier)
    result2 = pcor_overlap.release(record_id, starting_context=starting, seed=rng)
    accountant.charge("bfs overlap release", result2.epsilon_total)
    print(result2.describe())

    print("\nPCOR release #3: the direct approach (exact candidate set, slow)")
    direct = DirectPCOR(verifier, epsilon=0.2)
    utility = PopulationSizeUtility(verifier, record_id)
    result3 = direct.release(utility, record_id, rng)
    accountant.charge("direct release", result3.epsilon_total)
    print(result3.describe())
    print(f"  (examined {result3.stats.contexts_examined} contexts vs "
          f"{result.stats.contexts_examined} for BFS)")

    print("\nprivacy ledger:")
    for label, cost in accountant.ledger():
        print(f"  {cost:.3f}  {label}")
    print(f"  spent {accountant.spent:.3f} of budget {accountant.budget:.3f}; "
          f"{accountant.remaining:.3f} remaining")


if __name__ == "__main__":
    main()

"""Contextual anomaly exploration on the homicide-style dataset.

The paper's second dataset: homicide reports with AgencyType / State /
Weapon and a VictimAge metric.  This example runs PCOR with all three paper
detectors over the *same* outlier, showing (a) detector-genericity and (b)
how the released explanation varies with the detector's notion of
"outlier", all under the same privacy budget.

Run:  python examples/homicide_exploration.py
"""

import numpy as np

from repro import (
    BFSSampler,
    GrubbsDetector,
    HistogramDetector,
    LOFDetector,
    OutlierVerifier,
    PCOR,
    ReferenceFile,
    homicide_reduced,
    starting_context_from_reference,
)

DETECTORS = {
    "LOF (density)": LOFDetector(k=10, threshold=1.5),
    "Grubbs (hypothesis test)": GrubbsDetector(alpha=0.05),
    "Histogram (distribution fit)": HistogramDetector(
        frequency_fraction=2.5e-3, min_count_floor=2.0
    ),
}


def main() -> None:
    dataset = homicide_reduced(n_records=4000, seed=3)
    print(f"dataset: {len(dataset)} homicide records, "
          f"t = {dataset.schema.t} attribute values")
    print(dataset.schema.describe())

    # Build one reference per detector; intersect their outlier sets to find
    # a record every detector category agrees is a contextual outlier.
    references = {}
    common = None
    for label, detector in DETECTORS.items():
        verifier = OutlierVerifier(dataset, detector)
        references[label] = (verifier, ReferenceFile.build(verifier))
        outliers = set(references[label][1].outlier_records())
        common = outliers if common is None else (common & outliers)
    assert common, "no record is an outlier under every detector"
    record_id = max(
        common,
        key=lambda r: min(
            len(ref.matching_contexts(r)) for _, ref in references.values()
        ),
    )
    print(f"\nqueried record {record_id}: {dataset.record(record_id)}\n")

    rng = np.random.default_rng(9)
    for label, detector in DETECTORS.items():
        verifier, reference = references[label]
        starting = starting_context_from_reference(reference, record_id, rng)
        pcor = PCOR(
            dataset,
            detector,
            utility="population_size",
            epsilon=0.2,
            sampler=BFSSampler(n_samples=50),
            verifier=verifier,
        )
        result = pcor.release(record_id, starting_context=starting, seed=rng)
        max_utility = reference.max_population_utility(record_id)
        print(f"== {label} ==")
        print(f"  matching contexts : {len(reference.matching_contexts(record_id))}")
        print(f"  released context  : {result.context.describe()}")
        print(f"  covers            : {result.utility_value:.0f} records "
              f"({result.utility_value / max_utility:.0%} of the best context)")
        print(f"  cost              : {result.fm_evaluations} detector runs, "
              f"eps = {result.epsilon_total:g}")
        print()

    print("All three detector categories plug into the same release pipeline -")
    print("the genericity claim of Section 6.5.")


if __name__ == "__main__":
    main()

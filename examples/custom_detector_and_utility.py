"""Extending PCOR: plug in your own detector and utility function.

The paper claims PCOR is "compatible with any utility function ... as well
as any outlier detection algorithm" (Section 1.1, challenge 4).  This
example proves it operationally:

* a custom MAD (median absolute deviation) detector — more robust than the
  z-score rule — registered under the detector registry, and
* a custom utility that trades population size against description length
  (prefer large contexts that are also *short* to read).

Both plug into the stock PCOR facade unchanged.  The only privacy
obligation on a custom utility is a bounded sensitivity: MixedUtility's
population term has sensitivity 1 and its sparsity term is data-independent,
so Delta_u = 1 and the Theorem 5.7 budget split still applies.

Run:  python examples/custom_detector_and_utility.py
"""

import math

import numpy as np

from repro import BFSSampler, OutlierVerifier, PCOR, ReferenceFile, salary_reduced
from repro.core.starting import starting_context_from_reference
from repro.core.utility import UtilityFunction
from repro.outliers.base import OutlierDetector, make_detector, register_detector


class MADDetector(OutlierDetector):
    """Median-absolute-deviation rule: |x - median| / (1.4826 MAD) > cutoff."""

    name = "mad"

    def __init__(self, cutoff: float = 3.5, min_population: int = 10):
        super().__init__(min_population=min_population)
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        self.cutoff = float(cutoff)

    def _outlier_positions(self, values: np.ndarray) -> np.ndarray:
        median = np.median(values)
        mad = np.median(np.abs(values - median))
        if mad == 0.0:
            return np.empty(0, dtype=np.int64)
        robust_z = np.abs(values - median) / (1.4826 * mad)
        return np.flatnonzero(robust_z > self.cutoff).astype(np.int64)


class MixedUtility(UtilityFunction):
    """u = |D_C| - penalty * HammingWeight(C): big but readable contexts."""

    name = "population_minus_length"
    sensitivity = 1.0  # only the population term depends on the data

    def __init__(self, verifier, record_id, penalty: float = 25.0):
        super().__init__(verifier, record_id)
        self.penalty = float(penalty)

    def _raw_score(self, bits: int) -> float:
        return float(self.verifier.population_size(bits)) - self.penalty * bits.bit_count()


def main() -> None:
    # Register once; afterwards the detector is constructible by name
    # anywhere in the library (CLI included).
    try:
        register_detector("mad", MADDetector)
    except Exception:
        pass  # already registered on re-run
    detector = make_detector("mad", cutoff=3.0)

    dataset = salary_reduced(n_records=2500, seed=21)
    verifier = OutlierVerifier(dataset, detector)
    reference = ReferenceFile.build(verifier)
    record_id = max(
        reference.outlier_records(),
        key=lambda r: len(reference.matching_contexts(r)),
    )
    starting = starting_context_from_reference(reference, record_id, 1)
    print(f"outlier record {record_id} under the custom MAD detector")
    print(f"  {len(reference.matching_contexts(record_id))} matching contexts\n")

    def mixed_utility_factory(verifier, record_id, starting_bits):
        return MixedUtility(verifier, record_id, penalty=25.0)

    pcor = PCOR(
        dataset,
        detector,
        utility=mixed_utility_factory,
        epsilon=0.2,
        sampler=BFSSampler(n_samples=40),
        verifier=verifier,
    )
    result = pcor.release(record_id, starting_context=starting, seed=4)
    print(result.describe())

    # Compare against the plain population-size objective.
    pcor_plain = PCOR(
        dataset, detector, utility="population_size", epsilon=0.2,
        sampler=BFSSampler(n_samples=40), verifier=verifier,
    )
    plain = pcor_plain.release(record_id, starting_context=starting, seed=4)
    print()
    print("objective comparison:")
    print(f"  mixed   : weight {result.context.hamming_weight:2d}, "
          f"population {verifier.population_size(result.context.bits)}")
    print(f"  popsize : weight {plain.context.hamming_weight:2d}, "
          f"population {verifier.population_size(plain.context.bits)}")
    print("\nThe mixed objective trades a little population for a shorter,")
    print("more interpretable explanation - at identical privacy cost.")


if __name__ == "__main__":
    main()

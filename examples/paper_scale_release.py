"""A private release at the paper's full scale — no reference file needed.

The paper's headline dataset is the 51,000-record Ontario salary list with
the full schema (Jobtitle x9, Employer x8, Year x8 -> t = 25).  Its context
space holds 511 * 255 * 255 ~ 33.2 million valid contexts; the authors'
exhaustive reference computation took three days on a 132-core machine.

PCOR's entire point is that *query time does not need that artefact*: a
starting context comes from a cheap local search and the DP-BFS sampler
touches only O(n*t) contexts.  This example runs exactly that, at exactly
the paper's scale, on a laptop, in seconds.

Run:  python examples/paper_scale_release.py
"""

import time

import numpy as np

from repro import (
    BFSSampler,
    ContextSpace,
    LOFDetector,
    OutlierVerifier,
    PCOR,
    ReproError,
    find_starting_context,
    synthetic_salary_dataset,
)


def main() -> None:
    t0 = time.perf_counter()
    dataset = synthetic_salary_dataset(n_records=51_000, seed=1)
    space = ContextSpace(dataset.schema)
    print(f"dataset: {len(dataset):,} records, t = {dataset.schema.t}")
    print(f"context space: 2^{dataset.schema.t} = {space.size:,} bitmasks, "
          f"{space.n_structurally_valid:,} structurally valid contexts")
    print("(the direct approach would verify ALL of them; we will touch a few hundred)\n")

    detector = LOFDetector(k=10, threshold=1.5)
    verifier = OutlierVerifier(dataset, detector)
    rng = np.random.default_rng(7)

    # Find some contextual outlier by scanning random records with a cheap
    # local search (what a data owner's "initial search" would do).
    record_id, starting = None, None
    for candidate in rng.permutation(len(dataset))[:300]:
        rid = int(dataset.ids[int(candidate)])
        try:
            starting = find_starting_context(verifier, rid, rng, max_steps=400)
            record_id = rid
            break
        except ReproError:
            continue
    assert record_id is not None, "no contextual outlier found in the sample"
    print(f"outlier record {record_id}: {dataset.record(record_id)}")
    print(f"starting context population: "
          f"{verifier.population_size(starting.bits):,}\n")

    pcor = PCOR(
        dataset,
        detector,
        utility="population_size",
        epsilon=0.2,
        sampler=BFSSampler(n_samples=50),
        verifier=verifier,
    )
    result = pcor.release(record_id, starting_context=starting, seed=rng)
    print(result.describe())

    elapsed = time.perf_counter() - t0
    examined = result.stats.contexts_examined
    print(f"\ntotal wall time including data generation: {elapsed:.1f}s")
    print(f"contexts examined: {examined:,} of {space.n_structurally_valid:,} "
          f"({examined / space.n_structurally_valid:.2e} of the space)")
    print("paper comparison: direct approach ~ 3 days; PCOR-BFS ~ 37 minutes "
          "on 50k records - the asymptotic gap this run demonstrates.")


if __name__ == "__main__":
    main()

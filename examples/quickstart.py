"""Quickstart: release one differentially private contextual outlier.

Walks the full PCOR pipeline on a synthetic Ontario-salary-style dataset:

1. generate data,
2. pick a record that is a *contextual* outlier (normal globally, extreme
   in some neighbourhood),
3. find a valid starting context,
4. release a private context with the BFS sampler at eps = 0.2,
5. serve the same query through the budgeted, spec-driven service engine.

Run:  python examples/quickstart.py
"""

from repro import (
    BFSSampler,
    LOFDetector,
    PCOR,
    PipelineSpec,
    ReleaseEngine,
    ReleaseRequest,
    find_starting_context,
    salary_reduced,
)


def main() -> None:
    # 1. A 2,000-record salary table: Jobtitle x6, Employer x4, Year x4,
    #    with ~1% planted contextual anomalies.
    dataset = salary_reduced(n_records=2000, seed=7)
    print(f"dataset: {len(dataset)} records, t = {dataset.schema.t} attribute values")
    print(dataset.schema.describe())
    print()

    # 2. Compose PCOR: detector x utility x sampler x budget.
    detector = LOFDetector(k=10, threshold=1.5)
    pcor = PCOR(
        dataset,
        detector,
        utility="population_size",  # |D_C|: bigger context = stronger evidence
        epsilon=0.2,                # total OCDP budget for the release
        sampler=BFSSampler(n_samples=50),
    )

    # 3. Find a contextual outlier and a valid starting context for it.
    #    (A data owner would know which record they want to explain; here we
    #    scan for the first record that is an outlier in some context.)
    record_id, starting = None, None
    for candidate in range(len(dataset)):
        try:
            starting = find_starting_context(pcor.verifier, candidate, rng=1)
            record_id = candidate
            break
        except Exception:
            continue
    assert record_id is not None, "no contextual outlier found"

    record = dataset.record(record_id)
    print(f"outlier record {record_id}: {record}")
    print(f"starting context: {starting.describe()}")
    print()

    # 4. One private release.  Everything the analyst learns:
    result = pcor.release(record_id, starting_context=starting, seed=42)
    print(result.describe())
    print()
    print(
        "Interpretation: the released context explains why the record is "
        "anomalous while bounding what anyone can infer about *other* "
        f"individuals to a factor of e^{result.epsilon_total:g} ~= "
        f"{2.718 ** result.epsilon_total:.2f} (output-constrained DP)."
    )
    print()

    # 5. The same release as a *service*: a long-lived engine with a total
    #    budget, taking declarative requests.  The spec is plain data (it
    #    round-trips through JSON/TOML), the ledger is charged before any
    #    detector run, and identical seeds release identical contexts.
    engine = ReleaseEngine(dataset, budget=0.5)
    spec = PipelineSpec(
        detector="lof",
        detector_kwargs={"k": 10, "threshold": 1.5},
        sampler="bfs",
        n_samples=50,
        epsilon=0.2,
    )
    served = engine.submit(
        ReleaseRequest(record_id=record_id, spec=spec,
                       starting_context=starting, seed=42)
    )
    assert served.context.bits == result.context.bits, "engine == facade"
    print("service engine released the identical context from the same seed:")
    print(f"  spec    : {spec.to_json()}")
    print(f"  budget  : spent {engine.spent:g} of 0.5")
    print(f"  metrics : {engine.metrics().to_dict()}")


if __name__ == "__main__":
    main()

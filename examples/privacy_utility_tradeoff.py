"""The privacy / utility / performance trade-off (Section 6.6), interactive.

Sweeps the total budget eps and the sample count n for BFS sampling and
prints the paper's Tables 8-11 in miniature, plus the OCDP interpretation
of each setting (the e^eps indistinguishability factor).

Run:  python examples/privacy_utility_tradeoff.py
"""

import math

from repro.experiments.config import ExperimentScale
from repro.experiments.harness import Workbench, run_pcor_experiment
from repro.experiments.reporting import render_table
from repro.experiments.tables import DETECTOR_KWARGS
from repro.mechanisms.accounting import epsilon_one_for

SCALE = ExperimentScale(
    name="example",
    salary_records=2500,
    salary_reduced_records=2500,
    homicide_reduced_records=2500,
    repetitions=8,
    n_outlier_records=5,
    n_samples=30,
    coe_neighbors=1,
    coe_outliers=5,
)


def main() -> None:
    bench = Workbench.get(
        "salary_reduced", SCALE.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )

    # ---- epsilon sweep (Tables 8 & 9) ---------------------------------
    rows = []
    for eps in (0.05, 0.1, 0.2, 0.4):
        summary = run_pcor_experiment(
            bench, "bfs", epsilon=eps, n_samples=SCALE.n_samples,
            repetitions=SCALE.repetitions,
            n_outlier_records=SCALE.n_outlier_records, rng=0,
        )
        us = summary.utility_summary()
        rows.append([
            f"{eps:g}",
            f"{us.mean:.2f}",
            f"({us.ci_low:.2f}, {us.ci_high:.2f})",
            f"{epsilon_one_for('bfs', eps, SCALE.n_samples):.5f}",
            f"{math.exp(eps):.2f}",
        ])
    print(render_table(
        "Privacy sweep (BFS + LOF, n=30)",
        ["eps", "Utility", "CI (90%)", "eps_1 per draw", "e^eps leak factor"],
        rows,
        notes="paper Table 9: utility saturates near eps = 0.2",
    ))
    print()

    # ---- sample-count sweep (Tables 10 & 11) --------------------------
    rows = []
    for n in (10, 30, 60, 120):
        summary = run_pcor_experiment(
            bench, "bfs", epsilon=0.2, n_samples=n,
            repetitions=SCALE.repetitions,
            n_outlier_records=SCALE.n_outlier_records, rng=0,
        )
        us = summary.utility_summary()
        rt = summary.runtime_summary()
        rows.append([
            str(n),
            f"{us.mean:.2f}",
            f"{rt.t_avg:.2f}s",
            f"{summary.mean_fm_evaluations():.0f}",
            f"{epsilon_one_for('bfs', 0.2, n):.5f}",
        ])
    print(render_table(
        "Sample-count sweep (BFS + LOF, eps=0.2)",
        ["n", "Utility", "Tavg", "f_M runs", "eps_1 per draw"],
        rows,
        notes=(
            "paper Table 11: more samples help until eps_1 = eps/(2n+2) "
            "gets too small - the fixed budget is split across every draw"
        ),
    ))


if __name__ == "__main__":
    main()

"""Section 6.7 (ii) — empirical privacy ratio when COE sets mismatch.

Over one-record neighbours, measure the maximum ratio of the direct
mechanism's selection probabilities across the COE intersection.  The paper
found every measured ratio below e^eps for eps = 0.2; that observation is
scale-sensitive (tiny datasets perturb COE harder), so the hard assertion
here is the f-neighbour bound and the mismatch ratios are reported.
"""

from repro.experiments.privacy_ratio import privacy_ratio_experiment

from _helpers import run_once


def test_privacy_ratio(benchmark, scale, emit):
    result = run_once(
        benchmark, lambda: privacy_ratio_experiment(scale, seed=0, epsilon=0.2)
    )
    emit("privacy_ratio", result.to_table(
        notes="paper: no instance above e^eps at 11k/28k records"
    ).render())

    for detector, (max_ratio, n_measured, _) in result.by_detector.items():
        assert n_measured > 0, f"{detector}: nothing measured"
        assert max_ratio >= 0.0

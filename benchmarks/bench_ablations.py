"""Design-choice ablations (DESIGN.md section 4, beyond the paper's sweeps).

* starting-context quality: min vs random vs max population seeds,
* random-walk restart-on-stuck extension,
* Exponential-mechanism parameterisation (paper vs textbook weights).
"""

from repro.experiments.ablations import (
    mechanism_parameterisation_ablation,
    random_walk_restart_ablation,
    starting_context_ablation,
)

from _helpers import run_once


def test_starting_context_ablation(benchmark, scale, emit):
    table = run_once(benchmark, lambda: starting_context_ablation(scale, seed=0))
    emit("ablation_starting_context", table.render())
    means = {
        label: s.utility_summary().mean for label, s in table.summaries.items()
    }
    # A max-population seed can only help relative to a min-population one.
    assert means["max"] >= means["min"] - 0.05, means


def test_random_walk_restart_ablation(benchmark, scale, emit):
    table = run_once(benchmark, lambda: random_walk_restart_ablation(scale, seed=0))
    emit("ablation_walk_restart", table.render())
    means = {
        label: s.utility_summary().mean for label, s in table.summaries.items()
    }
    # Restarting collects at least as many candidates; utility should not
    # get meaningfully worse.
    assert means["restart"] >= means["paper (stop)"] - 0.1, means


def test_mechanism_parameterisation_ablation(benchmark, scale, emit):
    table = run_once(
        benchmark, lambda: mechanism_parameterisation_ablation(scale, seed=0)
    )
    emit("ablation_mechanism_weights", table.render())
    for summary in table.summaries.values():
        assert 0.0 <= summary.utility_summary().mean <= 1.0 + 1e-9

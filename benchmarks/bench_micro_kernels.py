"""Micro-benchmarks of the hot kernels under the experiments.

These are genuine multi-round pytest-benchmark measurements (unlike the
table benches, which run whole experiments once):

* population-mask evaluation — the filtering engine every f_M call rides on,
* LOF / Grubbs / Histogram scoring on a realistic population,
* Exponential-mechanism selection over a large candidate pool,
* one full BFS release on a warmed verifier.
"""

import numpy as np
import pytest

from repro.context import ContextSpace
from repro.core.pcor import PCOR
from repro.core.sampling import BFSSampler
from repro.core.starting import starting_context_from_reference
from repro.data.masks import PredicateMaskIndex
from repro.experiments.harness import Workbench
from repro.experiments.tables import DETECTOR_KWARGS
from repro.mechanisms.exponential import ExponentialMechanism
from repro.outliers import GrubbsDetector, HistogramDetector, LOFDetector


@pytest.fixture(scope="module")
def bench_env(scale):
    workbench = Workbench.get(
        "salary_reduced", scale.salary_reduced_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    rng = np.random.default_rng(0)
    return workbench, rng


def test_population_mask_kernel(benchmark, bench_env):
    workbench, rng = bench_env
    index = PredicateMaskIndex(workbench.dataset)
    space = ContextSpace(workbench.dataset.schema)
    contexts = [space.random_valid_context(rng).bits for _ in range(256)]

    def evaluate_all():
        return sum(index.population_size(bits) for bits in contexts)

    total = benchmark(evaluate_all)
    assert total > 0


@pytest.mark.parametrize(
    "detector",
    [LOFDetector(k=10), GrubbsDetector(), HistogramDetector(min_count_floor=2.0)],
    ids=lambda d: d.name,
)
def test_detector_kernel(benchmark, bench_env, detector):
    workbench, _ = bench_env
    values = workbench.dataset.metric  # the full-population metric column
    positions = benchmark(detector.outlier_positions, values)
    assert positions.dtype == np.int64


def test_exponential_mechanism_kernel(benchmark, bench_env):
    _, rng = bench_env
    mech = ExponentialMechanism(0.002)
    utilities = rng.uniform(0, 5000, size=4096)

    def select():
        return mech.select_index(utilities, rng)

    idx = benchmark(select)
    assert 0 <= idx < 4096


def test_bfs_release_warm_cache(benchmark, bench_env):
    """One full BFS release against a warmed verifier (amortised regime)."""
    workbench, rng = bench_env
    record_id = workbench.pick_outliers(1, 0)[0]
    start = starting_context_from_reference(workbench.reference, record_id, 0)
    pcor = PCOR(
        workbench.dataset,
        workbench.detector,
        epsilon=0.2,
        sampler=BFSSampler(n_samples=25),
        verifier=workbench.reference_verifier,  # fully warmed cache
    )

    counter = iter(range(10**9))

    def release():
        return pcor.release(record_id, starting_context=start, seed=next(counter))

    result = benchmark(release)
    assert result.context.is_structurally_valid

"""Micro-benchmarks of the hot kernels under the experiments.

These are genuine multi-round pytest-benchmark measurements (unlike the
table benches, which run whole experiments once):

* population-mask evaluation — the filtering engine every f_M call rides on,
* batch vs scalar population-size kernels (the batched-engine speedup),
* LOF / Grubbs / Histogram scoring on a realistic population,
* Exponential-mechanism selection over a large candidate pool,
* one full BFS release on a warmed verifier,
* release_many vs fresh-instance releases (profile-store amortisation).
"""

import time

import numpy as np
import pytest

from _helpers import load_harness

from repro.context import ContextSpace
from repro.core.pcor import PCOR
from repro.core.sampling import BFSSampler
from repro.core.starting import starting_context_from_reference
from repro.data.generators import salary_reduced
from repro.data.masks import PredicateMaskIndex
from repro.experiments.harness import Workbench
from repro.experiments.tables import DETECTOR_KWARGS
from repro.mechanisms.exponential import ExponentialMechanism
from repro.outliers import GrubbsDetector, HistogramDetector, LOFDetector


@pytest.fixture(scope="module")
def bench_env(scale):
    workbench = Workbench.get(
        "salary_reduced", scale.salary_reduced_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    rng = np.random.default_rng(0)
    return workbench, rng


def test_population_mask_kernel(benchmark, bench_env):
    workbench, rng = bench_env
    index = PredicateMaskIndex(workbench.dataset)
    space = ContextSpace(workbench.dataset.schema)
    contexts = [space.random_valid_context(rng).bits for _ in range(256)]

    def evaluate_all():
        return sum(index.population_size(bits) for bits in contexts)

    total = benchmark(evaluate_all)
    assert total > 0


@pytest.mark.parametrize(
    "detector",
    [LOFDetector(k=10), GrubbsDetector(), HistogramDetector(min_count_floor=2.0)],
    ids=lambda d: d.name,
)
def test_detector_kernel(benchmark, bench_env, detector):
    workbench, _ = bench_env
    values = workbench.dataset.metric  # the full-population metric column
    positions = benchmark(detector.outlier_positions, values)
    assert positions.dtype == np.int64


def test_population_sizes_batch_vs_scalar(benchmark, emit):
    """The tentpole kernel: batched population sizes vs scalar calls.

    Deliberately pinned to the acceptance setting (n = 20k records, a batch
    of 1024 contexts) rather than the ``PCOR_BENCH_SCALE`` fixture: the
    >= 5x speedup gate is only meaningful at this scale.  Both sides take
    the best of three timed runs so a loaded runner doesn't flake the gate.
    """
    dataset = salary_reduced(n_records=20_000, seed=7)
    index = PredicateMaskIndex(dataset)
    space = ContextSpace(dataset.schema)
    rng = np.random.default_rng(0)
    contexts = [space.random_valid_context(rng).bits for _ in range(1024)]

    batched = benchmark(lambda: index.population_sizes(contexts))

    def best_of_three(fn):
        times, out = [], None
        for _ in range(3):
            t0 = time.perf_counter()
            out = fn()
            times.append(time.perf_counter() - t0)
        return min(times), out

    t_batch, batch_again = best_of_three(lambda: index.population_sizes(contexts))
    t_scalar, scalar = best_of_three(
        lambda: [index.population_size(bits) for bits in contexts]
    )

    assert list(batched) == scalar
    assert np.array_equal(batched, batch_again)
    speedup = t_scalar / t_batch
    harness = load_harness()
    emit(
        "bench_batch_population_sizes",
        "population_sizes batch kernel (n=20000 records, batch=1024 contexts)\n"
        f"  scalar loop : {t_scalar * 1000:8.1f} ms\n"
        f"  batch kernel: {t_batch * 1000:8.1f} ms\n"
        f"  speedup     : {speedup:8.1f}x",
        metrics=[
            harness.metric(
                "batch_kernel_ms", t_batch * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric("scalar_loop_ms", t_scalar * 1000.0, "ms"),
            harness.metric(
                "batch_speedup", speedup, "x", direction="higher", tolerance=0.5
            ),
        ],
    )
    assert speedup >= 5.0, f"batch kernel only {speedup:.1f}x faster than scalar"


def _best_of_three(fn):
    times, out = [], None
    for _ in range(3):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return min(times), out


def test_native_vs_fallback_kernels(emit):
    """Native (numba-JIT) fused mask kernels vs the numpy fallback.

    Pinned to the acceptance setting (n = 20k records, a batch of 1024
    contexts).  Bit-identity between the backends is asserted *before* any
    timing, and the >= 2x speedup gate only arms when numba is importable —
    the default numba-free environment still runs (and emits) this bench,
    recording ``native_available = 0`` so telemetry shows which code path
    was measured.
    """
    from repro.bitops import native_kernels_available, set_kernel_backend

    dataset = salary_reduced(n_records=20_000, seed=7)
    index = PredicateMaskIndex(dataset)
    space = ContextSpace(dataset.schema)
    rng = np.random.default_rng(0)
    contexts = [space.random_valid_context(rng).bits for _ in range(1024)]

    harness = load_harness()
    native = native_kernels_available()
    try:
        set_kernel_backend("fallback")
        t_fallback, sizes_fallback = _best_of_three(
            lambda: index.population_sizes(contexts)
        )
        metrics = [
            harness.metric("fallback_ms", t_fallback * 1000.0, "ms"),
            harness.metric("native_available", 1.0 if native else 0.0, "bool"),
        ]
        if not native:
            emit(
                "bench_native_kernels",
                "native vs fallback kernels (n=20000 records, batch=1024 contexts)\n"
                f"  numpy fallback: {t_fallback * 1000:8.1f} ms\n"
                "  native kernels: numba not installed — gate disarmed",
                metrics=metrics,
            )
            return
        set_kernel_backend("native")
        # First call pays JIT compilation and doubles as the identity check.
        sizes_native = index.population_sizes(contexts)
        assert np.array_equal(np.asarray(sizes_native), np.asarray(sizes_fallback))
        masks_native = index.population_masks(contexts[:64])
        set_kernel_backend("fallback")
        assert np.array_equal(masks_native, index.population_masks(contexts[:64]))
        set_kernel_backend("native")
        t_native, _ = _best_of_three(lambda: index.population_sizes(contexts))
        speedup = t_fallback / t_native
        metrics += [
            harness.metric(
                "native_ms", t_native * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric(
                "native_speedup", speedup, "x", direction="higher", tolerance=0.5
            ),
        ]
        emit(
            "bench_native_kernels",
            "native vs fallback kernels (n=20000 records, batch=1024 contexts)\n"
            f"  numpy fallback: {t_fallback * 1000:8.1f} ms\n"
            f"  native kernels: {t_native * 1000:8.1f} ms\n"
            f"  speedup       : {speedup:8.1f}x",
            metrics=metrics,
        )
        assert speedup >= 2.0, f"native kernels only {speedup:.1f}x over fallback"
    finally:
        set_kernel_backend("auto")


def test_append_vs_rebuild_index(emit):
    """Incremental mask-index append vs rebuilding the index from scratch.

    Pinned acceptance setting: appending 64 records to a 20k-record dataset
    must be >= 10x cheaper than the full-rebuild path (``with_records``
    re-validation plus a from-scratch index build over the extended
    dataset), and the appended index must be bit-identical to a freshly
    built one.  Both sides are end-to-end — each includes its own dataset
    extension — so the gate measures what a live service actually saves.
    """
    dataset = salary_reduced(n_records=20_000, seed=7)
    rng = np.random.default_rng(5)
    rows = []
    for i in map(int, rng.integers(0, len(dataset), size=64)):
        rec = {
            attr.name: attr.domain[int(dataset.codes(attr.name)[i])]
            for attr in dataset.schema.attributes
        }
        rec[dataset.schema.metric.name] = float(dataset.metric[i])
        rows.append(rec)

    appended = PredicateMaskIndex(dataset)
    extended = appended.append(rows)
    fresh = PredicateMaskIndex(extended)
    assert np.array_equal(appended.packed_matrix, fresh.packed_matrix)
    space = ContextSpace(dataset.schema)
    probe = [space.random_valid_context(rng).bits for _ in range(128)]
    assert (
        appended.population_sizes(probe).tolist()
        == fresh.population_sizes(probe).tolist()
    )

    def timed_append() -> float:
        index = PredicateMaskIndex(dataset)  # fresh base, outside the clock
        t0 = time.perf_counter()
        index.append(rows)
        return time.perf_counter() - t0

    t_append = min(timed_append() for _ in range(3))
    t_rebuild, _ = _best_of_three(
        lambda: PredicateMaskIndex(dataset.with_records(rows))
    )
    speedup = t_rebuild / t_append

    harness = load_harness()
    emit(
        "bench_append_incremental",
        "incremental append vs index rebuild (n=20000 records, 64 appended)\n"
        f"  full rebuild     : {t_rebuild * 1000:8.2f} ms\n"
        f"  incremental append: {t_append * 1000:8.2f} ms\n"
        f"  speedup          : {speedup:8.1f}x",
        metrics=[
            harness.metric(
                "append_ms", t_append * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric("rebuild_ms", t_rebuild * 1000.0, "ms"),
            harness.metric(
                "append_speedup", speedup, "x", direction="higher", tolerance=0.5
            ),
        ],
    )
    assert speedup >= 10.0, f"append only {speedup:.1f}x cheaper than rebuild"


def test_release_many_amortisation(emit):
    """release_many's shared profile store vs fresh-instance releases.

    Acceptance property (deliberately pinned, ignores ``PCOR_BENCH_SCALE``):
    a 20-record ``release_many`` performs strictly fewer uncached detector
    runs (``fm_evaluations``) than the same 20 releases on fresh ``PCOR``
    instances.  The inequality is over deterministic seeded counters, not
    wall-clock, so it cannot flake on a loaded runner.
    """
    dataset = salary_reduced(n_records=2_000, seed=7)
    detector = LOFDetector(**DETECTOR_KWARGS["lof"])
    sampler = BFSSampler(n_samples=25)

    probe = PCOR(dataset, detector, epsilon=0.2, sampler=sampler)
    record_ids = []
    for rid in map(int, dataset.ids):
        if probe.verifier.is_matching(dataset.record_bits(rid), rid):
            record_ids.append(rid)
        if len(record_ids) == 20:
            break
    assert len(record_ids) == 20, "dataset yielded too few exact-context outliers"

    t0 = time.perf_counter()
    batched = PCOR(dataset, detector, epsilon=0.2, sampler=sampler)
    batched.release_many(record_ids, seed=11)
    t_many = time.perf_counter() - t0
    amortised = batched.verifier.fm_evaluations

    t0 = time.perf_counter()
    fresh_total = 0
    for rid in record_ids:
        fresh = PCOR(dataset, detector, epsilon=0.2, sampler=sampler)
        fresh.release(rid, seed=11)
        fresh_total += fresh.verifier.fm_evaluations
    t_fresh = time.perf_counter() - t0

    harness = load_harness()
    emit(
        "bench_release_many_amortisation",
        "release_many vs fresh PCOR instances (n=2000, 20 records, BFS n_samples=25)\n"
        f"  fresh instances : {fresh_total:6d} uncached detector runs, {t_fresh:6.2f} s\n"
        f"  release_many    : {amortised:6d} uncached detector runs, {t_many:6.2f} s\n"
        f"  detector runs saved: {fresh_total - amortised} "
        f"({100.0 * (fresh_total - amortised) / max(1, fresh_total):.0f}%)",
        metrics=[
            # Deterministic seeded counters: zero machine noise, so the
            # tolerance can be tight — any move is a code change.
            harness.metric(
                "amortised_fm_evaluations", amortised, "count",
                direction="lower", tolerance=0.01,
            ),
            harness.metric(
                "fresh_fm_evaluations", fresh_total, "count",
                direction="lower", tolerance=0.01,
            ),
        ],
    )
    assert amortised < fresh_total


def test_exponential_mechanism_kernel(benchmark, bench_env):
    _, rng = bench_env
    mech = ExponentialMechanism(0.002)
    utilities = rng.uniform(0, 5000, size=4096)

    def select():
        return mech.select_index(utilities, rng)

    idx = benchmark(select)
    assert 0 <= idx < 4096


def test_bfs_release_warm_cache(benchmark, bench_env):
    """One full BFS release against a warmed verifier (amortised regime)."""
    workbench, rng = bench_env
    record_id = workbench.pick_outliers(1, 0)[0]
    start = starting_context_from_reference(workbench.reference, record_id, 0)
    pcor = PCOR(
        workbench.dataset,
        workbench.detector,
        epsilon=0.2,
        sampler=BFSSampler(n_samples=25),
        verifier=workbench.reference_verifier,  # fully warmed cache
    )

    counter = iter(range(10**9))

    def release():
        return pcor.release(record_id, starting_context=start, seed=next(counter))

    result = benchmark(release)
    assert result.context.is_structurally_valid

"""Figures 1-5 — the appendix utility / runtime histograms, ASCII edition.

Figure 1 reuses the Table 2/3 repetitions; Figures 4 and 5 reuse Tables 8/9
and 10/11 (the Workbench cache makes the reruns cheap); Figures 2 and 3 run
their own configurations (the paper's captions use eps = 0.1 there).
"""

from repro.experiments.figures import figure_1, figure_2, figure_3, figure_4, figure_5

from _helpers import run_once


def _check_panels(fig, expected_panels):
    assert len(fig.panels) == expected_panels
    for panel in fig.panels:
        assert panel.values, f"{panel.label}: empty series"
        counts, _ = panel.histogram(bins=10)
        assert counts.sum() == len(panel.values)


def test_figure_1(benchmark, scale, emit):
    fig = run_once(benchmark, lambda: figure_1(scale, seed=0))
    emit("figure_1", fig.render())
    _check_panels(fig, 8)  # 4 samplers x {utility, time}


def test_figure_2(benchmark, scale, emit):
    fig = run_once(benchmark, lambda: figure_2(scale, seed=0, epsilon=0.1))
    emit("figure_2", fig.render())
    _check_panels(fig, 4)  # DFS/BFS x {utility, time}


def test_figure_3(benchmark, scale, emit):
    fig = run_once(benchmark, lambda: figure_3(scale, seed=0, epsilon=0.1))
    emit("figure_3", fig.render())
    _check_panels(fig, 4)  # Grubbs/Histogram x {utility, time}


def test_figure_4(benchmark, scale, emit):
    fig = run_once(benchmark, lambda: figure_4(scale, seed=0))
    emit("figure_4", fig.render())
    _check_panels(fig, 8)  # 4 epsilons x {utility, time}


def test_figure_5(benchmark, scale, emit):
    fig = run_once(benchmark, lambda: figure_5(scale, seed=0))
    emit("figure_5", fig.render())
    _check_panels(fig, 8)  # 4 sample counts x {utility, time}

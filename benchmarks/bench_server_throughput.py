"""Serving overhead and throughput of the PCOR HTTP service.

Workload: the 20-record ``salary_reduced`` release set (LOF k=10, BFS at
the paper-default ``n_samples=50``), identical seeds everywhere.

Three measurements on in-process :class:`PCORServer` instances:

1. **Overhead gate** — one client issuing the workload sequentially over
   HTTP vs the same workload via direct ``engine.submit`` on a warmed
   engine.  Gate: the served path stays within 15% of direct submission
   (HTTP framing + JSON + tenant-ledger admission is all it may add; the
   in-memory ledger store keeps fsync out of this number).
2. **Concurrency report** — N concurrent clients hammering the server;
   reports p50/p95 latency and requests/s (informational, no gate: this
   container may have a single core).
3. **Coalescing gate** — 32 concurrent clients against two identically
   provisioned servers (thread backend, 4 workers), one direct
   (``max_batch = 1``) and one coalescing (``max_batch = 16``): the
   coalescer funnels concurrent HTTP releases through batched admission
   and one ``execute_many`` fan-out per flush.  Gate: **>= 1.3x req/s**,
   armed only on machines with >= 4 cores (a single-core box cannot fan
   anything out; the bench still runs and reports, like
   ``bench_parallel_scaling``).

Served releases are asserted bit-identical to direct submission before any
timing is trusted.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor
from statistics import quantiles

import pytest

from _helpers import load_harness
from repro.data.generators import salary_reduced
from repro.experiments.tables import DETECTOR_KWARGS
from repro.server import PCORClient, PCORServer, ServerConfig
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

ROUNDS = 5
N_CLIENTS = 4
N_RECORDS = 2_000

SPEC_BODY = dict(
    detector="lof",
    detector_kwargs=DETECTOR_KWARGS["lof"],
    sampler="bfs",
    n_samples=50,
    epsilon=0.2,
)


def _workload(scale):
    """(dataset, spec, record_ids) — smoke scale trims the record count."""
    n_releases = 6 if scale.name == "smoke" else 20
    dataset = salary_reduced(n_records=N_RECORDS, seed=7)
    spec = PipelineSpec(**SPEC_BODY)
    engine = ReleaseEngine(dataset)
    verifier = engine.verifier_for(spec.build_detector())
    record_ids = []
    for rid in map(int, dataset.ids):
        if verifier.is_matching(dataset.record_bits(rid), rid):
            record_ids.append(rid)
        if len(record_ids) == n_releases:
            break
    assert len(record_ids) == n_releases, "too few exact-context outliers"
    return dataset, engine, spec, record_ids


def test_server_throughput(emit, scale):
    dataset, engine, spec, record_ids = _workload(scale)

    config = ServerConfig.from_dict(
        {
            "server": {"port": 0},  # in-memory ledger: measure serving, not fsync
            "datasets": {
                "salary": {"source": "salary_reduced", "records": N_RECORDS, "seed": 7}
            },
        }
    )

    def run_direct() -> float:
        t0 = time.perf_counter()
        for i, rid in enumerate(record_ids):
            engine.submit(ReleaseRequest(record_id=rid, spec=spec, seed=100 + i))
        return time.perf_counter() - t0

    with PCORServer(config) as server:
        client = PCORClient(server.url, tenant="bench")

        def run_served() -> list:
            latencies = []
            for i, rid in enumerate(record_ids):
                t0 = time.perf_counter()
                client.release("salary", record_id=rid, spec=SPEC_BODY, seed=100 + i)
                latencies.append(time.perf_counter() - t0)
            return latencies

        # Correctness before speed: the served releases must be
        # bit-identical to direct submission for the same seeds.
        direct_bits = [
            engine.submit(
                ReleaseRequest(record_id=rid, spec=spec, seed=100 + i)
            ).context.bits
            for i, rid in enumerate(record_ids)
        ]
        served_bits = [
            client.release("salary", record_id=rid, spec=SPEC_BODY, seed=100 + i)[
                "result"
            ]["context"]["bits"]
            for i, rid in enumerate(record_ids)
        ]
        assert served_bits == direct_bits, "served releases are not bit-identical"

        # Both stores are now warm; timed rounds measure dispatch.
        t_direct = min(run_direct() for _ in range(ROUNDS))
        served_rounds = [run_served() for _ in range(ROUNDS)]
        t_served = min(sum(r) for r in served_rounds)
        overhead = t_served / t_direct - 1.0

        # Concurrent clients (informational): each worker runs the whole
        # workload under its own tenant.
        def client_run(worker: int) -> list:
            tenant = PCORClient(server.url, tenant=f"bench-{worker}")
            latencies = []
            for i, rid in enumerate(record_ids):
                t0 = time.perf_counter()
                tenant.release("salary", record_id=rid, spec=SPEC_BODY, seed=100 + i)
                latencies.append(time.perf_counter() - t0)
            return latencies

        t0 = time.perf_counter()
        with ThreadPoolExecutor(N_CLIENTS) as pool:
            all_latencies = [
                lat for run in pool.map(client_run, range(N_CLIENTS)) for lat in run
            ]
        wall = time.perf_counter() - t0

    n_total = len(all_latencies)
    p50, p95 = quantiles(all_latencies, n=100)[49], quantiles(all_latencies, n=100)[94]
    harness = load_harness()
    emit(
        "bench_server_throughput",
        "PCOR HTTP service vs direct engine.submit "
        f"(salary_reduced n={N_RECORDS}, {len(record_ids)} records, LOF k=10, "
        "BFS n_samples=50, warmed)\n"
        f"  direct submit loop  : {t_direct * 1000:8.1f} ms (best of {ROUNDS})\n"
        f"  served loop (1 cli) : {t_served * 1000:8.1f} ms (best of {ROUNDS})\n"
        f"  serving overhead    : {overhead * 100:+8.2f}%  (gate: < 15%)\n"
        f"  {N_CLIENTS} concurrent clients: {n_total} releases in {wall:.2f} s "
        f"= {n_total / wall:6.1f} req/s\n"
        f"  latency p50 / p95   : {p50 * 1000:7.1f} / {p95 * 1000:7.1f} ms",
        metrics=[
            harness.metric(
                "direct_loop_ms", t_direct * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric(
                "served_loop_ms", t_served * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric("serving_overhead_frac", overhead, "fraction"),
            harness.metric(
                "concurrent_rps", n_total / wall, "req/s",
                direction="higher", tolerance=0.5,
            ),
            harness.metric("concurrent_p95_ms", p95 * 1000.0, "ms"),
        ],
    )
    assert overhead < 0.15, (
        f"HTTP serving adds {overhead * 100:.2f}% over direct engine.submit "
        "(gate: < 15%)"
    )
    engine.close()


# --------------------------------------------------------------------------
# Coalesced vs unbatched serving
# --------------------------------------------------------------------------

COALESCE_GATE = 1.3
COALESCE_WORKERS = 4
COALESCE_MAX_BATCH = 16

#: (n_clients, releases_per_client) per bench scale.
COALESCE_LOAD = {
    "smoke": (8, 2),
    "small": (32, 4),
    "medium": (32, 8),
    "paper": (32, 16),
}


def _dataset_body(max_batch: int) -> dict:
    body = {
        "source": "salary_reduced",
        "records": N_RECORDS,
        "seed": 7,
        # The point of coalescing: a flush runs through execute_many on
        # the engine's parallel backend, so batched HTTP traffic finally
        # reaches the runtime fan-out that single requests cannot.
        "backend": "thread",
        "workers": COALESCE_WORKERS,
    }
    if max_batch > 1:
        body["max_batch"] = max_batch
        body["max_delay_ms"] = 5.0
    return body


def _hammer(server_url, n_clients, per_client, record_ids):
    """n_clients concurrent keep-alive clients, per_client releases each;
    returns (wall_seconds, latencies)."""

    def client_run(worker: int) -> list:
        client = PCORClient(server_url, tenant=f"bench-{worker}")
        latencies = []
        try:
            for i in range(per_client):
                rid = record_ids[(worker + i) % len(record_ids)]
                t0 = time.perf_counter()
                client.release(
                    "salary",
                    record_id=rid,
                    spec=SPEC_BODY,
                    seed=worker * 1_000 + i,
                )
                latencies.append(time.perf_counter() - t0)
        finally:
            client.close()
        return latencies

    t0 = time.perf_counter()
    with ThreadPoolExecutor(n_clients) as pool:
        latencies = [
            lat for run in pool.map(client_run, range(n_clients)) for lat in run
        ]
    return time.perf_counter() - t0, latencies


def test_coalesced_vs_unbatched_throughput(emit):
    scale = os.environ.get("PCOR_BENCH_SCALE", "small")
    n_clients, per_client = COALESCE_LOAD.get(scale, COALESCE_LOAD["small"])
    _, engine, _, record_ids = _workload_for_coalescing()
    engine.close()

    stats = {}
    for mode, max_batch in (("unbatched", 1), ("coalesced", COALESCE_MAX_BATCH)):
        config = ServerConfig.from_dict(
            {
                "server": {"port": 0},  # in-memory ledger on both sides
                "datasets": {"salary": _dataset_body(max_batch)},
            }
        )
        with PCORServer(config) as server:
            # Warm profiles/spec caches outside the timed region; both
            # servers get the identical warm-up.
            PCORClient(server.url, tenant="warmup").release_many(
                "salary",
                record_ids,
                SPEC_BODY,
                seeds=list(range(len(record_ids))),
                concurrency=4,
            )
            wall, latencies = _hammer(
                server.url, n_clients, per_client, record_ids
            )
            metrics = PCORClient(server.url, tenant="warmup").metrics()[
                "datasets"
            ]["salary"]
        pcts = quantiles(latencies, n=100)
        flushes = metrics.get("batch_flushes") or 0
        stats[mode] = {
            "rps": len(latencies) / wall,
            "wall": wall,
            "n": len(latencies),
            "p50": pcts[49],
            "p95": pcts[94],
            "p99": pcts[98],
            "mean_flush": (
                metrics["batch_requests"] / flushes if flushes else 1.0
            ),
        }

    ratio = stats["coalesced"]["rps"] / stats["unbatched"]["rps"]
    cores = os.cpu_count() or 1
    gated = cores >= COALESCE_WORKERS

    def line(mode):
        s = stats[mode]
        return (
            f"  {mode:10s}: {s['n']:4d} releases in {s['wall']:6.2f} s "
            f"= {s['rps']:7.1f} req/s | p50/p95/p99 "
            f"{s['p50'] * 1000:6.1f}/{s['p95'] * 1000:6.1f}/"
            f"{s['p99'] * 1000:6.1f} ms | mean flush {s['mean_flush']:5.2f}"
        )

    harness = load_harness()
    emit(
        "bench_server_coalescing",
        f"coalesced vs unbatched serving ({n_clients} concurrent clients x "
        f"{per_client} releases, salary_reduced n={N_RECORDS}, LOF k=10, "
        f"BFS n_samples=50, thread backend x{COALESCE_WORKERS}, "
        f"max_batch={COALESCE_MAX_BATCH}, warmed)\n"
        + line("unbatched")
        + "\n"
        + line("coalesced")
        + "\n"
        f"  speedup   : {ratio:6.2f}x req/s "
        f"(gate: >= {COALESCE_GATE:.1f}x on >= {COALESCE_WORKERS} cores; "
        f"this machine: {cores} core{'s' if cores != 1 else ''}, "
        f"gate {'ARMED' if gated else 'skipped'})",
        metrics=[
            harness.metric(
                "unbatched_rps", stats["unbatched"]["rps"], "req/s",
                direction="higher", tolerance=0.5,
            ),
            harness.metric(
                "coalesced_rps", stats["coalesced"]["rps"], "req/s",
                direction="higher", tolerance=0.5,
            ),
            harness.metric("coalescing_speedup", ratio, "x"),
            harness.metric(
                "mean_flush_size", stats["coalesced"]["mean_flush"], "requests"
            ),
        ],
    )
    assert stats["coalesced"]["mean_flush"] > 1.0, (
        "coalescing server never batched anything "
        f"(mean flush {stats['coalesced']['mean_flush']:.2f})"
    )
    if gated:
        assert ratio >= COALESCE_GATE, (
            f"coalesced serving achieved only {ratio:.2f}x the unbatched "
            f"req/s at {n_clients} clients (gate: >= {COALESCE_GATE:.1f}x)"
        )
    else:
        pytest.skip(
            f"req/s gate needs >= {COALESCE_WORKERS} cores, machine has "
            f"{cores}; measured {ratio:.2f}x with mean flush "
            f"{stats['coalesced']['mean_flush']:.2f}"
        )


def _workload_for_coalescing():
    """The standard workload at a fixed record count (gate comparability:
    both servers release the same records regardless of scale)."""

    class _FixedScale:
        name = "bench"

    return _workload(_FixedScale())

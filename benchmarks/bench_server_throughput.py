"""Serving overhead and throughput of the PCOR HTTP service.

Workload: the 20-record ``salary_reduced`` release set (LOF k=10, BFS at
the paper-default ``n_samples=50``), identical seeds everywhere.

Two measurements on an in-process :class:`PCORServer`:

1. **Overhead gate** — one client issuing the workload sequentially over
   HTTP vs the same workload via direct ``engine.submit`` on a warmed
   engine.  Gate: the served path stays within 15% of direct submission
   (HTTP framing + JSON + tenant-ledger admission is all it may add; the
   in-memory ledger store keeps fsync out of this number).
2. **Concurrency report** — N concurrent clients hammering the server;
   reports p50/p95 latency and requests/s (informational, no gate: this
   container may have a single core).

Served releases are asserted bit-identical to direct submission before any
timing is trusted.
"""

import time
from concurrent.futures import ThreadPoolExecutor
from statistics import quantiles

from repro.data.generators import salary_reduced
from repro.experiments.tables import DETECTOR_KWARGS
from repro.server import PCORClient, PCORServer, ServerConfig
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

ROUNDS = 5
N_CLIENTS = 4
N_RECORDS = 2_000

SPEC_BODY = dict(
    detector="lof",
    detector_kwargs=DETECTOR_KWARGS["lof"],
    sampler="bfs",
    n_samples=50,
    epsilon=0.2,
)


def _workload(scale):
    """(dataset, spec, record_ids) — smoke scale trims the record count."""
    n_releases = 6 if scale.name == "smoke" else 20
    dataset = salary_reduced(n_records=N_RECORDS, seed=7)
    spec = PipelineSpec(**SPEC_BODY)
    engine = ReleaseEngine(dataset)
    verifier = engine.verifier_for(spec.build_detector())
    record_ids = []
    for rid in map(int, dataset.ids):
        if verifier.is_matching(dataset.record_bits(rid), rid):
            record_ids.append(rid)
        if len(record_ids) == n_releases:
            break
    assert len(record_ids) == n_releases, "too few exact-context outliers"
    return dataset, engine, spec, record_ids


def test_server_throughput(emit, scale):
    dataset, engine, spec, record_ids = _workload(scale)

    config = ServerConfig.from_dict(
        {
            "server": {"port": 0},  # in-memory ledger: measure serving, not fsync
            "datasets": {
                "salary": {"source": "salary_reduced", "records": N_RECORDS, "seed": 7}
            },
        }
    )

    def run_direct() -> float:
        t0 = time.perf_counter()
        for i, rid in enumerate(record_ids):
            engine.submit(ReleaseRequest(record_id=rid, spec=spec, seed=100 + i))
        return time.perf_counter() - t0

    with PCORServer(config) as server:
        client = PCORClient(server.url, tenant="bench")

        def run_served() -> list:
            latencies = []
            for i, rid in enumerate(record_ids):
                t0 = time.perf_counter()
                client.release("salary", record_id=rid, spec=SPEC_BODY, seed=100 + i)
                latencies.append(time.perf_counter() - t0)
            return latencies

        # Correctness before speed: the served releases must be
        # bit-identical to direct submission for the same seeds.
        direct_bits = [
            engine.submit(
                ReleaseRequest(record_id=rid, spec=spec, seed=100 + i)
            ).context.bits
            for i, rid in enumerate(record_ids)
        ]
        served_bits = [
            client.release("salary", record_id=rid, spec=SPEC_BODY, seed=100 + i)[
                "result"
            ]["context"]["bits"]
            for i, rid in enumerate(record_ids)
        ]
        assert served_bits == direct_bits, "served releases are not bit-identical"

        # Both stores are now warm; timed rounds measure dispatch.
        t_direct = min(run_direct() for _ in range(ROUNDS))
        served_rounds = [run_served() for _ in range(ROUNDS)]
        t_served = min(sum(r) for r in served_rounds)
        overhead = t_served / t_direct - 1.0

        # Concurrent clients (informational): each worker runs the whole
        # workload under its own tenant.
        def client_run(worker: int) -> list:
            tenant = PCORClient(server.url, tenant=f"bench-{worker}")
            latencies = []
            for i, rid in enumerate(record_ids):
                t0 = time.perf_counter()
                tenant.release("salary", record_id=rid, spec=SPEC_BODY, seed=100 + i)
                latencies.append(time.perf_counter() - t0)
            return latencies

        t0 = time.perf_counter()
        with ThreadPoolExecutor(N_CLIENTS) as pool:
            all_latencies = [
                lat for run in pool.map(client_run, range(N_CLIENTS)) for lat in run
            ]
        wall = time.perf_counter() - t0

    n_total = len(all_latencies)
    p50, p95 = quantiles(all_latencies, n=100)[49], quantiles(all_latencies, n=100)[94]
    emit(
        "bench_server_throughput",
        "PCOR HTTP service vs direct engine.submit "
        f"(salary_reduced n={N_RECORDS}, {len(record_ids)} records, LOF k=10, "
        "BFS n_samples=50, warmed)\n"
        f"  direct submit loop  : {t_direct * 1000:8.1f} ms (best of {ROUNDS})\n"
        f"  served loop (1 cli) : {t_served * 1000:8.1f} ms (best of {ROUNDS})\n"
        f"  serving overhead    : {overhead * 100:+8.2f}%  (gate: < 15%)\n"
        f"  {N_CLIENTS} concurrent clients: {n_total} releases in {wall:.2f} s "
        f"= {n_total / wall:6.1f} req/s\n"
        f"  latency p50 / p95   : {p50 * 1000:7.1f} / {p95 * 1000:7.1f} ms",
    )
    assert overhead < 0.15, (
        f"HTTP serving adds {overhead * 100:.2f}% over direct engine.submit "
        "(gate: < 15%)"
    )
    engine.close()

"""Tables 2 & 3 — sampling-method comparison (Section 6.3).

Regenerates both tables in one experiment run: Uniform / RandomWalk / DFS /
BFS with LOF, population-size utility, eps = 0.2.

Paper shapes to check against (51k records, 200 reps):
  performance:  Uniform 97m avg >> DFS 40m ~ BFS 37m >> RandomWalk 51s
  utility:      BFS 0.90 >= DFS 0.88 >> Uniform 0.65 > RandomWalk 0.57
At laptop scale the performance ordering reproduces cleanly (uniform pays
the 2^t rejection cost, the walk is the cheapest); the utility separation
compresses because population gaps — the search's steering signal — shrink
with dataset size.  See EXPERIMENTS.md.
"""

from repro.experiments.tables import table_2_3

from _helpers import run_once


def test_tables_2_and_3(benchmark, scale, emit):
    perf, util = run_once(benchmark, lambda: table_2_3(scale, seed=0))
    emit("table_2", perf.render())
    emit("table_3", util.render())

    # Structural shape assertions (scale-stable, see module docstring).
    fm = {label: s.mean_fm_evaluations() for label, s in perf.summaries.items()}
    assert fm["Uniform"] > fm["BFS"], "uniform must pay the rejection cost"
    assert fm["Uniform"] > fm["Random Walk"] * 3, "uniform >> random walk in f_M runs"
    assert fm["Random Walk"] < fm["DFS"], "the walk is the cheapest directed sampler"

    for label, summary in util.summaries.items():
        mean = summary.utility_summary().mean
        assert 0.0 <= mean <= 1.0 + 1e-9, f"{label} utility ratio out of range"

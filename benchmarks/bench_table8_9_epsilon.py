"""Tables 8 & 9 — privacy / utility / performance trade-off (Section 6.6).

BFS + LOF, eps in {0.05, 0.1, 0.2, 0.4}, n = 50.  Paper shapes: utility
climbs 0.67 -> 0.82 -> 0.90 and saturates near eps = 0.2 (0.92 at 0.4),
while runtime is essentially flat in eps.
"""

from repro.experiments.tables import table_8_9

from _helpers import run_once


def test_tables_8_and_9(benchmark, scale, emit):
    perf, util = run_once(benchmark, lambda: table_8_9(scale, seed=0))
    emit("table_8", perf.render())
    emit("table_9", util.render())

    means = [
        (float(label), s.utility_summary().mean)
        for label, s in util.summaries.items()
    ]
    means.sort()
    # Utility at the largest epsilon should not be below the smallest; the
    # trend is upward with saturation (allow noise in the middle).
    assert means[-1][1] >= means[0][1] - 0.05, (
        f"utility should improve with epsilon: {means}"
    )

    # Runtime is epsilon-independent: same search size regardless of eps.
    fm = [s.mean_fm_evaluations() for s in perf.summaries.values()]
    assert max(fm) < min(fm) * 2.5, f"f_M runs should be roughly flat in eps: {fm}"

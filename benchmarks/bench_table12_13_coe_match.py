"""Tables 12 & 13 — COE match under group privacy (Section 6.7, objective i).

For each detector and each Delta-D in {1, 5, 10, 25}, measure how similar
``COE_M(D, V)`` stays when Delta-D records are removed.

Paper shapes: match degrades as Delta-D grows; Histogram degrades the
hardest (58.8% at Delta-D = 25 on salary); Grubbs stays the most stable on
the homicide data.  Absolute levels depend on dataset size (the paper notes
its own reduced datasets "do not benefit" the match), so at laptop scale
expect the same ordering at lower percentages.
"""

from repro.experiments.coe_match import table_12, table_13

from _helpers import run_once


def _match_fractions(table):
    """Parse '93.1%' cells back to floats per detector."""
    return {
        row[0]: [float(cell.rstrip("%")) / 100.0 for cell in row[1:]]
        for row in table.rows
    }


def test_table_12_salary(benchmark, scale, emit):
    table = run_once(benchmark, lambda: table_12(scale, seed=0))
    emit("table_12", table.render())
    fractions = _match_fractions(table)
    for detector, values in fractions.items():
        assert all(0.0 <= v <= 1.0 for v in values)
        # Core shape: dD = 1 matches at least as well as dD = 25.
        assert values[0] >= values[-1] - 0.05, f"{detector}: {values}"


def test_table_13_homicide(benchmark, scale, emit):
    table = run_once(benchmark, lambda: table_13(scale, seed=0))
    emit("table_13", table.render())
    fractions = _match_fractions(table)
    for detector, values in fractions.items():
        assert all(0.0 <= v <= 1.0 for v in values)
        assert values[0] >= values[-1] - 0.05, f"{detector}: {values}"

"""Proxy overhead of the sharded-serving router (``src/repro/cluster/``).

Workload: the standard ``salary_reduced`` release set (LOF k=10, BFS at
``n_samples=50``), identical seeds on both sides:

* **direct** — one client against a single in-process :class:`PCORServer`
  hosting the dataset (the pre-cluster deployment).
* **routed** — the same client workload against a :class:`PCORRouter`
  over a 2-worker in-process fleet (``manager = "thread"``: real HTTP on
  both hops, no subprocess spawn noise in the timings).

The router adds one loopback HTTP hop (keep-alive, byte passthrough) per
release.  Gate: **routed p50 latency within 15% of direct p50** — the
proxy must stay a framing cost, never a second serving tier.  Releases
are asserted bit-identical across the two paths (modulo the wall-clock
field) before any timing is trusted.

In-memory ledgers on both sides: this measures proxying, not fsync.
"""

import time
from statistics import median

from repro.cluster import PCORRouter
from repro.data.generators import salary_reduced
from repro.experiments.tables import DETECTOR_KWARGS
from repro.server import PCORClient, PCORServer, ServerConfig
from repro.service import PipelineSpec, ReleaseEngine

ROUNDS = 5
N_RECORDS = 2_000
OVERHEAD_GATE = 0.15

SPEC_BODY = dict(
    detector="lof",
    detector_kwargs=DETECTOR_KWARGS["lof"],
    sampler="bfs",
    n_samples=50,
    epsilon=0.2,
)

DATASET_BODY = {"source": "salary_reduced", "records": N_RECORDS, "seed": 7}


def _record_ids(scale) -> list:
    n_releases = 6 if scale.name == "smoke" else 16
    dataset = salary_reduced(n_records=N_RECORDS, seed=7)
    spec = PipelineSpec(**SPEC_BODY)
    engine = ReleaseEngine(dataset)
    verifier = engine.verifier_for(spec.build_detector())
    record_ids = []
    for rid in map(int, dataset.ids):
        if verifier.is_matching(dataset.record_bits(rid), rid):
            record_ids.append(rid)
        if len(record_ids) == n_releases:
            break
    engine.close()
    assert len(record_ids) == n_releases, "too few exact-context outliers"
    return record_ids


def _run(url: str, record_ids: list) -> list:
    """One sequential pass over the workload; per-release latencies."""
    client = PCORClient(url, tenant="bench")
    latencies = []
    try:
        for i, rid in enumerate(record_ids):
            t0 = time.perf_counter()
            client.release("salary", record_id=rid, spec=SPEC_BODY, seed=100 + i)
            latencies.append(time.perf_counter() - t0)
    finally:
        client.close()
    return latencies


def _strip_timing(result: dict) -> dict:
    out = dict(result)
    out.pop("wall_time_s", None)
    return out


def test_router_proxy_overhead(emit, scale):
    record_ids = _record_ids(scale)

    direct_config = ServerConfig.from_dict(
        {"server": {"port": 0}, "datasets": {"salary": DATASET_BODY}}
    )
    routed_config = ServerConfig.from_dict(
        {
            "server": {"port": 0},
            "datasets": {"salary": DATASET_BODY},
            "cluster": {
                "workers": 2,
                "manager": "thread",
                "heartbeat_interval_s": 0.5,
                "heartbeat_timeout_s": 2.0,
            },
        }
    )

    with PCORServer(direct_config) as server, PCORRouter(routed_config) as router:
        # Correctness before speed: routed releases must be bit-identical
        # to direct serving for the same seeds (wall clock excluded).
        for i, rid in enumerate(record_ids[:3]):
            direct_result = PCORClient(server.url, tenant=f"id-{i}").release(
                "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
            )["result"]
            routed_result = PCORClient(router.url, tenant=f"id-{i}").release(
                "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
            )["result"]
            assert _strip_timing(routed_result) == _strip_timing(direct_result)

        # Both engines are now warm; interleave rounds so drift (thermal,
        # scheduler) hits both paths equally.
        direct_lat, routed_lat = [], []
        for _ in range(ROUNDS):
            direct_lat.extend(_run(server.url, record_ids))
            routed_lat.extend(_run(router.url, record_ids))

    p50_direct = median(direct_lat)
    p50_routed = median(routed_lat)
    overhead = p50_routed / p50_direct - 1.0
    hop_ms = (p50_routed - p50_direct) * 1000.0

    emit(
        "bench_router_overhead",
        "router proxy vs direct serving "
        f"(salary_reduced n={N_RECORDS}, {len(record_ids)} records x "
        f"{ROUNDS} rounds, LOF k=10, BFS n_samples=50, 2-worker thread "
        "fleet, warmed)\n"
        f"  direct p50 latency  : {p50_direct * 1000:8.2f} ms\n"
        f"  routed p50 latency  : {p50_routed * 1000:8.2f} ms\n"
        f"  proxy hop           : {hop_ms:+8.2f} ms\n"
        f"  p50 overhead        : {overhead * 100:+8.2f}%  "
        f"(gate: < {OVERHEAD_GATE * 100:.0f}%)",
    )
    assert overhead < OVERHEAD_GATE, (
        f"router adds {overhead * 100:.2f}% p50 latency over direct serving "
        f"(gate: < {OVERHEAD_GATE * 100:.0f}%)"
    )

"""Proxy overhead of the sharded-serving router (``src/repro/cluster/``).

Workload: the standard ``salary_reduced`` release set (LOF k=10, BFS at
``n_samples=50``), identical seeds on both sides:

* **direct** — one client against a single in-process :class:`PCORServer`
  hosting the dataset (the pre-cluster deployment).
* **routed** — the same client workload against a :class:`PCORRouter`
  over a 2-worker in-process fleet (``manager = "thread"``: real HTTP on
  both hops, no subprocess spawn noise in the timings).

The router adds one loopback HTTP hop (keep-alive, byte passthrough) per
release.  Gate: **routed p50 latency within 15% of direct p50** — the
proxy must stay a framing cost, never a second serving tier.  Releases
are asserted bit-identical across the two paths (modulo the wall-clock
field) before any timing is trusted.

In-memory ledgers on both sides: this measures proxying, not fsync.
"""

import time
from statistics import median

from _helpers import (
    SERVING_N_RECORDS,
    load_harness,
    serving_dataset_body,
    serving_record_ids,
    serving_spec_body,
    strip_timing,
)
from repro.cluster import PCORRouter
from repro.server import PCORClient, PCORServer, ServerConfig

ROUNDS = 5
OVERHEAD_GATE = 0.15

SPEC_BODY = serving_spec_body()


def _run(url: str, record_ids: list) -> list:
    """One sequential pass over the workload; per-release latencies."""
    client = PCORClient(url, tenant="bench")
    latencies = []
    try:
        for i, rid in enumerate(record_ids):
            t0 = time.perf_counter()
            client.release("salary", record_id=rid, spec=SPEC_BODY, seed=100 + i)
            latencies.append(time.perf_counter() - t0)
    finally:
        client.close()
    return latencies


def test_router_proxy_overhead(emit, scale):
    record_ids = serving_record_ids(6 if scale.name == "smoke" else 16)

    direct_config = ServerConfig.from_dict(
        {"server": {"port": 0}, "datasets": {"salary": serving_dataset_body()}}
    )
    routed_config = ServerConfig.from_dict(
        {
            "server": {"port": 0},
            "datasets": {"salary": serving_dataset_body()},
            "cluster": {
                "workers": 2,
                "manager": "thread",
                "heartbeat_interval_s": 0.5,
                "heartbeat_timeout_s": 2.0,
            },
        }
    )

    with PCORServer(direct_config) as server, PCORRouter(routed_config) as router:
        # Correctness before speed: routed releases must be bit-identical
        # to direct serving for the same seeds (wall clock excluded).
        for i, rid in enumerate(record_ids[:3]):
            direct_result = PCORClient(server.url, tenant=f"id-{i}").release(
                "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
            )["result"]
            routed_result = PCORClient(router.url, tenant=f"id-{i}").release(
                "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
            )["result"]
            assert strip_timing(routed_result) == strip_timing(direct_result)

        # Both engines are now warm; interleave rounds so drift (thermal,
        # scheduler) hits both paths equally.
        direct_lat, routed_lat = [], []
        for _ in range(ROUNDS):
            direct_lat.extend(_run(server.url, record_ids))
            routed_lat.extend(_run(router.url, record_ids))

    p50_direct = median(direct_lat)
    p50_routed = median(routed_lat)
    overhead = p50_routed / p50_direct - 1.0
    hop_ms = (p50_routed - p50_direct) * 1000.0

    harness = load_harness()
    emit(
        "bench_router_overhead",
        "router proxy vs direct serving "
        f"(salary_reduced n={SERVING_N_RECORDS}, {len(record_ids)} records x "
        f"{ROUNDS} rounds, LOF k=10, BFS n_samples=50, 2-worker thread "
        "fleet, warmed)\n"
        f"  direct p50 latency  : {p50_direct * 1000:8.2f} ms\n"
        f"  routed p50 latency  : {p50_routed * 1000:8.2f} ms\n"
        f"  proxy hop           : {hop_ms:+8.2f} ms\n"
        f"  p50 overhead        : {overhead * 100:+8.2f}%  "
        f"(gate: < {OVERHEAD_GATE * 100:.0f}%)",
        metrics=[
            harness.metric(
                "direct_p50_ms", p50_direct * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric(
                "routed_p50_ms", p50_routed * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric("proxy_hop_ms", hop_ms, "ms"),
            harness.metric("p50_overhead_frac", overhead, "fraction"),
        ],
    )
    assert overhead < OVERHEAD_GATE, (
        f"router adds {overhead * 100:.2f}% p50 latency over direct serving "
        f"(gate: < {OVERHEAD_GATE * 100:.0f}%)"
    )

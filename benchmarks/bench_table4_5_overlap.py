"""Tables 4 & 5 — the overlap-with-starting-context utility (Section 6.4).

DFS vs BFS under u = |D_C intersect D_C_V|, LOF, eps = 0.2.  Paper shapes:
both runtimes roughly halve relative to Tables 2/3 (the overlap search stays
near C_V), and BFS's utility (0.97) beats DFS's (0.88).
"""

from repro.experiments.tables import table_4_5

from _helpers import run_once


def test_tables_4_and_5(benchmark, scale, emit):
    perf, util = run_once(benchmark, lambda: table_4_5(scale, seed=0))
    emit("table_4", perf.render())
    emit("table_5", util.render())

    means = {label: s.utility_summary().mean for label, s in util.summaries.items()}
    for label, mean in means.items():
        assert 0.0 <= mean <= 1.0 + 1e-9, f"{label} overlap ratio out of range"
    # The overlap utility is maximised near the starting context, so both
    # directed searches should land clearly above half of the maximum.
    assert means["BFS"] > 0.5
    assert means["DFS"] > 0.5

"""Parallel scaling of ``release_many``: process backend vs serial.

The acceptance gate: at 4 process workers the ``release_many`` workload
must run **>= 2x faster** than serial.  The pool is spawned (and the
dataset exported to shared memory) *before* the timed region — in
production the engine is long-lived and pays that cost once at service
start — but profile caches are cold on both sides: the parallelism exists
precisely to hide cold detector runs.  The gate only arms on machines with
at least 4 CPU cores; on smaller boxes the bench still runs, verifies
bit-identical results, and reports the (necessarily <= 1x) ratio for the
record.

Scale via ``PCOR_BENCH_SCALE``: smoke | small (default) | medium | paper.
"""

import os
import time

import pytest

from _helpers import load_harness
from repro.core.sampling import BFSSampler
from repro.data.generators import salary_reduced
from repro.data.masks import PredicateMaskIndex
from repro.experiments.tables import DETECTOR_KWARGS
from repro.outliers import LOFDetector
from repro.runtime import ProcessBackend, SerialBackend
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

WORKERS = 4
SPEEDUP_GATE = 2.0

#: (n_records, n_released_records, n_samples) per bench scale.  Even smoke
#: stays meaty enough that per-task overhead cannot dominate the ratio the
#: gate measures.
WORKLOADS = {
    "smoke": (2_000, 16, 32),
    "small": (2_000, 24, 40),
    "medium": (4_000, 32, 50),
    "paper": (8_000, 48, 50),
}


def test_release_many_parallel_scaling(emit):
    scale = os.environ.get("PCOR_BENCH_SCALE", "small")
    n_records, n_released, n_samples = WORKLOADS.get(scale, WORKLOADS["small"])

    dataset = salary_reduced(n_records=n_records, seed=7)
    masks = PredicateMaskIndex(dataset)
    detector = LOFDetector(**DETECTOR_KWARGS["lof"])
    spec = PipelineSpec(
        detector="lof",
        detector_kwargs=DETECTOR_KWARGS["lof"],
        sampler="bfs",
        n_samples=n_samples,
        epsilon=0.2,
    )

    # Exact-context outliers found with a scratch verifier whose cache is
    # NOT shared with the timed engines (both sides must start cold).
    from repro.core.verification import OutlierVerifier

    scratch = OutlierVerifier(dataset, detector, mask_index=masks)
    record_ids = []
    for rid in map(int, dataset.ids):
        if scratch.is_matching(dataset.record_bits(rid), rid):
            record_ids.append(rid)
        if len(record_ids) == n_released:
            break
    assert len(record_ids) >= 8, "dataset yielded too few exact-context outliers"

    def run(backend):
        """One cold release_many round; returns (seconds, bits)."""
        engine = ReleaseEngine(dataset, mask_index=masks, backend=backend)
        t0 = time.perf_counter()
        results = engine.submit_many(
            [
                ReleaseRequest(record_id=rid, spec=spec, seed=1000 + i)
                for i, rid in enumerate(record_ids)
            ]
        )
        elapsed = time.perf_counter() - t0
        engine.close()
        return elapsed, [r.context.bits for r in results]

    ROUNDS = 2  # best-of, every round fully cold (fresh stores, fresh pool)
    serial_times, process_times = [], []
    bits_serial = bits_process = None
    for _ in range(ROUNDS):
        t, bits_serial = run(SerialBackend())
        serial_times.append(t)
        process = ProcessBackend(workers=WORKERS)
        # Spawn the pool and export the dataset outside the timed region (a
        # long-lived engine pays this once); worker profile caches are cold.
        process.bind(dataset, masks)
        t, bits_process = run(process)
        process.close()
        process_times.append(t)
        # The point of the runtime: parallelism never changes a release.
        assert bits_process == bits_serial, "process backend diverged from serial"

    t_serial = min(serial_times)
    t_process = min(process_times)
    speedup = t_serial / t_process
    cores = os.cpu_count() or 1
    gated = cores >= WORKERS
    harness = load_harness()
    emit(
        "bench_parallel_scaling",
        f"release_many parallel scaling (salary_reduced n={n_records}, "
        f"{len(record_ids)} records, LOF k=10, BFS n_samples={n_samples}, "
        "cold caches, pool pre-spawned)\n"
        f"  serial backend       : {t_serial * 1000:8.1f} ms\n"
        f"  process backend (x{WORKERS}) : {t_process * 1000:8.1f} ms\n"
        f"  speedup              : {speedup:8.2f}x "
        f"(gate: >= {SPEEDUP_GATE:.1f}x on >= {WORKERS} cores; "
        f"this machine: {cores} core{'s' if cores != 1 else ''}, "
        f"gate {'ARMED' if gated else 'skipped'})\n"
        f"  bit-identical        : yes ({len(record_ids)} releases compared)",
        metrics=[
            harness.metric(
                "serial_ms", t_serial * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric("process_ms", t_process * 1000.0, "ms"),
            # Speedup on a small box is cores-bound, not code-bound; the
            # env fingerprint (cpus) is what makes this row comparable.
            harness.metric("parallel_speedup", speedup, "x"),
        ],
    )
    if gated:
        assert speedup >= SPEEDUP_GATE, (
            f"process backend at {WORKERS} workers achieved only "
            f"{speedup:.2f}x over serial (gate: >= {SPEEDUP_GATE:.1f}x)"
        )
    else:
        pytest.skip(
            f"speedup gate needs >= {WORKERS} cores, machine has {cores}; "
            f"measured {speedup:.2f}x (results verified bit-identical)"
        )

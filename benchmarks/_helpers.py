"""Helpers shared by the benchmark modules.

Besides ``run_once``, this is where the serving benches keep their common
boilerplate — one workload definition (spec body, dataset body, record
picking), one timing-hygiene toolkit (``strip_timing``,
``median_paired_diff_ms``) — so the obs/router/throughput benches measure
the *same* workload and can't drift apart spec by spec.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path
from statistics import median
from typing import List, Optional, Sequence

_BENCH_DIR = Path(__file__).resolve().parent

#: Records in the shared serving dataset.
SERVING_N_RECORDS = 2_000

#: The paper-default serving release: LOF k=10, BFS at n_samples=50.
#: Built lazily (repro imports are heavy) and copied per caller.


def serving_spec_body() -> dict:
    from repro.experiments.tables import DETECTOR_KWARGS

    return dict(
        detector="lof",
        detector_kwargs=DETECTOR_KWARGS["lof"],
        sampler="bfs",
        n_samples=50,
        epsilon=0.2,
    )


def serving_dataset_body() -> dict:
    return {"source": "salary_reduced", "records": SERVING_N_RECORDS, "seed": 7}


def serving_record_ids(n_releases: int) -> List[int]:
    """The first ``n_releases`` exact-context outliers of the shared
    serving dataset (seed 7), found with a scratch engine."""
    from repro.data.generators import salary_reduced
    from repro.service import PipelineSpec, ReleaseEngine

    dataset = salary_reduced(n_records=SERVING_N_RECORDS, seed=7)
    spec = PipelineSpec(**serving_spec_body())
    engine = ReleaseEngine(dataset)
    verifier = engine.verifier_for(spec.build_detector())
    record_ids: List[int] = []
    for rid in map(int, dataset.ids):
        if verifier.is_matching(dataset.record_bits(rid), rid):
            record_ids.append(rid)
        if len(record_ids) == n_releases:
            break
    engine.close()
    assert len(record_ids) == n_releases, "too few exact-context outliers"
    return record_ids


def strip_timing(result: dict) -> dict:
    """A release result minus its wall-clock field — the bit-identity
    comparisons every serving bench runs before trusting any timing."""
    out = dict(result)
    out.pop("wall_time_s", None)
    return out


def median_paired_diff_ms(
    baseline: Sequence[float], treatment: Sequence[float]
) -> float:
    """Median of per-pair latency deltas (treatment - baseline), in ms.

    Each pair ran back to back, so per-pair deltas are immune to the slow
    drift (thermal, scheduler, allocator state) that dominates
    independent p50s at millisecond latencies.
    """
    return median(t - b for b, t in zip(baseline, treatment)) * 1000.0


def run_once(benchmark, fn):
    """Run a whole-experiment function exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def load_harness():
    """The telemetry harness (``benchmarks/harness.py``), by file location.

    ``benchmarks/`` is not a package: under pytest a plain ``import
    harness`` works (rootdir insertion), but the CLI and the test suite
    load this module from arbitrary CWDs — one spec-based loader keeps a
    single cached instance everywhere.
    """
    name = "pcor_bench_harness"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(
        name, _BENCH_DIR / "harness.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module

"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run a whole-experiment function exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Continuous benchmark telemetry: normalized JSON, baselines, trajectory.

The bench scripts under ``benchmarks/`` print human-readable artefacts;
this module gives them a second, machine-readable output and a runner:

* :func:`write_bench_json` — one ``BENCH_<name>.json`` per benchmark in
  ``benchmarks/results/``, schema ``pcor-bench/1``: a list of named
  metrics (value + unit, optionally a regression ``direction`` and a
  noise ``tolerance``), an environment fingerprint, and the git sha.
* :func:`compare` — current document vs a committed baseline
  (``benchmarks/baselines/``), flagging directional metrics that moved
  beyond their tolerance.  Tolerances default to 25% relative: these
  benches run on shared CI machines, so only noise-immune estimators
  (median paired differences, best-of minimums, deterministic counters)
  should carry tight tolerances.
* :func:`run_benchmarks` — the registry-driven runner behind ``pcor
  bench``: each benchmark is one pytest subprocess (its internal assert
  gates still fail the run), and the JSON the scripts emitted is then
  schema-validated, compared against baselines, and appended to the
  ``trajectory.jsonl`` telemetry log that CI uploads as an artifact.

Deliberately stdlib-only and import-safe without ``repro`` on the path:
the CLI loads it by file location.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

SCHEMA = "pcor-bench/1"
DIRECTIONS = ("lower", "higher")
DEFAULT_TOLERANCE = 0.25

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"
TRAJECTORY = RESULTS_DIR / "trajectory.jsonl"

#: The runner registry: ``pcor bench`` names -> the pytest file that emits
#: the matching ``BENCH_*.json`` document(s).  ``quick`` marks the subset
#: cheap enough for per-commit CI (the rest are nightly/manual); ``emits``
#: names the documents the file produces, so the runner can flag a bench
#: that silently stopped emitting telemetry.
BENCHES: Dict[str, Dict[str, Any]] = {
    "service_overhead": {
        "file": "bench_service_overhead.py",
        "quick": True,
        "emits": ["service_overhead"],
    },
    "obs_overhead": {
        "file": "bench_obs_overhead.py",
        "quick": True,
        "emits": ["obs_overhead"],
    },
    "router_overhead": {
        "file": "bench_router_overhead.py",
        "quick": True,
        "emits": ["router_overhead"],
    },
    "micro_kernels": {
        "file": "bench_micro_kernels.py",
        "quick": False,
        "emits": [
            "batch_population_sizes",
            "release_many_amortisation",
            "native_kernels",
            "append_incremental",
        ],
    },
    "server_throughput": {
        "file": "bench_server_throughput.py",
        "quick": False,
        "emits": ["server_throughput", "server_coalescing"],
    },
    "parallel_scaling": {
        "file": "bench_parallel_scaling.py",
        "quick": False,
        "emits": ["parallel_scaling"],
    },
}


# ------------------------------------------------------------- documents


def metric(
    name: str,
    value: float,
    unit: str,
    direction: Optional[str] = None,
    tolerance: Optional[float] = None,
) -> Dict[str, Any]:
    """One normalized metric row.

    ``direction`` ("lower"/"higher" is better) arms baseline comparison;
    metrics without one are recorded but never gate.  ``tolerance`` is
    the relative move (vs baseline) tolerated before the comparison
    reports a regression.
    """
    if direction is not None and direction not in DIRECTIONS:
        raise ValueError(
            f"direction must be one of {DIRECTIONS} or None, got {direction!r}"
        )
    row: Dict[str, Any] = {
        "metric": str(name),
        "value": float(value),
        "unit": str(unit),
    }
    if direction is not None:
        row["direction"] = direction
        row["tolerance"] = (
            DEFAULT_TOLERANCE if tolerance is None else float(tolerance)
        )
    return row


def _kernel_backend() -> str:
    """Which mask-kernel backend the bench process resolves to.

    Lazy and failure-proof: this module must stay importable without
    ``repro`` on the path, and a fingerprint is never worth crashing a
    bench run over.  Recorded for comparability only — numbers measured
    under ``native`` and ``fallback`` describe different code paths, so a
    baseline diff across backends is an environment change, not a
    regression.
    """
    try:
        from repro.bitops import kernel_backend_name

        return kernel_backend_name()
    except Exception:
        return "unknown"


def env_fingerprint() -> Dict[str, Any]:
    """Where this measurement ran — enough to judge comparability."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "scale": os.environ.get("PCOR_BENCH_SCALE", "small"),
        "kernel_backend": _kernel_backend(),
    }


def git_sha(repo_root: Optional[Path] = None) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root or BENCH_DIR.parent),
            capture_output=True,
            text=True,
            timeout=10.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def short_name(emit_name: str) -> str:
    """``bench_obs_overhead`` (the emit/artefact name) -> ``obs_overhead``."""
    return emit_name[6:] if emit_name.startswith("bench_") else emit_name


def bench_document(
    name: str,
    metrics: Sequence[Mapping[str, Any]],
    context: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "name": short_name(name),
        "created_unix": round(time.time(), 3),
        "git_sha": git_sha(),
        "env": env_fingerprint(),
        "metrics": [dict(m) for m in metrics],
    }
    if context:
        doc["context"] = dict(context)
    problems = validate_bench(doc)
    if problems:
        raise ValueError(
            f"refusing to write malformed bench document {name!r}: "
            + "; ".join(problems)
        )
    return doc


def write_bench_json(
    results_dir: Path,
    name: str,
    metrics: Sequence[Mapping[str, Any]],
    context: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write ``BENCH_<short-name>.json`` and return its path."""
    doc = bench_document(name, metrics, context=context)
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{doc['name']}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


# ------------------------------------------------------------ validation


def validate_bench(doc: Any) -> List[str]:
    """Schema lint for one ``pcor-bench/1`` document; [] means valid."""
    problems: List[str] = []
    if not isinstance(doc, Mapping):
        return [f"document must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not doc.get("name") or not isinstance(doc.get("name"), str):
        problems.append("missing/non-string 'name'")
    if not isinstance(doc.get("created_unix"), (int, float)):
        problems.append("missing/non-numeric 'created_unix'")
    sha = doc.get("git_sha")
    if sha is not None and not isinstance(sha, str):
        problems.append("'git_sha' must be a string or null")
    env = doc.get("env")
    if not isinstance(env, Mapping):
        problems.append("missing 'env' fingerprint object")
    else:
        for key in ("python", "platform", "cpus", "scale"):
            if key not in env:
                problems.append(f"env fingerprint is missing {key!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        problems.append("'metrics' must be a non-empty list")
        return problems
    seen = set()
    for i, row in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(row, Mapping):
            problems.append(f"{where}: must be an object")
            continue
        name = row.get("metric")
        if not name or not isinstance(name, str):
            problems.append(f"{where}: missing/non-string 'metric'")
        elif name in seen:
            problems.append(f"{where}: duplicate metric {name!r}")
        else:
            seen.add(name)
        value = row.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append(f"{where}: 'value' must be a number, got {value!r}")
        if not isinstance(row.get("unit"), str):
            problems.append(f"{where}: missing/non-string 'unit'")
        direction = row.get("direction")
        if direction is not None:
            if direction not in DIRECTIONS:
                problems.append(
                    f"{where}: direction must be one of {DIRECTIONS}, "
                    f"got {direction!r}"
                )
            tolerance = row.get("tolerance")
            if (
                isinstance(tolerance, bool)
                or not isinstance(tolerance, (int, float))
                or tolerance < 0
            ):
                problems.append(
                    f"{where}: directional metric needs a numeric "
                    f"tolerance >= 0, got {tolerance!r}"
                )
    return problems


# ------------------------------------------------------------ comparison


def compare(
    current: Mapping[str, Any], baseline: Optional[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Per-metric comparison rows for one benchmark document.

    Statuses: ``regression`` / ``improved`` (directional metrics beyond
    tolerance), ``ok`` (within tolerance), ``new`` (no baseline value),
    ``info`` (no direction — recorded, never gated).
    """
    base_rows = {
        row.get("metric"): row
        for row in (baseline or {}).get("metrics", [])
        if isinstance(row, Mapping)
    }
    rows = []
    for row in current.get("metrics", []):
        name = row.get("metric")
        out: Dict[str, Any] = {
            "metric": name,
            "value": row.get("value"),
            "unit": row.get("unit"),
        }
        direction = row.get("direction")
        base = base_rows.get(name)
        if direction is None:
            out["status"] = "info"
        elif base is None or not isinstance(
            base.get("value"), (int, float)
        ):
            out["status"] = "new"
        else:
            base_value = float(base["value"])
            out["baseline"] = base_value
            value = float(row.get("value", 0.0))
            tolerance = float(row.get("tolerance", DEFAULT_TOLERANCE))
            if base_value == 0.0:
                delta = 0.0 if value == 0.0 else float("inf")
            else:
                delta = (value - base_value) / abs(base_value)
            out["delta"] = round(delta, 4) if delta != float("inf") else None
            worse = delta > tolerance if direction == "lower" else -delta > tolerance
            better = -delta > tolerance if direction == "lower" else delta > tolerance
            out["status"] = (
                "regression" if worse else "improved" if better else "ok"
            )
        rows.append(out)
    return rows


def load_results(results_dir: Path) -> Dict[str, Dict[str, Any]]:
    """Every parseable ``BENCH_*.json`` under ``results_dir``, by name."""
    docs: Dict[str, Dict[str, Any]] = {}
    for path in sorted(Path(results_dir).glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(doc, dict) and isinstance(doc.get("name"), str):
            docs[doc["name"]] = doc
    return docs


def append_trajectory(
    docs: Iterable[Mapping[str, Any]], path: Path = TRAJECTORY
) -> Path:
    """Append one JSONL telemetry line per document (the CI artifact that
    accumulates the repo's performance trajectory over commits)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        for doc in docs:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------- runner


def select_benches(
    names: Optional[Sequence[str]] = None, quick: bool = False
) -> List[str]:
    if names:
        unknown = sorted(set(names) - set(BENCHES))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {unknown}; known: {sorted(BENCHES)}"
            )
        return list(names)
    return [
        name
        for name, spec in BENCHES.items()
        if not quick or spec.get("quick")
    ]


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    scale: Optional[str] = None,
    results_dir: Path = RESULTS_DIR,
    baselines_dir: Path = BASELINES_DIR,
    timeout: float = 1800.0,
    echo=print,
) -> Dict[str, Any]:
    """Run benchmarks as pytest subprocesses and build the full report.

    Returns ``{"runs": [...], "documents": {...}, "comparisons": {...},
    "problems": [...], "regressions": [...]}``.  ``problems`` are
    malformed/missing telemetry documents (CI fails the build on these);
    ``regressions`` are directional metrics beyond tolerance vs the
    committed baselines (reported, and gating only under ``--strict``).
    """
    selected = select_benches(names, quick=quick)
    env = dict(os.environ)
    if scale is not None:
        env["PCOR_BENCH_SCALE"] = scale
    runs: List[Dict[str, Any]] = []
    for name in selected:
        spec = BENCHES[name]
        path = BENCH_DIR / spec["file"]
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(path),
            "-q",
            "-p",
            "no:cacheprovider",
        ]
        echo(f"[pcor bench] {name}: {' '.join(cmd[3:])}")
        t0 = time.monotonic()
        try:
            proc = subprocess.run(
                cmd,
                cwd=str(BENCH_DIR.parent),
                env=env,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
            returncode = proc.returncode
            tail = (proc.stdout + proc.stderr).strip().splitlines()[-12:]
        except subprocess.TimeoutExpired:
            returncode = -1
            tail = [f"timed out after {timeout:g}s"]
        duration = time.monotonic() - t0
        runs.append(
            {
                "bench": name,
                "file": spec["file"],
                "returncode": returncode,
                "duration_s": round(duration, 2),
            }
        )
        status = "ok" if returncode == 0 else f"FAILED (rc={returncode})"
        echo(f"[pcor bench] {name}: {status} in {duration:.1f}s")
        if returncode != 0:
            for line in tail:
                echo(f"    {line}")

    documents = load_results(results_dir)
    baselines = (
        load_results(baselines_dir) if Path(baselines_dir).is_dir() else {}
    )
    problems: List[str] = []
    comparisons: Dict[str, List[Dict[str, Any]]] = {}
    regressions: List[str] = []
    expected = [e for name in selected for e in BENCHES[name]["emits"]]
    for emitted in expected:
        doc = documents.get(emitted)
        if doc is None:
            problems.append(f"{emitted}: no BENCH_{emitted}.json was emitted")
            continue
        doc_problems = validate_bench(doc)
        if doc_problems:
            problems.extend(f"{emitted}: {p}" for p in doc_problems)
            continue
        rows = compare(doc, baselines.get(emitted))
        comparisons[emitted] = rows
        for row in rows:
            if row["status"] == "regression":
                regressions.append(
                    f"{emitted}.{row['metric']}: {row['value']:g} {row['unit']} "
                    f"vs baseline {row['baseline']:g} "
                    f"({row['delta'] * 100.0 if row['delta'] is not None else float('nan'):+.1f}%)"
                )
    return {
        "runs": runs,
        "documents": {
            name: documents[name] for name in expected if name in documents
        },
        "comparisons": comparisons,
        "problems": problems,
        "regressions": regressions,
    }


def render_report(report: Mapping[str, Any]) -> str:
    """Human-readable summary of one :func:`run_benchmarks` report."""
    lines: List[str] = []
    for run in report["runs"]:
        status = "ok" if run["returncode"] == 0 else "FAILED"
        lines.append(
            f"  {run['bench']:<20s} {status:<7s} {run['duration_s']:8.1f}s"
        )
    for name, rows in sorted(report["comparisons"].items()):
        lines.append(f"  {name}:")
        for row in rows:
            value = row["value"]
            detail = f"{value:g} {row['unit']}"
            if "baseline" in row and row.get("delta") is not None:
                detail += (
                    f"  (baseline {row['baseline']:g}, {row['delta'] * 100:+.1f}%)"
                )
            lines.append(
                f"    {row['metric']:<28s} {row['status']:<10s} {detail}"
            )
    for problem in report["problems"]:
        lines.append(f"  MALFORMED: {problem}")
    for regression in report["regressions"]:
        lines.append(f"  REGRESSION: {regression}")
    if not report["problems"] and not report["regressions"]:
        lines.append("  telemetry: all documents valid, no regressions")
    return "\n".join(lines)

"""The paper's headline claim (Section 1.2), scaled down.

"Applied on a dataset of 50,000 records, PCOR reduces the runtime from
three days in the direct differentially private approach to 37 minutes;
while it maintains 90% of the maximum utility ... with eps = 0.2."

The direct approach enumerates an exponential candidate space; BFS touches
O(n t) contexts.  At laptop scale the absolute times shrink but the
*ratio* — direct examining orders of magnitude more contexts than BFS — is
the reproducible shape, alongside BFS's high utility retention.
"""

from repro.experiments.harness import Workbench, run_direct_experiment, run_pcor_experiment
from repro.experiments.reporting import render_table
from repro.experiments.tables import DETECTOR_KWARGS

from _helpers import run_once


def test_headline_direct_vs_bfs(benchmark, scale, emit):
    def experiment():
        bench = Workbench.get(
            "salary_reduced", scale.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
        )
        direct = run_direct_experiment(
            bench,
            epsilon=0.2,
            repetitions=min(5, scale.repetitions),
            n_outlier_records=min(5, scale.n_outlier_records),
            rng=0,
        )
        bfs = run_pcor_experiment(
            bench,
            "bfs",
            epsilon=0.2,
            n_samples=scale.n_samples,
            repetitions=scale.repetitions,
            n_outlier_records=scale.n_outlier_records,
            rng=0,
        )
        return direct, bfs

    direct, bfs = run_once(benchmark, experiment)

    rows = []
    for summary in (direct, bfs):
        rt = summary.runtime_summary()
        us = summary.utility_summary()
        rows.append(
            [
                summary.algorithm,
                *rt.as_row(),
                f"{summary.mean_fm_evaluations():.0f}",
                f"{us.mean:.2f}",
            ]
        )
    speedup = direct.runtime_summary().t_avg / max(bfs.runtime_summary().t_avg, 1e-9)
    work_ratio = direct.mean_fm_evaluations() / max(bfs.mean_fm_evaluations(), 1e-9)
    text = render_table(
        "Headline claim: direct approach vs PCOR-BFS (eps=0.2)",
        ["Algorithm", "Tmin", "Tmax", "Tavg", "f_M runs", "Utility"],
        rows,
        notes=(
            f"direct/BFS average-runtime ratio: {speedup:.1f}x; "
            f"f_M-work ratio: {work_ratio:.1f}x "
            "(paper: three days -> 37 minutes ~ 117x at 51k records, t=25)"
        ),
    )
    emit("headline_claim", text)

    # The whole point of the paper: the sampler does far less work...
    assert work_ratio > 2.0, f"direct should dominate BFS in f_M work ({work_ratio:.1f}x)"
    # ...while keeping most of the achievable utility.
    assert bfs.utility_summary().mean > 0.5

"""Tables 10 & 11 — effect of the number of samples (Section 6.6).

BFS + LOF, eps = 0.2, n in {25, 50, 100, 200}.  Paper shapes: runtime grows
roughly linearly in n (7m -> 16m -> 37m -> 99m average); utility first rises
(0.85 -> 0.88 -> 0.90) then *drops* at n = 200 (0.84) because the fixed
budget forces eps_1 = eps / (2n + 2) down with n.
"""

from repro.experiments.tables import table_10_11

from _helpers import run_once


def test_tables_10_and_11(benchmark, scale, emit):
    perf, util = run_once(benchmark, lambda: table_10_11(scale, seed=0))
    emit("table_10", perf.render())
    emit("table_11", util.render())

    # Performance: f_M work grows with n (BFS examines ~t children/visit).
    fm = [
        (int(label), s.mean_fm_evaluations())
        for label, s in perf.summaries.items()
    ]
    fm.sort()
    assert fm[-1][1] > fm[0][1] * 2, f"cost should grow with n: {fm}"

    for label, summary in util.summaries.items():
        assert 0.0 <= summary.utility_summary().mean <= 1.0 + 1e-9

"""Service-layer overhead: ``ReleaseEngine.submit`` vs ``PCOR.release``.

Since the spec-driven redesign, ``PCOR.release`` is itself a thin wrapper
that submits a ``ReleaseRequest`` to a private engine, so this bench pins
down the cost of the service path — request construction, spec metadata
lookups, ledger plumbing — relative to the facade on the ISSUE's 20-record
``salary_reduced`` workload.

Gate: the engine path must stay within 5% of the facade's wall time.  Both
paths share one fully-warmed verifier and run the identical seeded
workload several times, comparing best-of times, so the gate measures
dispatch overhead rather than detector work or runner noise.
"""

import time

from _helpers import load_harness
from repro.core.pcor import PCOR
from repro.core.sampling import BFSSampler
from repro.data.generators import salary_reduced
from repro.experiments.tables import DETECTOR_KWARGS
from repro.outliers import LOFDetector
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest

ROUNDS = 5


def test_engine_submit_overhead(emit):
    dataset = salary_reduced(n_records=2_000, seed=7)
    detector = LOFDetector(**DETECTOR_KWARGS["lof"])
    sampler = BFSSampler(n_samples=25)

    pcor = PCOR(dataset, detector, epsilon=0.2, sampler=sampler)
    record_ids = []
    for rid in map(int, dataset.ids):
        if pcor.verifier.is_matching(dataset.record_bits(rid), rid):
            record_ids.append(rid)
        if len(record_ids) == 20:
            break
    assert len(record_ids) == 20, "dataset yielded too few exact-context outliers"

    spec = PipelineSpec(
        detector="lof",
        detector_kwargs=DETECTOR_KWARGS["lof"],
        sampler="bfs",
        n_samples=25,
        epsilon=0.2,
    )
    engine = ReleaseEngine(dataset, mask_index=pcor.verifier.masks)
    engine.adopt_verifier(pcor.verifier)

    def run_facade() -> float:
        t0 = time.perf_counter()
        for i, rid in enumerate(record_ids):
            pcor.release(rid, seed=100 + i)
        return time.perf_counter() - t0

    def run_engine() -> float:
        t0 = time.perf_counter()
        for i, rid in enumerate(record_ids):
            engine.submit(ReleaseRequest(record_id=rid, spec=spec, seed=100 + i))
        return time.perf_counter() - t0

    # Warm the shared profile store so timed rounds measure dispatch, not
    # first-touch detector runs.
    run_facade()
    run_engine()

    facade_times, engine_times = [], []
    for _ in range(ROUNDS):
        facade_times.append(run_facade())
        engine_times.append(run_engine())

    t_facade = min(facade_times)
    t_engine = min(engine_times)
    overhead = t_engine / t_facade - 1.0

    harness = load_harness()
    emit(
        "bench_service_overhead",
        "ReleaseEngine.submit vs PCOR.release "
        "(salary_reduced n=2000, 20 records, LOF k=10, BFS n_samples=25, warmed)\n"
        f"  PCOR.release loop   : {t_facade * 1000:8.1f} ms (best of {ROUNDS})\n"
        f"  engine.submit loop  : {t_engine * 1000:8.1f} ms (best of {ROUNDS})\n"
        f"  service overhead    : {overhead * 100:+8.2f}%",
        metrics=[
            harness.metric(
                "facade_loop_ms", t_facade * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric(
                "engine_loop_ms", t_engine * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric("submit_overhead_frac", overhead, "fraction"),
        ],
    )
    assert overhead < 0.05, (
        f"ReleaseEngine.submit adds {overhead * 100:.2f}% over PCOR.release "
        "(gate: < 5%)"
    )

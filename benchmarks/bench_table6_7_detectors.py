"""Tables 6 & 7 — other outlier detection algorithms (Section 6.5).

Grubbs and Histogram on the reduced salary dataset (paper: 11k records, 14
attribute values), BFS sampling, population-size utility, eps = 0.2.

Paper shapes: Grubbs is the fastest detector (0.8m avg vs Histogram 3.4m);
both keep high utility (0.86 / 0.89) — PCOR is detector-generic.
"""

from repro.experiments.tables import table_6_7

from _helpers import run_once


def test_tables_6_and_7(benchmark, scale, emit):
    perf, util = run_once(benchmark, lambda: table_6_7(scale, seed=0))
    emit("table_6", perf.render())
    emit("table_7", util.render())

    rt = {label: s.runtime_summary() for label, s in perf.summaries.items()}
    assert rt["Grubbs"].t_avg < rt["Histogram"].t_avg * 5, (
        "Grubbs should not be dramatically slower than Histogram"
    )
    for label, summary in util.summaries.items():
        mean = summary.utility_summary().mean
        assert 0.0 <= mean <= 1.0 + 1e-9
        assert mean > 0.3, f"{label}: PCOR should retain meaningful utility"

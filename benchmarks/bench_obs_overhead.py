"""Serving-path cost of the observability layer (``src/repro/obs/``).

Workload: the standard ``salary_reduced`` release set (LOF k=10, BFS at
``n_samples=50``), identical seeds on both sides:

* **baseline** — a single :class:`PCORServer` with ``[observability]
  enabled = false``: no traces minted, no spans recorded, no per-request
  structured log events (the PR7-equivalent serving path).
* **instrumented** — the same server with the default observability
  config: every request minted a trace (``sample_rate = 1.0``), the full
  span timeline recorded and returned in the payload, latency histograms
  observed.

Gate: **instrumented p50 latency within 3% of baseline p50** — tracing
must stay a few monotonic reads per request, never a second workload.
Releases are asserted bit-identical across the two paths first (tracing
draws no randomness, so the release content cannot move).

In-memory ledgers on both sides: this measures instrumentation, not
fsync.
"""

import time
from statistics import median

from _helpers import (
    SERVING_N_RECORDS,
    load_harness,
    median_paired_diff_ms,
    serving_dataset_body,
    serving_record_ids,
    serving_spec_body,
    strip_timing,
)
from repro.server import PCORClient, PCORServer, ServerConfig

ROUNDS = 5
OVERHEAD_GATE = 0.03

SPEC_BODY = serving_spec_body()


def _config(enabled: bool) -> ServerConfig:
    return ServerConfig.from_dict(
        {
            "server": {"port": 0},
            "datasets": {"salary": serving_dataset_body()},
            "observability": {"enabled": enabled},
        }
    )


def _paired_latencies(plain_url: str, traced_url: str, record_ids: list):
    """Per-release latencies, measured in adjacent pairs.

    Each (round, record) issues the same release against both servers
    back to back, alternating which goes first — slow drift (thermal,
    scheduler, allocator state) lands on both sides of every pair instead
    of on whichever server ran its round later.
    """
    plain_client = PCORClient(plain_url, tenant="bench")
    traced_client = PCORClient(traced_url, tenant="bench")
    plain_lat, traced_lat = [], []
    try:
        k = 0
        for _ in range(ROUNDS):
            for i, rid in enumerate(record_ids):
                pair = [(plain_client, plain_lat), (traced_client, traced_lat)]
                if k % 2:
                    pair.reverse()
                for client, sink in pair:
                    t0 = time.perf_counter()
                    client.release(
                        "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
                    )
                    sink.append(time.perf_counter() - t0)
                k += 1
    finally:
        plain_client.close()
        traced_client.close()
    return plain_lat, traced_lat


def test_observability_overhead(emit, scale):
    record_ids = serving_record_ids(6 if scale.name == "smoke" else 16)

    with PCORServer(_config(False)) as plain, PCORServer(_config(True)) as traced:
        # Correctness before speed: tracing must not move a single bit of
        # the release (same seed, same result, wall clock excluded) —
        # and the instrumented payload must actually carry the timeline.
        for i, rid in enumerate(record_ids[:3]):
            plain_out = PCORClient(plain.url, tenant=f"id-{i}").release(
                "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
            )
            traced_out = PCORClient(traced.url, tenant=f"id-{i}").release(
                "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
            )
            assert strip_timing(traced_out["result"]) == strip_timing(
                plain_out["result"]
            )
            assert "trace" not in plain_out
            assert traced_out["trace"]["spans"]

        # Both engines are now warm; measure in adjacent alternating
        # pairs so drift hits both paths equally.
        plain_lat, traced_lat = _paired_latencies(
            plain.url, traced.url, record_ids
        )

    p50_plain = median(plain_lat)
    p50_traced = median(traced_lat)
    # The estimator is the median *paired* difference: each pair ran back
    # to back, so per-pair deltas are immune to the slow drift that
    # dominates independent p50s at millisecond latencies.
    cost_ms = median_paired_diff_ms(plain_lat, traced_lat)
    overhead = cost_ms / (p50_plain * 1000.0)

    harness = load_harness()
    emit(
        "bench_obs_overhead",
        "instrumented vs untraced serving "
        f"(salary_reduced n={SERVING_N_RECORDS}, {len(record_ids)} records x "
        f"{ROUNDS} rounds, LOF k=10, BFS n_samples=50, single server, "
        "warmed)\n"
        f"  baseline p50 latency    : {p50_plain * 1000:8.2f} ms\n"
        f"  instrumented p50 latency: {p50_traced * 1000:8.2f} ms\n"
        f"  tracing cost            : {cost_ms:+8.2f} ms\n"
        f"  p50 overhead            : {overhead * 100:+8.2f}%  "
        f"(gate: < {OVERHEAD_GATE * 100:.0f}%)",
        metrics=[
            harness.metric(
                "baseline_p50_ms", p50_plain * 1000.0, "ms",
                direction="lower", tolerance=0.5,
            ),
            harness.metric("instrumented_p50_ms", p50_traced * 1000.0, "ms"),
            # The overhead fraction hovers near zero by design (the bench's
            # own <3% assert is the hard gate), so a *relative* baseline
            # comparison on it would be all noise — record it info-only.
            harness.metric("p50_overhead_frac", overhead, "fraction"),
        ],
    )
    assert overhead < OVERHEAD_GATE, (
        f"observability adds {overhead * 100:.2f}% p50 latency "
        f"(gate: < {OVERHEAD_GATE * 100:.0f}%)"
    )

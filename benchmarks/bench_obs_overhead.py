"""Serving-path cost of the observability layer (``src/repro/obs/``).

Workload: the standard ``salary_reduced`` release set (LOF k=10, BFS at
``n_samples=50``), identical seeds on both sides:

* **baseline** — a single :class:`PCORServer` with ``[observability]
  enabled = false``: no traces minted, no spans recorded, no per-request
  structured log events (the PR7-equivalent serving path).
* **instrumented** — the same server with the default observability
  config: every request minted a trace (``sample_rate = 1.0``), the full
  span timeline recorded and returned in the payload, latency histograms
  observed.

Gate: **instrumented p50 latency within 3% of baseline p50** — tracing
must stay a few monotonic reads per request, never a second workload.
Releases are asserted bit-identical across the two paths first (tracing
draws no randomness, so the release content cannot move).

In-memory ledgers on both sides: this measures instrumentation, not
fsync.
"""

import time
from statistics import median

from repro.data.generators import salary_reduced
from repro.experiments.tables import DETECTOR_KWARGS
from repro.server import PCORClient, PCORServer, ServerConfig
from repro.service import PipelineSpec, ReleaseEngine

ROUNDS = 5
N_RECORDS = 2_000
OVERHEAD_GATE = 0.03

SPEC_BODY = dict(
    detector="lof",
    detector_kwargs=DETECTOR_KWARGS["lof"],
    sampler="bfs",
    n_samples=50,
    epsilon=0.2,
)

DATASET_BODY = {"source": "salary_reduced", "records": N_RECORDS, "seed": 7}


def _config(enabled: bool) -> ServerConfig:
    return ServerConfig.from_dict(
        {
            "server": {"port": 0},
            "datasets": {"salary": DATASET_BODY},
            "observability": {"enabled": enabled},
        }
    )


def _record_ids(scale) -> list:
    n_releases = 6 if scale.name == "smoke" else 16
    dataset = salary_reduced(n_records=N_RECORDS, seed=7)
    spec = PipelineSpec(**SPEC_BODY)
    engine = ReleaseEngine(dataset)
    verifier = engine.verifier_for(spec.build_detector())
    record_ids = []
    for rid in map(int, dataset.ids):
        if verifier.is_matching(dataset.record_bits(rid), rid):
            record_ids.append(rid)
        if len(record_ids) == n_releases:
            break
    engine.close()
    assert len(record_ids) == n_releases, "too few exact-context outliers"
    return record_ids


def _paired_latencies(plain_url: str, traced_url: str, record_ids: list):
    """Per-release latencies, measured in adjacent pairs.

    Each (round, record) issues the same release against both servers
    back to back, alternating which goes first — slow drift (thermal,
    scheduler, allocator state) lands on both sides of every pair instead
    of on whichever server ran its round later.
    """
    plain_client = PCORClient(plain_url, tenant="bench")
    traced_client = PCORClient(traced_url, tenant="bench")
    plain_lat, traced_lat = [], []
    try:
        k = 0
        for _ in range(ROUNDS):
            for i, rid in enumerate(record_ids):
                pair = [(plain_client, plain_lat), (traced_client, traced_lat)]
                if k % 2:
                    pair.reverse()
                for client, sink in pair:
                    t0 = time.perf_counter()
                    client.release(
                        "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
                    )
                    sink.append(time.perf_counter() - t0)
                k += 1
    finally:
        plain_client.close()
        traced_client.close()
    return plain_lat, traced_lat


def _strip_timing(result: dict) -> dict:
    out = dict(result)
    out.pop("wall_time_s", None)
    return out


def test_observability_overhead(emit, scale):
    record_ids = _record_ids(scale)

    with PCORServer(_config(False)) as plain, PCORServer(_config(True)) as traced:
        # Correctness before speed: tracing must not move a single bit of
        # the release (same seed, same result, wall clock excluded) —
        # and the instrumented payload must actually carry the timeline.
        for i, rid in enumerate(record_ids[:3]):
            plain_out = PCORClient(plain.url, tenant=f"id-{i}").release(
                "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
            )
            traced_out = PCORClient(traced.url, tenant=f"id-{i}").release(
                "salary", record_id=rid, spec=SPEC_BODY, seed=100 + i
            )
            assert _strip_timing(traced_out["result"]) == _strip_timing(
                plain_out["result"]
            )
            assert "trace" not in plain_out
            assert traced_out["trace"]["spans"]

        # Both engines are now warm; measure in adjacent alternating
        # pairs so drift hits both paths equally.
        plain_lat, traced_lat = _paired_latencies(
            plain.url, traced.url, record_ids
        )

    p50_plain = median(plain_lat)
    p50_traced = median(traced_lat)
    # The estimator is the median *paired* difference: each pair ran back
    # to back, so per-pair deltas are immune to the slow drift that
    # dominates independent p50s at millisecond latencies.
    cost_ms = (
        median(t - p for p, t in zip(plain_lat, traced_lat)) * 1000.0
    )
    overhead = cost_ms / (p50_plain * 1000.0)

    emit(
        "bench_obs_overhead",
        "instrumented vs untraced serving "
        f"(salary_reduced n={N_RECORDS}, {len(record_ids)} records x "
        f"{ROUNDS} rounds, LOF k=10, BFS n_samples=50, single server, "
        "warmed)\n"
        f"  baseline p50 latency    : {p50_plain * 1000:8.2f} ms\n"
        f"  instrumented p50 latency: {p50_traced * 1000:8.2f} ms\n"
        f"  tracing cost            : {cost_ms:+8.2f} ms\n"
        f"  p50 overhead            : {overhead * 100:+8.2f}%  "
        f"(gate: < {OVERHEAD_GATE * 100:.0f}%)",
    )
    assert overhead < OVERHEAD_GATE, (
        f"observability adds {overhead * 100:.2f}% p50 latency "
        f"(gate: < {OVERHEAD_GATE * 100:.0f}%)"
    )

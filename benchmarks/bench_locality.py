"""Section 5.2 locality-hypothesis measurement (design-choice ablation).

The graph samplers assume matching contexts cluster in the context graph.
This bench quantifies the assumption for all three detector categories: the
radius-1 match rate around a matching context must clearly exceed the
global matching density (what a uniform draw would achieve) — that gap is
the entire performance argument for graph-based sampling over Algorithm 2.
"""

from repro.experiments.locality import locality_experiment, locality_table

from _helpers import run_once


def test_locality_hypothesis(benchmark, scale, emit):
    results = run_once(
        benchmark,
        lambda: locality_experiment(
            scale, seed=0, detectors=("grubbs", "lof", "histogram"), max_radius=3
        ),
    )
    emit("locality", locality_table(results).render())

    for res in results:
        assert res.match_rate_by_radius[0] == 1.0
        # The locality gain is what makes graph search beat rejection
        # sampling; require a decisive margin for every detector category.
        assert res.match_rate_by_radius[1] > 2.0 * res.global_density, (
            f"{res.detector}: radius-1 rate {res.match_rate_by_radius[1]:.3f} "
            f"vs density {res.global_density:.4f}"
        )
        # Match rate decays with distance from the matching context.
        assert res.match_rate_by_radius[1] >= res.match_rate_by_radius[-1] - 0.05

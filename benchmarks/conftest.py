"""Shared benchmark fixtures.

Every bench regenerates one paper table or figure, prints the rendered ASCII
artefact straight to the terminal (bypassing capture) and archives it under
``benchmarks/results/``.  The experiment scale defaults to ``small`` and can
be overridden with the ``PCOR_BENCH_SCALE`` environment variable
(smoke | small | medium | paper).

Heavy table regenerations run exactly once via ``benchmark.pedantic(...,
rounds=1)``; the micro-kernel benches use ordinary multi-round timing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentScale, get_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return get_scale(os.environ.get("PCOR_BENCH_SCALE", "small"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(capsys, results_dir):
    """Print an artefact to the real terminal and archive it."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


"""Shared benchmark fixtures.

Every bench regenerates one paper table or figure, prints the rendered ASCII
artefact straight to the terminal (bypassing capture) and archives it under
``benchmarks/results/``.  The experiment scale defaults to ``small`` and can
be overridden with the ``PCOR_BENCH_SCALE`` environment variable
(smoke | small | medium | paper).

Heavy table regenerations run exactly once via ``benchmark.pedantic(...,
rounds=1)``; the micro-kernel benches use ordinary multi-round timing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentScale, get_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return get_scale(os.environ.get("PCOR_BENCH_SCALE", "small"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(capsys, results_dir):
    """Print an artefact to the real terminal and archive it.

    With ``metrics=`` (a list of ``harness.metric(...)`` rows) the bench
    additionally writes the normalized ``BENCH_<name>.json`` telemetry
    document that ``pcor bench`` validates and compares against the
    committed baselines.
    """

    def _emit(name: str, text: str, metrics=None) -> None:
        with capsys.disabled():
            print()
            print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")
        if metrics:
            from _helpers import load_harness

            load_harness().write_bench_json(results_dir, name, metrics)

    return _emit


"""Shared, bounded storage for context profiles.

A *context profile* — population size plus the full set of outlier record
ids — is the unit of work the verifier memoises: computing one costs a
population-mask pass plus an uncached detector run, the dominant cost of the
whole pipeline (the paper's ``f_M`` query).  This module provides

* :class:`ProfileStore` — a bounded LRU map ``context bits -> profile`` with
  hit/miss/eviction counters for the experiment harness, and
* :func:`shared_profile_store` — a process-wide registry handing out one
  store per ``(dataset, detector)`` pair, so any number of ``PCOR``
  instances (and their verifiers) built over the same data share detector
  work instead of each rebuilding the cache from scratch.

Sharing is read-or-extend only — profiles are immutable values keyed by the
context bitmask — so cross-instance sharing cannot change any computed
answer, only skip recomputation.  Registry entries are dropped automatically
when their dataset is garbage-collected.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np

from repro.data.table import Dataset
from repro.outliers.base import OutlierDetector

#: (population size, frozenset of outlier record ids)
ContextProfile = Tuple[int, FrozenSet[int]]

#: Default bound on profiles kept per store.  A profile is a couple of
#: machine words plus a (usually tiny) frozenset, so the default allows
#: multi-hundred-MB caches before eviction starts — far beyond any of the
#: paper's workloads, while still bounding a long-lived server process.
DEFAULT_CAPACITY = 1_000_000


class ProfileStore:
    """Bounded LRU map from context bitmask to :data:`ContextProfile`.

    Thread-safe: every operation holds the store's lock, so concurrent
    engine callers (the thread execution backend in particular) can never
    corrupt the LRU order, overshoot the capacity bound, or lose counter
    updates.  Profiles are immutable values keyed by context bitmask, so
    the worst a get/put race can do is recompute a profile both threads
    then agree on.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._profiles: "OrderedDict[int, ContextProfile]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0  # profiles dropped by targeted invalidation
        self.stale_puts = 0  # puts rejected for carrying an old version
        self._version = 0

    # ------------------------------------------------------------------ core

    def get(self, bits: int) -> Optional[ContextProfile]:
        """Cached profile of ``bits`` or ``None``; counts the hit/miss."""
        with self._lock:
            profile = self._profiles.get(bits)
            if profile is None:
                self.misses += 1
                return None
            self.hits += 1
            self._profiles.move_to_end(bits)
            return profile

    def peek(self, bits: int) -> Optional[ContextProfile]:
        """Like :meth:`get` but without touching counters or LRU order."""
        with self._lock:
            return self._profiles.get(bits)

    def put(
        self,
        bits: int,
        profile: ContextProfile,
        version: Optional[int] = None,
    ) -> None:
        """Insert (or refresh) a profile, evicting the LRU entry if full.

        ``version`` is the dataset version the profile was computed against
        (see :meth:`invalidate_matching`); a put stamped with a version
        older than the store's current one is silently dropped — the
        profile describes a dataset that no longer exists, and caching it
        would let a release that raced an append poison the store for
        every later caller.  Unstamped puts (``None``) always land, for
        callers on immutable datasets.
        """
        with self._lock:
            if version is not None and version != self._version:
                self.stale_puts += 1
                return
            self._profiles[bits] = profile
            self._profiles.move_to_end(bits)
            while len(self._profiles) > self.capacity:
                self._profiles.popitem(last=False)
                self.evictions += 1

    @property
    def version(self) -> int:
        """Dataset version this store currently caches for (monotonic)."""
        with self._lock:
            return self._version

    def invalidate_matching(
        self, record_bits_seq: Sequence[int], version: int
    ) -> int:
        """Advance the store to ``version``, dropping affected profiles.

        ``record_bits_seq`` holds the exact-context bitmasks of the
        appended records.  A cached profile is stale iff its context's
        population could have changed — iff the context *contains* some
        appended record, i.e. ``(record_bits & key) == record_bits``.
        Every other profile (and there are typically vastly more) survives
        the append untouched, which is the point of incremental updates.

        Returns the number of profiles dropped.  Also fences late writers:
        any in-flight :meth:`put` stamped with the pre-append version is
        rejected once this returns.
        """
        bits_list = [int(b) for b in record_bits_seq]
        with self._lock:
            self._version = max(self._version, int(version))
            stale = [
                key
                for key in self._profiles
                if any((rbits & key) == rbits for rbits in bits_list)
            ]
            for key in stale:
                del self._profiles[key]
            self.invalidations += len(stale)
            return len(stale)

    # --------------------------------------------------------------- plumbing

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def __contains__(self, bits: int) -> bool:
        with self._lock:
            return bits in self._profiles

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0
            self.stale_puts = 0

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for the harness / reporting."""
        with self._lock:
            return {
                "size": len(self._profiles),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_puts": self.stale_puts,
                "version": self._version,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProfileStore(size={len(self)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


# ------------------------------------------------------------------ registry

_SHARED_STORES: Dict[Tuple[int, object], ProfileStore] = {}


class _IdentityKey:
    """Registry-key wrapper hashing by wrapped-object identity.

    Used for configuration values with no value-like representation
    (callables, arbitrary objects).  It holds a strong reference, so while
    the registry entry lives the object's id cannot be recycled by another
    allocation — identity comparison stays sound.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: object):
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _IdentityKey) and other.obj is self.obj


def _value_fingerprint(value: object) -> object:
    """Hashable fingerprint of one detector configuration value.

    Numpy arrays are fingerprinted by full contents (``repr`` elides large
    arrays), and values whose ``repr`` is address-based (default object or
    function reprs) fall back to identity so two *different* objects never
    collide on a recycled address.
    """
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.shape, value.tobytes())
    rep = repr(value)
    if " at 0x" in rep:
        return _IdentityKey(value)
    return rep


def detector_fingerprint(detector: OutlierDetector) -> Tuple:
    """Hashable configuration fingerprint of a detector instance.

    Profiles only depend on detector *behaviour*, and detectors are
    deterministic functions of their public configuration, so two instances
    of the same class with equal parameters may share a store.  The release
    engine keys its per-detector verifiers by the same fingerprint.
    """
    params = tuple(
        (k, _value_fingerprint(v))
        for k, v in sorted(vars(detector).items())
        if not k.startswith("_")
    )
    return (type(detector).__module__, type(detector).__qualname__, params)


_detector_key = detector_fingerprint


def shared_profile_store(
    dataset: Dataset,
    detector: OutlierDetector,
    capacity: int = DEFAULT_CAPACITY,
) -> ProfileStore:
    """The process-wide store for one ``(dataset, detector)`` pair.

    Keyed by dataset *identity* (datasets are immutable, so identity implies
    equal contents) and detector *configuration*.  The registry entry is
    removed when the dataset is garbage-collected.

    ``capacity`` only applies when this call *creates* the store; later
    callers for the same pair get the existing store back with its original
    bound (first caller wins).  Pass an explicit :class:`ProfileStore` to
    consumers that need their own bound.
    """
    key = (id(dataset), detector_fingerprint(detector))
    store = _SHARED_STORES.get(key)
    if store is None:
        store = ProfileStore(capacity=capacity)
        _SHARED_STORES[key] = store
        weakref.finalize(dataset, _SHARED_STORES.pop, key, None)
    return store

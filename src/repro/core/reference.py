"""The reference file of Section 6.2.

The paper's evaluation normalises every PCOR output against the *maximum*
achievable utility, read from a precomputed reference file: "all possible
contexts in attr(R) accompanied with their associated utility, and the list
of outliers for each context".  Building it is exactly the cost of the
direct approach (three days at the paper's scale), so this module guards
enumeration size and supports JSON round-tripping so a build can be reused
across experiments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.context.space import DEFAULT_ENUMERATION_LIMIT, ContextSpace
from repro.core.utility import UtilityFunction
from repro.core.verification import OutlierVerifier
from repro.exceptions import EnumerationError
from repro.schema import Schema

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ContextEntry:
    """Reference data for one structurally valid context."""

    bits: int
    population_size: int
    outlier_ids: Tuple[int, ...]


class ReferenceFile:
    """Per-context population sizes and outlier sets for one dataset+detector."""

    def __init__(self, schema: Schema, entries: Dict[int, ContextEntry]):
        self.schema = schema
        self._entries = entries
        self._matching_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        verifier: OutlierVerifier,
        limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT,
        progress_every: int = 0,
    ) -> "ReferenceFile":
        """Enumerate every structurally valid context and profile it.

        ``progress_every > 0`` prints a line every that-many contexts, since
        a full build is the most expensive operation in the library.
        """
        space = ContextSpace(verifier.schema)
        entries: Dict[int, ContextEntry] = {}
        for i, ctx in enumerate(space.enumerate_valid(limit=limit)):
            pop, outliers = verifier.context_profile(ctx.bits)
            entries[ctx.bits] = ContextEntry(
                bits=ctx.bits,
                population_size=pop,
                outlier_ids=tuple(sorted(outliers)),
            )
            if progress_every and (i + 1) % progress_every == 0:
                print(f"reference build: {i + 1} contexts profiled")
        return cls(verifier.schema, entries)

    # ------------------------------------------------------------------ query

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, bits: int) -> bool:
        return bits in self._entries

    def entry(self, bits: int) -> ContextEntry:
        try:
            return self._entries[bits]
        except KeyError:
            raise EnumerationError(
                f"context {bits:#x} not in reference (not structurally valid?)"
            ) from None

    def population_size(self, bits: int) -> int:
        return self.entry(bits).population_size

    def outlier_records(self) -> List[int]:
        """Record ids that are outliers in at least one context, sorted."""
        seen = set()
        for entry in self._entries.values():
            seen.update(entry.outlier_ids)
        return sorted(seen)

    def matching_contexts(self, record_id: int) -> Tuple[int, ...]:
        """All contexts whose outlier list contains ``record_id`` (= COE_M)."""
        cached = self._matching_cache.get(record_id)
        if cached is None:
            cached = tuple(
                sorted(
                    bits
                    for bits, entry in self._entries.items()
                    if record_id in entry.outlier_ids
                )
            )
            self._matching_cache[record_id] = cached
        return cached

    def coe(self, record_id: int) -> FrozenSet[int]:
        return frozenset(self.matching_contexts(record_id))

    def max_population_utility(self, record_id: int) -> float:
        """Maximum-context population size for ``record_id`` (Definition 3.3)."""
        matching = self.matching_contexts(record_id)
        if not matching:
            return 0.0
        return float(max(self._entries[b].population_size for b in matching))

    def max_utility(self, record_id: int, utility: UtilityFunction) -> float:
        """Maximum of an arbitrary utility over ``record_id``'s matching contexts."""
        matching = self.matching_contexts(record_id)
        if not matching:
            return float("-inf")
        return float(max(utility.score(bits) for bits in matching))

    # ------------------------------------------------------------------- I/O

    def to_json(self, path: PathLike) -> None:
        """Serialise to a JSON file (schema + entries)."""
        payload = {
            "schema": self.schema.to_dict(),
            "entries": [
                {
                    "bits": e.bits,
                    "population_size": e.population_size,
                    "outlier_ids": list(e.outlier_ids),
                }
                for e in self._entries.values()
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: PathLike) -> "ReferenceFile":
        payload = json.loads(Path(path).read_text())
        schema = Schema.from_dict(payload["schema"])
        entries = {
            int(e["bits"]): ContextEntry(
                bits=int(e["bits"]),
                population_size=int(e["population_size"]),
                outlier_ids=tuple(int(r) for r in e["outlier_ids"]),
            )
            for e in payload["entries"]
        }
        return cls(schema, entries)

"""Batched read-through memoisation shared by the engine's cache layers.

Both the verifier (context profiles in a :class:`ProfileStore`) and the
overlap utility (intersection sizes in a plain dict) answer batches of keyed
queries the same way: serve cached keys, deduplicate the distinct misses,
compute those in one batched pass, then fan the results back out to every
slot that asked.  :func:`gather_batched` is that coordination loop, written
once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TypeVar

K = TypeVar("K")
V = TypeVar("V")


def gather_batched(
    keys: Sequence[K],
    lookup: Callable[[K], Optional[V]],
    store: Callable[[K, V], None],
    compute_many: Callable[[List[K]], Sequence[V]],
) -> List[V]:
    """Answer a batch of queries through a memo, computing misses together.

    ``lookup`` returns the cached value or ``None``; each *distinct* missing
    key is looked up exactly once (so cache hit/miss counters see one miss
    per distinct key, however often it repeats in the batch), then
    ``compute_many`` receives the distinct misses in first-seen order and
    its results are ``store``d and fanned out.  Returns values aligned with
    ``keys``.
    """
    out: List[Optional[V]] = [None] * len(keys)
    miss_slots: Dict[K, List[int]] = {}
    for i, key in enumerate(keys):
        slots = miss_slots.get(key)
        if slots is not None:
            slots.append(i)
            continue
        value = lookup(key)
        if value is None:
            miss_slots[key] = [i]
        else:
            out[i] = value
    if miss_slots:
        misses = list(miss_slots)
        for key, value in zip(misses, compute_many(misses)):
            store(key, value)
            for slot in miss_slots[key]:
                out[slot] = value
    return out  # type: ignore[return-value]

"""Result record returned by every PCOR release."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.context.context import Context
from repro.core.sampling.base import SamplingStats


@dataclass(frozen=True)
class PCORResult:
    """Everything a data owner learns from one private context release.

    Attributes
    ----------
    context:
        The released private context ``C_p``.
    record_id:
        The queried outlier ``V``.
    utility_value:
        ``u_V(D, C_p)`` of the released context (the data owner may inspect
        this; releasing it verbatim would cost extra budget).
    utility_name:
        Which utility function scored the candidates.
    epsilon_total:
        Total OCDP budget consumed by the release.
    epsilon_one:
        Per-invocation Exponential-mechanism parameter used.
    algorithm:
        Sampler (or ``"direct"``) that produced the candidate pool.
    n_candidates:
        Size of the pool the final mechanism selected from.
    starting_context:
        The starting context used, if any.
    stats:
        Sampler cost counters (contexts examined, mechanism invocations...).
    fm_evaluations:
        Uncached detector runs performed during this release.
    wall_time_s:
        Wall-clock duration of the release.
    """

    context: Context
    record_id: int
    utility_value: float
    utility_name: str
    epsilon_total: float
    epsilon_one: float
    algorithm: str
    n_candidates: int
    starting_context: Optional[Context] = None
    stats: SamplingStats = field(default_factory=SamplingStats)
    fm_evaluations: int = 0
    wall_time_s: float = 0.0

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"record {self.record_id}: released context {self.context.describe()}",
            f"  bitvector        : {self.context.to_bitstring()}",
            f"  utility ({self.utility_name}): {self.utility_value:g}",
            f"  algorithm        : {self.algorithm} "
            f"(pool of {self.n_candidates} candidates)",
            f"  privacy          : epsilon={self.epsilon_total:g} "
            f"(epsilon_1={self.epsilon_one:.6g})",
            f"  cost             : {self.fm_evaluations} detector runs, "
            f"{self.wall_time_s * 1000:.1f} ms",
        ]
        if self.starting_context is not None:
            lines.insert(2, f"  starting context : {self.starting_context.describe()}")
        return "\n".join(lines)

"""Result record returned by every PCOR release."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.context.context import Context
from repro.core.sampling.base import SamplingStats


def _context_dict(context: Context) -> Dict[str, Any]:
    """A wire-friendly rendering of one context."""
    return {
        "bits": int(context.bits),
        "bitstring": context.to_bitstring(),
        "predicates": {
            attr: list(values) for attr, values in context.selected_values().items()
        },
        "description": context.describe(),
    }


@dataclass(frozen=True)
class PCORResult:
    """Everything a data owner learns from one private context release.

    Attributes
    ----------
    context:
        The released private context ``C_p``.
    record_id:
        The queried outlier ``V``.
    utility_value:
        ``u_V(D, C_p)`` of the released context (the data owner may inspect
        this; releasing it verbatim would cost extra budget).
    utility_name:
        Which utility function scored the candidates.
    epsilon_total:
        Total OCDP budget consumed by the release.
    epsilon_one:
        Per-invocation Exponential-mechanism parameter used.
    algorithm:
        Sampler (or ``"direct"``) that produced the candidate pool.
    n_candidates:
        Size of the pool the final mechanism selected from.
    starting_context:
        The starting context used, if any.
    stats:
        Sampler cost counters (contexts examined, mechanism invocations...).
    fm_evaluations:
        Uncached detector runs performed during this release.
    wall_time_s:
        Wall-clock duration of the release.
    dataset_version:
        Append counter of the dataset snapshot the release ran against
        (0 for a freshly built dataset).  Releases that race an append may
        legitimately run against either the old or the new version; this
        stamp records which one actually answered.
    """

    context: Context
    record_id: int
    utility_value: float
    utility_name: str
    epsilon_total: float
    epsilon_one: float
    algorithm: str
    n_candidates: int
    starting_context: Optional[Context] = None
    stats: SamplingStats = field(default_factory=SamplingStats)
    fm_evaluations: int = 0
    wall_time_s: float = 0.0
    dataset_version: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able mapping of the whole result (for wires and logs).

        Contexts are rendered as bits + bitstring + selected predicates, so
        a consumer can rebuild a :class:`Context` against the schema or just
        read the human-facing description.
        """
        return {
            "record_id": self.record_id,
            "context": _context_dict(self.context),
            "utility_value": self.utility_value,
            "utility_name": self.utility_name,
            "epsilon_total": self.epsilon_total,
            "epsilon_one": self.epsilon_one,
            "algorithm": self.algorithm,
            "n_candidates": self.n_candidates,
            "starting_context": (
                _context_dict(self.starting_context)
                if self.starting_context is not None
                else None
            ),
            "stats": asdict(self.stats),
            "fm_evaluations": self.fm_evaluations,
            "wall_time_s": self.wall_time_s,
            "dataset_version": self.dataset_version,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The result as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"record {self.record_id}: released context {self.context.describe()}",
            f"  bitvector        : {self.context.to_bitstring()}",
            f"  utility ({self.utility_name}): {self.utility_value:g}",
            f"  algorithm        : {self.algorithm} "
            f"(pool of {self.n_candidates} candidates)",
            f"  privacy          : epsilon={self.epsilon_total:g} "
            f"(epsilon_1={self.epsilon_one:.6g})",
            f"  cost             : {self.fm_evaluations} detector runs, "
            f"{self.wall_time_s * 1000:.1f} ms",
        ]
        if self.starting_context is not None:
            lines.insert(2, f"  starting context : {self.starting_context.describe()}")
        return "\n".join(lines)

"""The PCOR facade — Definition 3.2 end to end.

Composes a dataset, a deterministic outlier detector, a utility function, a
sampling algorithm and a total privacy budget into a single
``release(record_id)`` call that returns a valid, differentially private,
high-utility context:

>>> from repro import PCOR, BFSSampler, LOFDetector, salary_reduced
>>> dataset = salary_reduced(n_records=2000, seed=7)
>>> pcor = PCOR(dataset, LOFDetector(k=10), utility="population_size",
...             epsilon=0.2, sampler=BFSSampler(n_samples=50))
>>> result = pcor.release(record_id=17, seed=42)   # doctest: +SKIP

Since the spec-driven redesign, ``PCOR`` is a thin wrapper over the service
layer: the constructor freezes its configuration into a
:class:`~repro.service.spec.PipelineSpec` and every release is a
:class:`~repro.service.engine.ReleaseRequest` submitted to a private,
unbudgeted :class:`~repro.service.engine.ReleaseEngine` that carries this
instance's verifier (and thus its context-profile cache).  Identical seeds
release identical contexts through either API.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.context.context import Context
from repro.core.profiles import ProfileStore, detector_fingerprint, shared_profile_store
from repro.core.result import PCORResult
from repro.core.sampling.base import Sampler
from repro.core.sampling.bfs import BFSSampler
from repro.core.utility import UtilityFunction, UtilitySpec  # noqa: F401 (re-export)
from repro.core.verification import OutlierVerifier
from repro.data.table import Dataset
from repro.exceptions import SamplingError
from repro.outliers.base import OutlierDetector
from repro.rng import RngLike, ensure_rng
from repro.service.engine import ReleaseEngine, ReleaseRequest
from repro.service.spec import PipelineSpec


class PCOR:
    """Private contextual outlier release for one dataset + detector.

    Parameters
    ----------
    utility_needs_starting_context:
        Explicit needs-a-starting-context flag for *callable* utility specs
        (named specs answer from registry metadata).  A callable may instead
        carry a truthy ``needs_starting_context`` attribute.  Without either,
        callables are assumed start-free — the engine then passes
        ``starting_bits=None`` unless the sampler searched anyway.
    share_profiles:
        When true (and no explicit ``verifier`` is given), the verifier's
        context-profile memo is the process-wide
        :func:`~repro.core.profiles.shared_profile_store` for this
        ``(dataset, detector)`` pair, so every ``PCOR`` instance built over
        the same data amortises detector runs instead of rebuilding the
        cache from scratch.  Sharing only skips recomputation of
        deterministic profiles; it never changes a released context.
    profile_store:
        Explicit :class:`~repro.core.profiles.ProfileStore` for the
        verifier's memo (overrides ``share_profiles``).
    backend / workers:
        Execution backend for :meth:`release_many` fan-out and large
        profile batches (``"serial"``, ``"thread"``, ``"process"``, or an
        :class:`~repro.runtime.base.ExecutionBackend` instance), passed to
        this instance's private engine.  ``None`` honours the
        ``PCOR_BACKEND``/``PCOR_WORKERS`` environment and defaults to
        serial.  Execution never changes a released context: any backend at
        any worker count is bit-identical to serial for the same seed.
    """

    def __init__(
        self,
        dataset: Dataset,
        detector: OutlierDetector,
        utility: UtilitySpec = "population_size",
        epsilon: float = 0.2,
        sampler: Optional[Sampler] = None,
        half_sensitivity: bool = False,
        verifier: Optional[OutlierVerifier] = None,
        share_profiles: bool = False,
        profile_store: Optional[ProfileStore] = None,
        utility_needs_starting_context: Optional[bool] = None,
        backend=None,
        workers: Optional[int] = None,
    ):
        self.dataset = dataset
        self.detector = detector
        self.utility_spec = utility
        self.epsilon = float(epsilon)
        self.sampler = sampler if sampler is not None else BFSSampler(n_samples=50)
        self.half_sensitivity = bool(half_sensitivity)
        if verifier is None:
            store = profile_store
            if store is None and share_profiles:
                store = shared_profile_store(dataset, detector)
            verifier = OutlierVerifier(dataset, detector, profile_store=store)
        elif profile_store is not None or share_profiles:
            raise SamplingError(
                "pass either an explicit verifier or profile_store/"
                "share_profiles, not both: the verifier already carries "
                "its own profile store"
            )
        self.verifier = verifier
        if self.verifier.dataset is not dataset:
            raise SamplingError("verifier was built for a different dataset")
        if detector_fingerprint(self.verifier.detector) != detector_fingerprint(
            detector
        ):
            # Releases run against the verifier the engine resolves for the
            # *detector* argument; a mismatched explicit verifier would be
            # silently bypassed (cold cache, different detector) — refuse.
            raise SamplingError(
                "verifier was built for a different detector configuration; "
                "pass the same detector, or omit the explicit verifier"
            )
        self.spec = PipelineSpec(
            detector=detector,
            sampler=self.sampler,
            utility=utility,
            epsilon=self.epsilon,
            half_sensitivity=self.half_sensitivity,
            utility_needs_start=utility_needs_starting_context,
        )
        self.engine = ReleaseEngine(
            dataset,
            mask_index=self.verifier.masks,
            backend=backend,
            workers=workers,
        )
        self.engine.adopt_verifier(self.verifier)

    def close(self) -> None:
        """Release the engine's execution resources (pools, shared memory)."""
        self.engine.close()

    # ------------------------------------------------------------------ main

    def release(
        self,
        record_id: int,
        starting_context: Union[None, int, Context] = None,
        seed: RngLike = None,
    ) -> PCORResult:
        """Release one private context for ``record_id``.

        Parameters
        ----------
        record_id:
            The outlier ``V``.  Reporting the record itself is assumed to be
            permitted (paper Section 1); this call protects everyone else.
        starting_context:
            A valid context to start graph samplers from.  If omitted, a
            local search finds one (:func:`find_starting_context`).
        seed:
            RNG seed/generator for this release.
        """
        return self.engine.submit(
            ReleaseRequest(
                record_id=record_id,
                spec=self.spec,
                starting_context=starting_context,
                seed=seed,
            )
        )

    def release_many(
        self,
        record_ids: Sequence[int],
        starting_contexts: Optional[Sequence[Union[None, int, Context]]] = None,
        seed: RngLike = None,
    ) -> List[PCORResult]:
        """Release one private context per record, amortising shared work.

        All releases run against this instance's verifier, so the profile
        store (and hence the expensive uncached detector runs) is shared
        across records: a context profiled while searching for record ``i``
        is a cache hit when record ``j``'s search revisits it.  The records'
        exact contexts are additionally pre-profiled through one batched
        mask pass, which front-loads the first probe of every
        starting-context search (see :meth:`ReleaseEngine.submit_many`).

        Privacy accounting is unchanged from :meth:`release`: each record's
        release spends its own ``epsilon`` of OCDP budget.  **Caveat**: the
        per-release guarantees compose in the worst case *sequentially* —
        an individual appearing in the populations of several queried
        records is protected by ``k * epsilon`` over ``k`` releases, not
        ``epsilon``.  Only when the released contexts' populations are
        disjoint does parallel composition tighten the total back to
        ``epsilon``.  Budgeting across a multi-record release is the data
        owner's call, exactly as it is across repeated :meth:`release`
        calls.  *Parallel execution changes none of this*: a thread or
        process backend reorders only the wall-clock schedule — the set of
        releases, their per-record charges, and the worst-case sequential
        composition across them are identical to a serial run, and the
        whole batch is admitted against the budget before any backend task
        starts.

        Parameters
        ----------
        record_ids:
            The queried outliers, one release each (order preserved).
        starting_contexts:
            Optional per-record starting contexts, aligned with
            ``record_ids``; ``None`` entries fall back to the automatic
            starting-context search.
        seed:
            RNG seed/generator; the engine spawns one independent substream
            per record from it (in record order), so a single seed
            reproduces the whole batch — bit-identically on every execution
            backend at any worker count.
        """
        ids = [int(r) for r in record_ids]
        if starting_contexts is None:
            starts: List[Union[None, int, Context]] = [None] * len(ids)
        else:
            starts = list(starting_contexts)
            if len(starts) != len(ids):
                raise SamplingError(
                    f"starting_contexts has {len(starts)} entries for "
                    f"{len(ids)} record ids"
                )
        gen = ensure_rng(seed)
        return self.engine.submit_many(
            [
                ReleaseRequest(
                    record_id=rid, spec=self.spec, starting_context=start, seed=gen
                )
                for rid, start in zip(ids, starts)
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PCOR(detector={self.detector.name}, sampler={self.sampler.name}, "
            f"utility={self.utility_spec!r}, epsilon={self.epsilon})"
        )

"""The PCOR facade — Definition 3.2 end to end.

Composes a dataset, a deterministic outlier detector, a utility function, a
sampling algorithm and a total privacy budget into a single
``release(record_id)`` call that returns a valid, differentially private,
high-utility context:

>>> from repro import PCOR, BFSSampler, LOFDetector, salary_reduced
>>> dataset = salary_reduced(n_records=2000, seed=7)
>>> pcor = PCOR(dataset, LOFDetector(k=10), utility="population_size",
...             epsilon=0.2, sampler=BFSSampler(n_samples=50))
>>> result = pcor.release(record_id=17, seed=42)   # doctest: +SKIP

The facade owns the verifier (and thus the context-profile cache) so that
repeated releases against the same dataset amortise detector runs.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Union

from repro.context.context import Context
from repro.core.profiles import ProfileStore, shared_profile_store
from repro.core.result import PCORResult
from repro.core.sampling.base import Sampler
from repro.core.sampling.bfs import BFSSampler
from repro.core.starting import find_starting_context
from repro.core.utility import UtilityFunction, make_utility
from repro.core.verification import OutlierVerifier
from repro.data.table import Dataset
from repro.exceptions import SamplingError
from repro.mechanisms.accounting import epsilon_one_for
from repro.mechanisms.exponential import ExponentialMechanism
from repro.outliers.base import OutlierDetector
from repro.rng import RngLike, ensure_rng

#: A utility spec: registry name, or a factory (verifier, record_id,
#: starting_bits) -> UtilityFunction.
UtilitySpec = Union[str, Callable[[OutlierVerifier, int, Optional[int]], UtilityFunction]]


class PCOR:
    """Private contextual outlier release for one dataset + detector.

    Parameters
    ----------
    share_profiles:
        When true (and no explicit ``verifier`` is given), the verifier's
        context-profile memo is the process-wide
        :func:`~repro.core.profiles.shared_profile_store` for this
        ``(dataset, detector)`` pair, so every ``PCOR`` instance built over
        the same data amortises detector runs instead of rebuilding the
        cache from scratch.  Sharing only skips recomputation of
        deterministic profiles; it never changes a released context.
    profile_store:
        Explicit :class:`~repro.core.profiles.ProfileStore` for the
        verifier's memo (overrides ``share_profiles``).
    """

    def __init__(
        self,
        dataset: Dataset,
        detector: OutlierDetector,
        utility: UtilitySpec = "population_size",
        epsilon: float = 0.2,
        sampler: Optional[Sampler] = None,
        half_sensitivity: bool = False,
        verifier: Optional[OutlierVerifier] = None,
        share_profiles: bool = False,
        profile_store: Optional[ProfileStore] = None,
    ):
        self.dataset = dataset
        self.detector = detector
        self.utility_spec = utility
        self.epsilon = float(epsilon)
        self.sampler = sampler if sampler is not None else BFSSampler(n_samples=50)
        self.half_sensitivity = bool(half_sensitivity)
        if verifier is None:
            store = profile_store
            if store is None and share_profiles:
                store = shared_profile_store(dataset, detector)
            verifier = OutlierVerifier(dataset, detector, profile_store=store)
        elif profile_store is not None or share_profiles:
            raise SamplingError(
                "pass either an explicit verifier or profile_store/"
                "share_profiles, not both: the verifier already carries "
                "its own profile store"
            )
        self.verifier = verifier
        if self.verifier.dataset is not dataset:
            raise SamplingError("verifier was built for a different dataset")

    # ------------------------------------------------------------------ main

    def release(
        self,
        record_id: int,
        starting_context: Union[None, int, Context] = None,
        seed: RngLike = None,
    ) -> PCORResult:
        """Release one private context for ``record_id``.

        Parameters
        ----------
        record_id:
            The outlier ``V``.  Reporting the record itself is assumed to be
            permitted (paper Section 1); this call protects everyone else.
        starting_context:
            A valid context to start graph samplers from.  If omitted, a
            local search finds one (:func:`find_starting_context`).
        seed:
            RNG seed/generator for this release.
        """
        gen = ensure_rng(seed)
        t0 = time.perf_counter()
        fm_before = self.verifier.fm_evaluations

        starting_bits = self._resolve_starting_bits(record_id, starting_context, gen)
        utility = self._make_utility(record_id, starting_bits)

        eps1 = epsilon_one_for(
            self.sampler.accounting_name, self.epsilon, self.sampler.n_samples
        )
        mechanism = ExponentialMechanism(
            eps1,
            sensitivity=utility.sensitivity or 1.0,
            half_sensitivity=self.half_sensitivity,
        )

        run = self.sampler.sample(
            self.verifier, utility, record_id, starting_bits, mechanism, gen
        )
        if not run.candidates:
            raise SamplingError(
                f"sampler {self.sampler.name!r} collected no candidates for "
                f"record {record_id}"
            )

        scores = utility.scores(run.candidates)
        run.stats.mechanism_invocations += 1
        chosen, _ = mechanism.select(run.candidates, scores, gen)

        return PCORResult(
            context=Context(self.verifier.schema, chosen),
            record_id=record_id,
            utility_value=float(utility.score(chosen)),
            utility_name=utility.name,
            epsilon_total=self.epsilon,
            epsilon_one=eps1,
            algorithm=self.sampler.name,
            n_candidates=len(run.candidates),
            starting_context=(
                Context(self.verifier.schema, starting_bits)
                if starting_bits is not None
                else None
            ),
            stats=run.stats,
            fm_evaluations=self.verifier.fm_evaluations - fm_before,
            wall_time_s=time.perf_counter() - t0,
        )

    def release_many(
        self,
        record_ids: Sequence[int],
        starting_contexts: Optional[Sequence[Union[None, int, Context]]] = None,
        seed: RngLike = None,
    ) -> List[PCORResult]:
        """Release one private context per record, amortising shared work.

        All releases run against this instance's verifier, so the profile
        store (and hence the expensive uncached detector runs) is shared
        across records: a context profiled while searching for record ``i``
        is a cache hit when record ``j``'s search revisits it.  The records'
        exact contexts are additionally pre-profiled through one batched
        mask pass, which front-loads the first probe of every
        starting-context search.

        Privacy accounting is unchanged from :meth:`release`: each record's
        release spends its own ``epsilon`` of OCDP budget.  **Caveat**: the
        per-release guarantees compose in the worst case *sequentially* —
        an individual appearing in the populations of several queried
        records is protected by ``k * epsilon`` over ``k`` releases, not
        ``epsilon``.  Only when the released contexts' populations are
        disjoint does parallel composition tighten the total back to
        ``epsilon``.  Budgeting across a multi-record release is the data
        owner's call, exactly as it is across repeated :meth:`release`
        calls.

        Parameters
        ----------
        record_ids:
            The queried outliers, one release each (order preserved).
        starting_contexts:
            Optional per-record starting contexts, aligned with
            ``record_ids``; ``None`` entries fall back to the automatic
            starting-context search.
        seed:
            RNG seed/generator; all releases draw from the one stream, so a
            single seed reproduces the whole batch.
        """
        ids = [int(r) for r in record_ids]
        if starting_contexts is None:
            starts: List[Union[None, int, Context]] = [None] * len(ids)
        else:
            starts = list(starting_contexts)
            if len(starts) != len(ids):
                raise SamplingError(
                    f"starting_contexts has {len(starts)} entries for "
                    f"{len(ids)} record ids"
                )
        gen = ensure_rng(seed)
        # Warm the store with the exact context of every record whose
        # starting-context search will run (its first f_M probe), in one
        # batched pass.  Records with an explicit start — or a configuration
        # that never searches (e.g. uniform sampling with a start-free
        # utility) — skip the search, so pre-profiling them could only waste
        # detector runs.
        if self.sampler.requires_starting_context or self._utility_needs_start():
            needs_search = [
                r
                for r, start in zip(ids, starts)
                if start is None and self.dataset.has_record(r)
            ]
            if needs_search:
                self.verifier.profiles(
                    [self.dataset.record_bits(r) for r in needs_search]
                )
        return [
            self.release(rid, starting_context=start, seed=gen)
            for rid, start in zip(ids, starts)
        ]

    # ------------------------------------------------------------- internals

    def _resolve_starting_bits(
        self,
        record_id: int,
        starting_context: Union[None, int, Context],
        gen,
    ) -> Optional[int]:
        needs_start = self.sampler.requires_starting_context or self._utility_needs_start()
        if starting_context is None:
            if not needs_start:
                return None
            ctx = find_starting_context(self.verifier, record_id, gen)
            return ctx.bits
        bits = (
            starting_context.bits
            if isinstance(starting_context, Context)
            else int(starting_context)
        )
        if not self.verifier.is_matching(bits, record_id):
            raise SamplingError(
                f"starting context {bits:#x} is not a matching context for "
                f"record {record_id}; graph samplers must start from a valid "
                "context (Section 5.2)"
            )
        return bits

    def _utility_needs_start(self) -> bool:
        return self.utility_spec in ("overlap", "starting_distance")

    def _make_utility(
        self, record_id: int, starting_bits: Optional[int]
    ) -> UtilityFunction:
        if callable(self.utility_spec):
            return self.utility_spec(self.verifier, record_id, starting_bits)
        return make_utility(
            self.utility_spec, self.verifier, record_id, starting_bits
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PCOR(detector={self.detector.name}, sampler={self.sampler.name}, "
            f"utility={self.utility_spec!r}, epsilon={self.epsilon})"
        )

"""Contextual Outlier Enumeration ``COE_M`` (Definition 3.1).

``COE_M(D, V)`` is the set of *all* matching contexts of ``V``: contexts
containing ``V`` in which the detector flags ``V``.  It defines both the
candidate set of the direct approach (Algorithm 1) and the constraint
function of OCDP (f-neighbours share the same ``COE_M`` output).

The enumeration is exponential in ``t - m`` by nature — that's the paper's
whole complexity argument — so it is only runnable at reduced schema sizes,
guarded by the context-space enumeration limits.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional

from repro.context.space import DEFAULT_ENUMERATION_LIMIT, ContextSpace
from repro.core.verification import OutlierVerifier
from repro.exceptions import VerificationError


class COEEnumerator:
    """Full enumeration of matching contexts for records of one dataset."""

    def __init__(self, verifier: OutlierVerifier):
        self.verifier = verifier
        self.space = ContextSpace(verifier.schema)

    def iter_matching(
        self, record_id: int, limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT
    ) -> Iterator[int]:
        """Yield the bitmask of every matching context of ``record_id``.

        Only supersets of the record's own bits are enumerated — a context
        that does not contain ``V`` cannot match — which cuts the loop from
        ``2^t`` to ``2^(t-m)`` without changing the result.
        """
        if not self.verifier.dataset.has_record(record_id):
            raise VerificationError(f"record {record_id} not in dataset")
        record_bits = self.verifier.dataset.record_bits(record_id)
        for ctx in self.space.enumerate_containing(record_bits, limit=limit):
            if self.verifier.is_matching(ctx.bits, record_id):
                yield ctx.bits

    def coe(
        self, record_id: int, limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT
    ) -> FrozenSet[int]:
        """``COE_M(D, V)`` as a frozen set of context bitmasks."""
        return frozenset(self.iter_matching(record_id, limit=limit))

    def matching_contexts(
        self, record_id: int, limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT
    ) -> List[int]:
        """Matching contexts in deterministic (ascending bitmask) order."""
        return sorted(self.iter_matching(record_id, limit=limit))

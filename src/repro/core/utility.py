"""Utility functions over contexts (Section 3.2).

A utility function scores a context for a fixed outlier ``V``; non-matching
contexts score ``-inf`` so the Exponential mechanism assigns them
probability zero — the mechanics behind PCOR's validity guarantee
(property (a) of Definition 3.2).

The two paper utilities are:

* :class:`PopulationSizeUtility` — ``|D_C|``; larger populations mean a more
  significant outlier (Section 3.2.1).  Sensitivity 1.
* :class:`OverlapUtility` — ``|D_C intersect D_{C_V}|`` for a chosen
  starting context ``C_V`` (Section 3.2.2).  Sensitivity 1.

Two extra utilities demonstrate the "compatible with any utility function"
claim: :class:`StartingDistanceUtility` (structural closeness to a chosen
context) and :class:`SparsityUtility` (shorter context descriptions).  Both
are data-independent given validity, hence sensitivity 0 under the OCDP
constraint — only the validity gate can change between f-neighbours, and
f-neighbours share it by definition.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict

import numpy as np

from repro.core.verification import OutlierVerifier
from repro.exceptions import ContextError


class UtilityFunction(ABC):
    """Score contexts for one fixed outlier record.

    Instances are bound to a verifier and a record id; ``score(bits)``
    returns ``-inf`` for any context that is not a matching context of the
    record.
    """

    #: Registry/report name; subclasses override.
    name: str = "abstract"
    #: Sensitivity Delta_u of the matching-context score under add/remove.
    sensitivity: float = 1.0

    def __init__(self, verifier: OutlierVerifier, record_id: int):
        if not verifier.dataset.has_record(record_id):
            raise ContextError(f"record {record_id} not in dataset")
        self.verifier = verifier
        self.record_id = int(record_id)

    def score(self, bits: int) -> float:
        """Utility of context ``bits`` (``-inf`` when non-matching)."""
        if not self.verifier.is_matching(bits, self.record_id):
            return -math.inf
        return self._raw_score(bits)

    @abstractmethod
    def _raw_score(self, bits: int) -> float:
        """Score of a context already known to be matching."""

    def scores(self, bits_list) -> np.ndarray:
        """Vector of scores for a sequence of context bitmasks."""
        return np.array([self.score(b) for b in bits_list], dtype=np.float64)


class PopulationSizeUtility(UtilityFunction):
    """``u_V(D, C) = |D_C|`` for matching contexts (Section 3.2.1)."""

    name = "population_size"
    sensitivity = 1.0

    def _raw_score(self, bits: int) -> float:
        return float(self.verifier.population_size(bits))


class OverlapUtility(UtilityFunction):
    """``u_V(D, C) = |D_C intersect D_{C_V}|`` (Section 3.2.2).

    ``starting_bits`` is the chosen/starting context the analyst wants the
    released explanation to relate to.
    """

    name = "overlap"
    sensitivity = 1.0

    def __init__(self, verifier: OutlierVerifier, record_id: int, starting_bits: int):
        super().__init__(verifier, record_id)
        t = verifier.schema.t
        if starting_bits < 0 or starting_bits >> t:
            raise ContextError(f"starting_bits {starting_bits:#x} out of range for t={t}")
        self.starting_bits = int(starting_bits)
        self._starting_mask = verifier.masks.population_mask(starting_bits)
        self._overlap_cache: Dict[int, int] = {}

    def overlap_size(self, bits: int) -> int:
        """``|D_C intersect D_{C_V}|`` regardless of matching status."""
        cached = self._overlap_cache.get(bits)
        if cached is None:
            mask = self.verifier.masks.population_mask(bits)
            cached = int(np.count_nonzero(mask & self._starting_mask))
            self._overlap_cache[bits] = cached
        return cached

    def _raw_score(self, bits: int) -> float:
        return float(self.overlap_size(bits))


class StartingDistanceUtility(UtilityFunction):
    """``u = -HammingDistance(C, C_V)``: prefer contexts structurally close
    to a chosen context.  Data-independent scores => sensitivity 0 under the
    OCDP constraint."""

    name = "starting_distance"
    sensitivity = 0.0

    def __init__(self, verifier: OutlierVerifier, record_id: int, starting_bits: int):
        super().__init__(verifier, record_id)
        self.starting_bits = int(starting_bits)

    def _raw_score(self, bits: int) -> float:
        return -float((bits ^ self.starting_bits).bit_count())


class SparsityUtility(UtilityFunction):
    """``u = t - HammingWeight(C)``: prefer short, human-readable contexts.

    Data-independent scores => sensitivity 0 under the OCDP constraint."""

    name = "sparsity"
    sensitivity = 0.0

    def _raw_score(self, bits: int) -> float:
        return float(self.verifier.schema.t - bits.bit_count())


# --------------------------------------------------------------------- specs

#: Names accepted by :class:`repro.core.pcor.PCOR` for its ``utility=`` arg.
UTILITY_SPECS = {
    "population_size": PopulationSizeUtility,
    "overlap": OverlapUtility,
    "starting_distance": StartingDistanceUtility,
    "sparsity": SparsityUtility,
}


def make_utility(
    spec: str,
    verifier: OutlierVerifier,
    record_id: int,
    starting_bits: int | None = None,
) -> UtilityFunction:
    """Instantiate a utility function from its registry name."""
    if spec not in UTILITY_SPECS:
        raise ContextError(
            f"unknown utility {spec!r}; available: {sorted(UTILITY_SPECS)}"
        )
    cls = UTILITY_SPECS[spec]
    if cls in (OverlapUtility, StartingDistanceUtility):
        if starting_bits is None:
            raise ContextError(f"utility {spec!r} requires a starting context")
        return cls(verifier, record_id, starting_bits)
    return cls(verifier, record_id)

"""Utility functions over contexts (Section 3.2), batched end to end.

A utility function scores a context for a fixed outlier ``V``; non-matching
contexts score ``-inf`` so the Exponential mechanism assigns them
probability zero — the mechanics behind PCOR's validity guarantee
(property (a) of Definition 3.2).

The primary entry point is :meth:`UtilityFunction.scores`, which evaluates a
whole batch of contexts through one :meth:`OutlierVerifier.is_matching_many`
pass and one vectorised ``_raw_scores`` call over the matching subset.  The
scalar :meth:`UtilityFunction.score` is a thin wrapper over the batch path,
so every caller exercises the same engine.

The two paper utilities are:

* :class:`PopulationSizeUtility` — ``|D_C|``; larger populations mean a more
  significant outlier (Section 3.2.1).  Sensitivity 1.
* :class:`OverlapUtility` — ``|D_C intersect D_{C_V}|`` for a chosen
  starting context ``C_V`` (Section 3.2.2).  Sensitivity 1.  The
  intersection is computed word-wise on bit-packed masks plus popcount.

Two extra utilities demonstrate the "compatible with any utility function"
claim: :class:`StartingDistanceUtility` (structural closeness to a chosen
context) and :class:`SparsityUtility` (shorter context descriptions).  Both
are data-independent given validity, hence sensitivity 0 under the OCDP
constraint — only the validity gate can change between f-neighbours, and
f-neighbours share it by definition.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.bitops import active_kernels
from repro.core.memo import gather_batched
from repro.core.verification import OutlierVerifier
from repro.exceptions import ContextError


class UtilityFunction(ABC):
    """Score contexts for one fixed outlier record.

    Instances are bound to a verifier and a record id; ``score(bits)``
    returns ``-inf`` for any context that is not a matching context of the
    record.
    """

    #: Registry/report name; subclasses override.
    name: str = "abstract"
    #: Sensitivity Delta_u of the matching-context score under add/remove.
    sensitivity: float = 1.0

    def __init__(self, verifier: OutlierVerifier, record_id: int):
        if not verifier.dataset.has_record(record_id):
            raise ContextError(f"record {record_id} not in dataset")
        self.verifier = verifier
        self.record_id = int(record_id)

    def scores(self, bits_seq: Sequence[int]) -> np.ndarray:
        """Vector of scores for a batch of context bitmasks.

        One batched matching pass; ``-inf`` for non-matching contexts, the
        (vectorised) raw score for the rest.
        """
        bits_list = list(bits_seq)
        out = np.full(len(bits_list), -np.inf, dtype=np.float64)
        matching = self.verifier.is_matching_many(bits_list, self.record_id)
        idx = np.flatnonzero(matching)
        if idx.size:
            out[idx] = self._raw_scores([bits_list[i] for i in idx])
        return out

    def score(self, bits: int) -> float:
        """Utility of context ``bits`` (``-inf`` when non-matching)."""
        return float(self.scores([bits])[0])

    @abstractmethod
    def _raw_score(self, bits: int) -> float:
        """Score of a context already known to be matching."""

    def _raw_scores(self, bits_list: List[int]) -> np.ndarray:
        """Scores of contexts already known to be matching (vectorisable).

        The default delegates to the scalar :meth:`_raw_score`; built-in
        utilities override with batch kernels.
        """
        return np.array([self._raw_score(b) for b in bits_list], dtype=np.float64)


class PopulationSizeUtility(UtilityFunction):
    """``u_V(D, C) = |D_C|`` for matching contexts (Section 3.2.1)."""

    name = "population_size"
    sensitivity = 1.0

    def _raw_score(self, bits: int) -> float:
        return float(self.verifier.population_size(bits))

    def _raw_scores(self, bits_list: List[int]) -> np.ndarray:
        # Matching contexts were just profiled by the matching pass, so this
        # is pure cache reads.
        profiles = self.verifier.profiles(bits_list)
        return np.array([p[0] for p in profiles], dtype=np.float64)


class OverlapUtility(UtilityFunction):
    """``u_V(D, C) = |D_C intersect D_{C_V}|`` (Section 3.2.2).

    ``starting_bits`` is the chosen/starting context the analyst wants the
    released explanation to relate to.  Intersections are word-wise ANDs of
    bit-packed population masks plus a popcount, evaluated in batch.
    """

    name = "overlap"
    sensitivity = 1.0

    def __init__(self, verifier: OutlierVerifier, record_id: int, starting_bits: int):
        super().__init__(verifier, record_id)
        t = verifier.schema.t
        if starting_bits < 0 or starting_bits >> t:
            raise ContextError(f"starting_bits {starting_bits:#x} out of range for t={t}")
        self.starting_bits = int(starting_bits)
        self._starting_packed = verifier.masks.population_masks([starting_bits])[0]
        self._overlap_cache: Dict[int, int] = {}

    def overlap_sizes(self, bits_seq: Sequence[int]) -> np.ndarray:
        """``|D_C intersect D_{C_V}|`` for a batch, regardless of matching."""

        def compute_many(misses: List[int]) -> List[int]:
            packed = self.verifier.masks.population_masks(misses)
            w = self._starting_packed.shape[0]
            if packed.shape[1] > w:
                # An append grew the matrix mid-release: records beyond the
                # starting snapshot cannot be in the starting population, so
                # the extra words contribute nothing to the intersection.
                packed = np.ascontiguousarray(packed[:, :w])
            counts = active_kernels().intersect_counts(
                packed, self._starting_packed
            )
            return [int(c) for c in counts]

        sizes = gather_batched(
            [int(b) for b in bits_seq],
            self._overlap_cache.get,
            self._overlap_cache.__setitem__,
            compute_many,
        )
        return np.array(sizes, dtype=np.int64)

    def overlap_size(self, bits: int) -> int:
        """``|D_C intersect D_{C_V}|`` regardless of matching status."""
        return int(self.overlap_sizes([bits])[0])

    def _raw_score(self, bits: int) -> float:
        return float(self.overlap_size(bits))

    def _raw_scores(self, bits_list: List[int]) -> np.ndarray:
        return self.overlap_sizes(bits_list).astype(np.float64)


class StartingDistanceUtility(UtilityFunction):
    """``u = -HammingDistance(C, C_V)``: prefer contexts structurally close
    to a chosen context.  Data-independent scores => sensitivity 0 under the
    OCDP constraint."""

    name = "starting_distance"
    sensitivity = 0.0

    def __init__(self, verifier: OutlierVerifier, record_id: int, starting_bits: int):
        super().__init__(verifier, record_id)
        self.starting_bits = int(starting_bits)

    def _raw_score(self, bits: int) -> float:
        return -float((bits ^ self.starting_bits).bit_count())

    def _raw_scores(self, bits_list: List[int]) -> np.ndarray:
        start = self.starting_bits
        return np.array(
            [-(b ^ start).bit_count() for b in bits_list], dtype=np.float64
        )


class SparsityUtility(UtilityFunction):
    """``u = t - HammingWeight(C)``: prefer short, human-readable contexts.

    Data-independent scores => sensitivity 0 under the OCDP constraint."""

    name = "sparsity"
    sensitivity = 0.0

    def _raw_score(self, bits: int) -> float:
        return float(self.verifier.schema.t - bits.bit_count())

    def _raw_scores(self, bits_list: List[int]) -> np.ndarray:
        t = self.verifier.schema.t
        return np.array([t - b.bit_count() for b in bits_list], dtype=np.float64)


# ------------------------------------------------------------------- registry

#: A utility spec: registry name, or a factory
#: ``(verifier, record_id, starting_bits) -> UtilityFunction``.
UtilitySpec = Union[str, Callable[..., UtilityFunction]]


@dataclass(frozen=True)
class UtilityInfo:
    """Registry entry: factory plus the metadata the service layer needs.

    ``needs_starting_context`` replaces the old hardcoded
    ``("overlap", "starting_distance")`` tuple: the engine consults it to
    decide whether a starting-context search must run before the utility can
    be built (the factory then receives ``starting_bits`` positionally).
    """

    name: str
    factory: Callable[..., UtilityFunction]
    needs_starting_context: bool


_UTILITIES: Dict[str, UtilityInfo] = {}


def register_utility(
    name: str,
    factory: Callable[..., UtilityFunction],
    *,
    needs_starting_context: bool = False,
) -> None:
    """Register a utility factory under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _UTILITIES:
        raise ContextError(f"utility {name!r} already registered")
    _UTILITIES[key] = UtilityInfo(
        name=key,
        factory=factory,
        needs_starting_context=bool(needs_starting_context),
    )


def utility_info(name: str) -> UtilityInfo:
    """The registry entry for ``name``."""
    key = name.lower()
    if key not in _UTILITIES:
        raise ContextError(
            f"unknown utility {name!r}; available: {sorted(_UTILITIES)}"
        )
    return _UTILITIES[key]


def available_utilities() -> List[str]:
    """Names of all registered utilities."""
    return sorted(_UTILITIES)


def utility_needs_starting_context(
    spec: UtilitySpec, explicit: Optional[bool] = None
) -> bool:
    """Does ``spec`` need a starting context before it can be built?

    ``explicit`` overrides everything (the escape hatch for callable specs).
    Named specs answer from registry metadata; callables from their
    ``needs_starting_context`` attribute, defaulting to ``False``.
    """
    if explicit is not None:
        return bool(explicit)
    if isinstance(spec, str):
        return utility_info(spec).needs_starting_context
    return bool(getattr(spec, "needs_starting_context", False))


def make_utility(
    spec: str,
    verifier: OutlierVerifier,
    record_id: int,
    starting_bits: int | None = None,
    **kwargs,
) -> UtilityFunction:
    """Instantiate a utility function from its registry name."""
    info = utility_info(spec)
    if info.needs_starting_context:
        if starting_bits is None:
            raise ContextError(f"utility {spec!r} requires a starting context")
        return info.factory(verifier, record_id, starting_bits, **kwargs)
    return info.factory(verifier, record_id, **kwargs)


register_utility("population_size", PopulationSizeUtility)
register_utility("overlap", OverlapUtility, needs_starting_context=True)
register_utility(
    "starting_distance", StartingDistanceUtility, needs_starting_context=True
)
register_utility("sparsity", SparsityUtility)

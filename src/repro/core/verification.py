"""Outlier verification ``f_M(D_C, V)`` — batched, with a shared profile store.

``f_M`` answers "is record V an outlier in the population selected by
context C?".  Every sampler, the enumerator and both utility functions ask
this question about overlapping sets of contexts, so the verifier computes a
*context profile* — population size plus the full set of outlier record ids
— once per context bitmask and memoises it in a :class:`ProfileStore`.
This mirrors the paper's reference-file trick (Section 6.2) at the
granularity of a run (private store) or a whole process (shared store, see
:func:`repro.core.profiles.shared_profile_store`).

The core entry point is batched: :meth:`OutlierVerifier.profiles` partitions
a batch of contexts into cached and uncached, evaluates all uncached
population masks in one word-wise pass through the bit-packed
:class:`~repro.data.masks.PredicateMaskIndex`, then runs the detector once
per distinct uncached context.  :meth:`is_matching_many` layers the paper's
matching-context test on top, short-circuiting non-containing contexts with
pure bit tests so they never touch the detector.  The scalar APIs
(``context_profile``, ``is_matching`` ...) are thin wrappers over the batch
kernels.

The profile also powers both utility functions for free: population size is
the first profile component, and outlier-membership is a set lookup.
"""

from __future__ import annotations

import threading
from typing import FrozenSet, List, Optional, Sequence

import numpy as np

from repro.bitops import active_kernels
from repro.core.memo import gather_batched
from repro.core.profiles import ContextProfile, ProfileStore
from repro.data.masks import PredicateMaskIndex
from repro.data.table import Dataset
from repro.exceptions import VerificationError
from repro.outliers.base import OutlierDetector

__all__ = ["ContextProfile", "OutlierVerifier"]


class OutlierVerifier:
    """Cached, batch-capable implementation of the verification function ``f_M``."""

    def __init__(
        self,
        dataset: Dataset,
        detector: OutlierDetector,
        mask_index: Optional[PredicateMaskIndex] = None,
        profile_store: Optional[ProfileStore] = None,
        backend=None,
    ):
        self.dataset = dataset
        self.detector = detector
        self.masks = mask_index if mask_index is not None else PredicateMaskIndex(dataset)
        if self.masks.dataset is not dataset:
            raise VerificationError("mask index was built for a different dataset")
        self.profile_store = profile_store if profile_store is not None else ProfileStore()
        #: Optional :class:`~repro.runtime.base.ExecutionBackend`.  When set
        #: (and parallel), large uncached-profile batches fan out across its
        #: workers — this is the single hook that parallelises
        #: ``is_matching_many``, ``UtilityFunction.scores`` and every
        #: sampler's child expansion, since they all funnel through
        #: :meth:`profiles`.  Profiles are deterministic, so the backend can
        #: never change an answer, only the wall time.
        self.backend = backend
        self._counter_lock = threading.Lock()
        self._local = threading.local()
        self.fm_evaluations = 0  # number of *uncached* detector runs
        self.fm_queries = 0  # number of f_M questions asked (cached or not)

    @property
    def local_fm_evaluations(self) -> int:
        """Uncached detector runs charged by *this thread*.

        A release executes entirely on one thread (backends never split one
        request), so per-release cost deltas diff this counter instead of
        the shared :attr:`fm_evaluations` — which, under the thread backend,
        would attribute concurrent releases' runs to each other.
        """
        return getattr(self._local, "fm_evaluations", 0)

    @property
    def schema(self):
        return self.dataset.schema

    # ------------------------------------------------------------------ core

    def profiles(self, bits_seq: Sequence[int]) -> List[ContextProfile]:
        """Profiles of a whole batch of contexts (one entry per input).

        Cached contexts are answered from the store; the distinct uncached
        ones share a single batched population-mask pass, then get one
        detector run each over their population's metric values.

        Every store write is stamped with the dataset version captured at
        batch entry: if an append lands mid-batch, the computed profiles
        still answer *this* batch correctly (they describe the pre-append
        snapshot) but the store rejects them, so later callers never read a
        profile for a dataset that no longer exists.
        """
        version = self.masks.dataset_version
        store = self.profile_store
        return gather_batched(
            [int(b) for b in bits_seq],
            store.get,
            lambda bits, profile: store.put(bits, profile, version=version),
            self._compute_profiles,
        )

    def _compute_profiles(self, misses: List[int]) -> List[ContextProfile]:
        """Profile the distinct uncached contexts of one batch.

        Large batches fan out across the attached execution backend's
        workers (chunked contiguously, reduced in input order); everything
        else — and any batch arriving from inside a backend worker task —
        computes inline via :meth:`_profile_chunk`.
        """
        with self._counter_lock:
            self.fm_evaluations += len(misses)
        self._local.fm_evaluations = self.local_fm_evaluations + len(misses)
        backend = self.backend
        if (
            backend is not None
            and backend.parallel
            and len(misses) >= backend.min_profile_fanout
            and backend.inner_fanout_allowed()
        ):
            return backend.run_profiles(self, misses)
        return self._profile_chunk(misses)

    def _profile_chunk(self, misses: List[int]) -> List[ContextProfile]:
        """Profile one chunk of uncached contexts.

        No verifier counters and no cache writes happen here (the mask
        index's own evaluation counter is lock-protected), so chunks are
        safe to run concurrently from backend workers.  The whole chunk is
        evaluated against one index snapshot — masks, positions, ids and
        metric values all describe the same dataset even if an append
        commits mid-chunk."""
        snap = self.masks.snapshot()
        packed = self.masks.population_masks(misses, snapshot=snap)
        pops = active_kernels().popcount_rows(packed)
        n_records = len(snap.dataset)
        ids = snap.dataset.ids
        metric = snap.dataset.metric
        computed: List[ContextProfile] = []
        for k in range(len(misses)):
            pop = int(pops[k])
            if pop == 0:
                computed.append((0, frozenset()))
            else:
                positions = self.masks.positions_from_packed(
                    packed[k], n_records=n_records
                )
                outlier_pos = self.detector.outlier_positions(metric[positions])
                computed.append(
                    (pop, frozenset(int(ids[positions[p]]) for p in outlier_pos))
                )
        return computed

    def context_profile(self, bits: int) -> ContextProfile:
        """Population size and outlier record ids of context ``bits`` (cached).

        Fast scalar path: a store hit costs one dict lookup (no batch
        plumbing); only misses fall through to the batch compute kernel.
        """
        bits = int(bits)
        cached = self.profile_store.get(bits)
        if cached is not None:
            return cached
        version = self.masks.dataset_version
        profile = self._compute_profiles([bits])[0]
        self.profile_store.put(bits, profile, version=version)
        return profile

    def population_size(self, bits: int) -> int:
        return self.context_profile(bits)[0]

    def outlier_ids(self, bits: int) -> FrozenSet[int]:
        return self.context_profile(bits)[1]

    def is_matching_many(self, bits_seq: Sequence[int], record_id: int) -> np.ndarray:
        """The matching-context test for a whole batch of contexts.

        Returns a boolean array: entry ``k`` is ``True`` iff the record is
        contained in context ``bits_seq[k]`` *and* is an outlier there.
        Containment is a pure bit test, so non-containing contexts never
        trigger a detector run; the containing remainder is profiled through
        one batched :meth:`profiles` call.
        """
        bits_list = [int(b) for b in bits_seq]
        with self._counter_lock:
            self.fm_queries += len(bits_list)
        if not self.dataset.has_record(record_id):
            raise VerificationError(f"record {record_id} not in dataset")
        record_bits = self.dataset.record_bits(record_id)
        containing = [
            i for i, bits in enumerate(bits_list)
            if (record_bits & bits) == record_bits
        ]
        out = np.zeros(len(bits_list), dtype=bool)
        if containing:
            profiles = self.profiles([bits_list[i] for i in containing])
            rid = int(record_id)
            for i, profile in zip(containing, profiles):
                out[i] = rid in profile[1]
        return out

    def is_matching(self, bits: int, record_id: int) -> bool:
        """The paper's matching-context test: ``V in D_C`` and ``f_M = true``.

        Same semantics as a batch-of-one :meth:`is_matching_many`, minus the
        batch allocations — the tight scalar loops in the direct approach,
        the enumerator and the starting-context search call this once per
        context, so cache hits must stay a couple of dict lookups.
        """
        with self._counter_lock:
            self.fm_queries += 1
        if not self.dataset.has_record(record_id):
            raise VerificationError(f"record {record_id} not in dataset")
        record_bits = self.dataset.record_bits(record_id)
        if (record_bits & bits) != record_bits:
            return False
        return int(record_id) in self.context_profile(bits)[1]

    # --------------------------------------------------------------- plumbing

    def rebind(self, dataset: Dataset) -> None:
        """Point the verifier at the grown dataset after an index append.

        The caller (the release engine) must have already invalidated the
        profile store via :meth:`ProfileStore.invalidate_matching` with the
        new version, and ``dataset`` must be the one the shared mask index
        now serves — this only swaps the reference used for record lookups
        and containment tests.
        """
        if self.masks.dataset is not dataset:
            raise VerificationError(
                "rebind target does not match the mask index's dataset"
            )
        self.dataset = dataset

    def cache_size(self) -> int:
        return len(self.profile_store)

    def reset_counters(self) -> None:
        """Zero this verifier's counters plus the mask/store counters.

        When the verifier is backed by a *shared* profile store, the store's
        hit/miss/eviction counters are process-wide state: resetting here
        resets them for every other verifier on the same store.
        """
        self.fm_evaluations = 0
        self.fm_queries = 0
        self._local.fm_evaluations = 0  # calling thread's slice only
        self.masks.reset_counters()
        self.profile_store.reset_counters()

    def clear_cache(self) -> None:
        """Drop all memoised profiles.

        With a shared profile store this clears the cache for every PCOR
        instance sharing it — use a private store (the default) for
        measurement runs that clear between repetitions.
        """
        self.profile_store.clear()

"""Outlier verification ``f_M(D_C, V)`` with per-context caching (Section 3).

``f_M`` answers "is record V an outlier in the population selected by
context C?".  Every sampler, the enumerator and both utility functions ask
this question about overlapping sets of contexts, so the verifier computes a
*context profile* — population size plus the full set of outlier record ids
— once per context bitmask and memoises it.  This mirrors the paper's
reference-file trick (Section 6.2) at the granularity of a single run.

The profile also powers both utility functions for free: population size is
the first profile component, and outlier-membership is a set lookup.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.data.masks import PredicateMaskIndex
from repro.data.table import Dataset
from repro.exceptions import VerificationError
from repro.outliers.base import OutlierDetector

#: (population size, frozenset of outlier record ids)
ContextProfile = Tuple[int, FrozenSet[int]]


class OutlierVerifier:
    """Cached implementation of the verification function ``f_M``."""

    def __init__(
        self,
        dataset: Dataset,
        detector: OutlierDetector,
        mask_index: Optional[PredicateMaskIndex] = None,
    ):
        self.dataset = dataset
        self.detector = detector
        self.masks = mask_index if mask_index is not None else PredicateMaskIndex(dataset)
        if self.masks.dataset is not dataset:
            raise VerificationError("mask index was built for a different dataset")
        self._profiles: Dict[int, ContextProfile] = {}
        self.fm_evaluations = 0  # number of *uncached* detector runs
        self.fm_queries = 0  # number of f_M questions asked (cached or not)

    @property
    def schema(self):
        return self.dataset.schema

    # ------------------------------------------------------------------ core

    def context_profile(self, bits: int) -> ContextProfile:
        """Population size and outlier record ids of context ``bits`` (cached)."""
        cached = self._profiles.get(bits)
        if cached is not None:
            return cached
        self.fm_evaluations += 1
        positions, record_ids, metric_values = self.masks.population(bits)
        if positions.shape[0] == 0:
            profile: ContextProfile = (0, frozenset())
        else:
            outlier_pos = self.detector.outlier_positions(metric_values)
            profile = (
                int(positions.shape[0]),
                frozenset(int(record_ids[p]) for p in outlier_pos),
            )
        self._profiles[bits] = profile
        return profile

    def population_size(self, bits: int) -> int:
        return self.context_profile(bits)[0]

    def outlier_ids(self, bits: int) -> FrozenSet[int]:
        return self.context_profile(bits)[1]

    def is_matching(self, bits: int, record_id: int) -> bool:
        """The paper's matching-context test: ``V in D_C`` and ``f_M = true``.

        The containment test is a pure bit operation, so non-containing
        contexts never trigger a detector run.
        """
        self.fm_queries += 1
        if not self.dataset.has_record(record_id):
            raise VerificationError(f"record {record_id} not in dataset")
        record_bits = self.dataset.record_bits(record_id)
        if (record_bits & bits) != record_bits:
            return False
        return record_id in self.outlier_ids(bits)

    # --------------------------------------------------------------- plumbing

    def cache_size(self) -> int:
        return len(self._profiles)

    def reset_counters(self) -> None:
        self.fm_evaluations = 0
        self.fm_queries = 0
        self.masks.reset_counters()

    def clear_cache(self) -> None:
        self._profiles.clear()

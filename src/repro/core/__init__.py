"""The paper's primary contribution: PCOR and its five algorithms."""

from repro.core.direct import DirectPCOR
from repro.core.enumeration import COEEnumerator
from repro.core.pcor import PCOR
from repro.core.profiles import ContextProfile, ProfileStore, shared_profile_store
from repro.core.reference import ReferenceFile
from repro.core.result import PCORResult
from repro.core.sampling import (
    BFSSampler,
    DFSSampler,
    RandomWalkSampler,
    Sampler,
    SamplingStats,
    UniformSampler,
)
from repro.core.starting import find_starting_context, starting_context_from_reference
from repro.core.utility import (
    OverlapUtility,
    PopulationSizeUtility,
    SparsityUtility,
    StartingDistanceUtility,
    UtilityFunction,
)
from repro.core.verification import OutlierVerifier

__all__ = [
    "PCOR",
    "ContextProfile",
    "ProfileStore",
    "shared_profile_store",
    "PCORResult",
    "DirectPCOR",
    "OutlierVerifier",
    "COEEnumerator",
    "ReferenceFile",
    "UtilityFunction",
    "PopulationSizeUtility",
    "OverlapUtility",
    "SparsityUtility",
    "StartingDistanceUtility",
    "Sampler",
    "SamplingStats",
    "UniformSampler",
    "RandomWalkSampler",
    "DFSSampler",
    "BFSSampler",
    "find_starting_context",
    "starting_context_from_reference",
]

"""The paper's primary contribution: PCOR and its five algorithms."""

from repro.core.direct import DirectPCOR
from repro.core.enumeration import COEEnumerator
from repro.core.pcor import PCOR
from repro.core.profiles import ContextProfile, ProfileStore, shared_profile_store
from repro.core.reference import ReferenceFile
from repro.core.result import PCORResult
from repro.core.sampling import (
    BFSSampler,
    DFSSampler,
    RandomWalkSampler,
    Sampler,
    SamplerInfo,
    SamplingStats,
    UniformSampler,
    available_samplers,
    make_sampler,
    register_sampler,
    sampler_info,
)
from repro.core.starting import find_starting_context, starting_context_from_reference
from repro.core.utility import (
    OverlapUtility,
    PopulationSizeUtility,
    SparsityUtility,
    StartingDistanceUtility,
    UtilityFunction,
    UtilityInfo,
    available_utilities,
    make_utility,
    register_utility,
    utility_info,
    utility_needs_starting_context,
)
from repro.core.verification import OutlierVerifier

__all__ = [
    "PCOR",
    "ContextProfile",
    "ProfileStore",
    "shared_profile_store",
    "PCORResult",
    "DirectPCOR",
    "OutlierVerifier",
    "COEEnumerator",
    "ReferenceFile",
    "UtilityFunction",
    "PopulationSizeUtility",
    "OverlapUtility",
    "SparsityUtility",
    "StartingDistanceUtility",
    "Sampler",
    "SamplerInfo",
    "SamplingStats",
    "UniformSampler",
    "RandomWalkSampler",
    "DFSSampler",
    "BFSSampler",
    "UtilityInfo",
    "available_samplers",
    "available_utilities",
    "make_sampler",
    "make_utility",
    "register_sampler",
    "register_utility",
    "sampler_info",
    "utility_info",
    "utility_needs_starting_context",
    "find_starting_context",
    "starting_context_from_reference",
]

"""Starting-context search (Section 5.2, footnote 5).

Every graph-based sampler begins at a *valid* starting context ``C_V`` for
the queried outlier, which "the data owner can obtain through an initial
search".  Two strategies are provided:

* :func:`find_starting_context` — a containment-preserving random local
  search from the record's exact context, requiring no precomputation.
* :func:`starting_context_from_reference` — draw from the record's known
  matching contexts in a prebuilt :class:`~repro.core.reference.ReferenceFile`
  (what the paper's evaluation effectively does).

The local search only ever *adds* predicates outside the record's own bits
or removes previously added ones, so every visited context contains ``V`` by
construction and each check is a single ``f_M`` call.
"""

from __future__ import annotations

from typing import Optional

from repro.context.context import Context
from repro.core.reference import ReferenceFile
from repro.core.verification import OutlierVerifier
from repro.exceptions import SamplingError
from repro.rng import RngLike, ensure_rng


def find_starting_context(
    verifier: OutlierVerifier,
    record_id: int,
    rng: RngLike = None,
    max_steps: int = 2000,
    restarts: int = 8,
) -> Context:
    """Random local search for a matching context of ``record_id``.

    Starts each restart from the record's exact context and randomly toggles
    bits outside the record's own values, checking ``f_M`` after every move.
    Raises :class:`SamplingError` when no matching context is found within
    the step budget — the record may simply not be a contextual outlier.
    """
    gen = ensure_rng(rng)
    schema = verifier.schema
    record_bits = verifier.dataset.record_bits(record_id)
    free_bits = [b for b in range(schema.t) if not (record_bits >> b) & 1]

    if verifier.is_matching(record_bits, record_id):
        return Context(schema, record_bits)

    steps_per_restart = max(1, max_steps // max(1, restarts))
    for _ in range(max(1, restarts)):
        bits = record_bits
        # Begin from a random superset: diversifies restarts.
        for b in free_bits:
            if gen.random() < 0.5:
                bits |= 1 << b
        if verifier.is_matching(bits, record_id):
            return Context(schema, bits)
        for _ in range(steps_per_restart):
            if not free_bits:
                break
            b = free_bits[int(gen.integers(0, len(free_bits)))]
            bits ^= 1 << b
            if verifier.is_matching(bits, record_id):
                return Context(schema, bits)
    raise SamplingError(
        f"no matching context found for record {record_id} within "
        f"{max_steps} steps; is it a contextual outlier under this detector?"
    )


def starting_context_from_reference(
    reference: ReferenceFile,
    record_id: int,
    rng: RngLike = None,
    mode: str = "random",
) -> Context:
    """Pick a starting context from the record's known matching contexts.

    ``mode``:
      * ``"random"`` — uniform over matching contexts (default; what an
        initial search would plausibly land on),
      * ``"min"`` / ``"max"`` — smallest / largest population, giving
        worst/best-case starting points for ablations.
    """
    matching = reference.matching_contexts(record_id)
    if not matching:
        raise SamplingError(
            f"record {record_id} has no matching context in the reference file"
        )
    if mode == "random":
        gen = ensure_rng(rng)
        bits = matching[int(gen.integers(0, len(matching)))]
    elif mode == "min":
        bits = min(matching, key=reference.population_size)
    elif mode == "max":
        bits = max(matching, key=reference.population_size)
    else:
        raise SamplingError(f"unknown starting-context mode {mode!r}")
    return Context(reference.schema, bits)

"""Algorithm 5 — Differentially Private Breadth-First Search sampling.

The frontier ``C_M`` acts as a priority queue: at each iteration the
Exponential mechanism draws the next context to visit from the *whole*
frontier (weighted by utility), its matching unvisited children join the
frontier, and the loop continues until ``n`` contexts are visited or the
frontier empties.  Like DFS, each of the ``n`` draws costs
``2 * epsilon_1`` and the final selection another ``2 * epsilon_1``, so the
total is ``(2n + 2) * epsilon_1`` (Theorem 5.7).

BFS's edge over DFS (Tables 2-5): drawing from the whole frontier lets the
search jump to any promising region discovered so far instead of being
committed to the current branch.
"""

from __future__ import annotations

import numpy as np

from repro.core.sampling.base import Sampler, SamplingRun, SamplingStats, register_sampler
from repro.core.utility import UtilityFunction
from repro.core.verification import OutlierVerifier
from repro.exceptions import SamplingError
from repro.mechanisms.exponential import ExponentialMechanism


class BFSSampler(Sampler):
    """Utility-directed, privacy-randomised best-first (breadth) search."""

    name = "bfs"
    accounting_name = "bfs"
    requires_starting_context = True

    def sample(
        self,
        verifier: OutlierVerifier,
        utility: UtilityFunction,
        record_id: int,
        starting_bits: int | None,
        mechanism: ExponentialMechanism,
        rng: np.random.Generator,
    ) -> SamplingRun:
        if starting_bits is None:
            raise SamplingError("BFS needs a starting context")
        stats = SamplingStats()
        t = verifier.schema.t
        frontier: list[int] = [int(starting_bits)]
        frontier_set: set[int] = {int(starting_bits)}
        visited: list[int] = []
        visited_set: set[int] = set()

        while len(visited) < self.n_samples and frontier:
            stats.steps += 1
            scores = utility.scores(frontier)
            stats.mechanism_invocations += 1
            current, idx = mechanism.select(frontier, scores, rng)
            # Remove from the frontier (swap-pop keeps this O(1)).
            frontier[idx] = frontier[-1]
            frontier.pop()
            frontier_set.discard(current)

            visited.append(current)
            visited_set.add(current)
            stats.candidates_collected += 1

            # All t one-bit-flip children, tested in one batched f_M pass.
            children = [
                child
                for bit in range(t)
                if (child := current ^ (1 << bit)) not in visited_set
                and child not in frontier_set
            ]
            if children:
                stats.contexts_examined += len(children)
                matching = verifier.is_matching_many(children, record_id)
                for child, ok in zip(children, matching):
                    if ok:
                        frontier.append(child)
                        frontier_set.add(child)

        return SamplingRun(candidates=visited, stats=stats)


register_sampler("bfs", BFSSampler)

"""Sampling layer (Section 5): the polynomial-time route to PCOR.

Importing this package registers the four paper samplers in the sampler
registry (:func:`available_samplers` / :func:`make_sampler` /
:func:`sampler_info`), mirroring the detector registry in
:mod:`repro.outliers.base`.
"""

from repro.core.sampling.base import (
    Sampler,
    SamplerInfo,
    SamplingStats,
    available_samplers,
    make_sampler,
    register_sampler,
    sampler_info,
)
from repro.core.sampling.bfs import BFSSampler
from repro.core.sampling.dfs import DFSSampler
from repro.core.sampling.random_walk import RandomWalkSampler
from repro.core.sampling.uniform import UniformSampler

__all__ = [
    "Sampler",
    "SamplerInfo",
    "SamplingStats",
    "UniformSampler",
    "RandomWalkSampler",
    "DFSSampler",
    "BFSSampler",
    "available_samplers",
    "make_sampler",
    "register_sampler",
    "sampler_info",
]

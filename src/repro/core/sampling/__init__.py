"""Sampling layer (Section 5): the polynomial-time route to PCOR."""

from repro.core.sampling.base import Sampler, SamplingStats
from repro.core.sampling.bfs import BFSSampler
from repro.core.sampling.dfs import DFSSampler
from repro.core.sampling.random_walk import RandomWalkSampler
from repro.core.sampling.uniform import UniformSampler

__all__ = [
    "Sampler",
    "SamplingStats",
    "UniformSampler",
    "RandomWalkSampler",
    "DFSSampler",
    "BFSSampler",
]

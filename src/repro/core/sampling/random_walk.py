"""Algorithm 3 — Random Walk Sampling on the context graph.

Starting from a valid context ``C_V``, repeatedly pick a uniformly random
connected context (one-bit flip); if it matches, append it to the multiset
``C_M`` and walk there, otherwise strike it from the current neighbour set
and redraw.  If every neighbour of the current context is struck out, the
walk is stuck and collection stops early — exactly the paper's loop guard
``C_conn != empty``.

Privacy (Theorem 5.3): neighbour selection is uniform, hence
data-independent; only the final Exponential mechanism touches the data
through utilities, so the total cost is ``2 * epsilon_1``.  Complexity
(Theorem 5.4): O(n * t).
"""

from __future__ import annotations

import numpy as np

from repro.core.sampling.base import Sampler, SamplingRun, SamplingStats, register_sampler
from repro.core.utility import UtilityFunction
from repro.core.verification import OutlierVerifier
from repro.exceptions import SamplingError
from repro.mechanisms.exponential import ExponentialMechanism


class RandomWalkSampler(Sampler):
    """Utility-blind random walk over matching contexts.

    Parameters
    ----------
    n_samples:
        Pool size ``n``.
    restart_on_stuck:
        Extension beyond the paper's Algorithm 3: when every neighbour of
        the current context is struck out, jump back to the starting context
        and keep walking instead of stopping with a short pool.  Restarting
        is data-independent (it ignores utilities entirely), so Theorem
        5.3's privacy argument is unaffected.  Off by default for paper
        fidelity.
    """

    name = "random_walk"
    accounting_name = "random_walk"
    requires_starting_context = True

    def __init__(self, n_samples: int = 50, restart_on_stuck: bool = False):
        super().__init__(n_samples)
        self.restart_on_stuck = bool(restart_on_stuck)

    def sample(
        self,
        verifier: OutlierVerifier,
        utility: UtilityFunction,
        record_id: int,
        starting_bits: int | None,
        mechanism: ExponentialMechanism,
        rng: np.random.Generator,
    ) -> SamplingRun:
        if starting_bits is None:
            raise SamplingError("random walk needs a starting context")
        stats = SamplingStats()
        t = verifier.schema.t
        current = int(starting_bits)
        candidates: list[int] = [current]  # C_M initialised with C_V
        stats.candidates_collected += 1

        while len(candidates) < self.n_samples:
            stats.steps += 1
            # All t one-bit-flip neighbours of the current context, tested in
            # one batched f_M pass; the strike-out draw below then consumes
            # the precomputed answers.  Neighbour selection stays uniform and
            # data-independent, so Theorem 5.3 is untouched.  Trade-off vs
            # the lazy test-per-draw loop: in dense matching regions this
            # profiles containing neighbours the draw never reaches, but the
            # walk revisits neighbourhoods constantly, so the shared profile
            # store converts that eager work into cache hits.
            neighbors = [current ^ (1 << bit) for bit in range(t)]
            matching = verifier.is_matching_many(neighbors, record_id)
            stats.contexts_examined += t
            remaining = list(range(t))  # neighbour flips not yet struck out
            moved = False
            while remaining:
                pick = int(rng.integers(0, len(remaining)))
                bit = remaining.pop(pick)
                if matching[bit]:
                    candidates.append(neighbors[bit])  # multiset: repeats allowed
                    stats.candidates_collected += 1
                    current = neighbors[bit]
                    moved = True
                    break
            if not moved:
                # C_conn exhausted: the walk is stuck on an isolated matching
                # context (its matching neighbourhood is empty).
                if self.restart_on_stuck and current != int(starting_bits):
                    current = int(starting_bits)
                    continue
                # Paper behaviour: stop with a short pool (the final
                # mechanism still works on whatever was collected).
                break
        return SamplingRun(candidates=candidates, stats=stats)


register_sampler("random_walk", RandomWalkSampler)

"""Algorithm 2 — Uniform Sampling.

Draw random context bitvectors (each bit i.i.d. Bernoulli(p), p = 1/2 for
the uniform case) and keep the ones matching the queried outlier until ``n``
are collected.  Privacy (Theorem 5.1): the draw probability of a context is
data-independent, so the run costs the same ``2 * epsilon_1`` as the direct
approach.  Complexity (Theorem 5.2): expected ``n * 2^t / N`` draws for
``N`` matching contexts — still exponential, which the experiments confirm
(Table 2's 24-hour worst case).

``max_draws`` bounds the rejection loop so a record with few matching
contexts fails loudly instead of spinning forever.
"""

from __future__ import annotations

import numpy as np

from repro.context.space import ContextSpace
from repro.core.sampling.base import Sampler, SamplingRun, SamplingStats, register_sampler
from repro.core.utility import UtilityFunction
from repro.core.verification import OutlierVerifier
from repro.exceptions import SamplingError
from repro.mechanisms.exponential import ExponentialMechanism


class UniformSampler(Sampler):
    """Rejection-sample matching contexts from the whole space.

    Parameters
    ----------
    n_samples:
        Pool size ``n``.
    p:
        Per-bit inclusion probability (paper uses 1/2).
    max_draws:
        Hard cap on total draws before raising :class:`SamplingError`.
    """

    name = "uniform"
    accounting_name = "uniform"
    requires_starting_context = False

    #: Contexts drawn and tested per batched f_M pass.
    batch_size: int = 64

    def __init__(self, n_samples: int = 50, p: float = 0.5, max_draws: int = 2_000_000):
        super().__init__(n_samples)
        if not 0.0 < p < 1.0:
            raise SamplingError(f"p must be in (0, 1), got {p}")
        if max_draws < 1:
            raise SamplingError(f"max_draws must be >= 1, got {max_draws}")
        self.p = float(p)
        self.max_draws = int(max_draws)

    def sample(
        self,
        verifier: OutlierVerifier,
        utility: UtilityFunction,
        record_id: int,
        starting_bits: int | None,
        mechanism: ExponentialMechanism,
        rng: np.random.Generator,
    ) -> SamplingRun:
        space = ContextSpace(verifier.schema)
        stats = SamplingStats()
        candidates: list[int] = []
        while len(candidates) < self.n_samples:
            if stats.steps >= self.max_draws:
                raise SamplingError(
                    f"uniform sampling drew {stats.steps} contexts but found only "
                    f"{len(candidates)}/{self.n_samples} matching ones for record "
                    f"{record_id}; the matching set is too sparse for rejection "
                    "sampling (exactly the paper's complexity argument)"
                )
            # Draw a whole batch of contexts and test them in one batched
            # f_M pass; draws stay i.i.d. so Theorem 5.1 is untouched.
            batch = min(self.batch_size, self.max_draws - stats.steps)
            drawn = [c.bits for c in space.random_contexts(batch, rng, p=self.p)]
            stats.steps += batch
            stats.contexts_examined += batch
            matching = verifier.is_matching_many(drawn, record_id)
            for bits, ok in zip(drawn, matching):
                if ok:
                    candidates.append(bits)
                    stats.candidates_collected += 1
                    if len(candidates) >= self.n_samples:
                        break
        return SamplingRun(candidates=candidates, stats=stats)


register_sampler("uniform", UniformSampler)

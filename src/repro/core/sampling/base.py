"""Sampler interface shared by Algorithms 2-5.

A sampler collects a pool of candidate contexts (``C_M`` in the paper's
notation, or ``Visited`` for the searches); the PCOR facade then applies the
final Exponential mechanism over the pool.  Each sampler declares its budget
multiplier — the factor relating its total OCDP cost to the per-invocation
``epsilon_1`` — so the facade can split a total budget correctly
(see :mod:`repro.mechanisms.accounting`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.utility import UtilityFunction
from repro.core.verification import OutlierVerifier
from repro.exceptions import SamplingError
from repro.mechanisms.exponential import ExponentialMechanism


@dataclass
class SamplingStats:
    """Cost accounting for one sampling run (hardware-independent)."""

    candidates_collected: int = 0
    contexts_examined: int = 0  # matching checks the sampler issued
    mechanism_invocations: int = 0  # internal Exp-mechanism draws (DFS/BFS)
    steps: int = 0  # outer-loop iterations

    def merge(self, other: "SamplingStats") -> "SamplingStats":
        return SamplingStats(
            candidates_collected=self.candidates_collected + other.candidates_collected,
            contexts_examined=self.contexts_examined + other.contexts_examined,
            mechanism_invocations=self.mechanism_invocations + other.mechanism_invocations,
            steps=self.steps + other.steps,
        )


@dataclass
class SamplingRun:
    """Output of one sampler invocation: the candidate pool plus stats."""

    candidates: List[int] = field(default_factory=list)
    stats: SamplingStats = field(default_factory=SamplingStats)


class Sampler(ABC):
    """Collect ``n_samples`` candidate contexts for the final mechanism.

    Parameters
    ----------
    n_samples:
        Target pool size (the paper's ``n``).
    """

    #: Registry/report name; subclasses override.
    name: str = "abstract"
    #: Accounting key in :mod:`repro.mechanisms.accounting`.
    accounting_name: str = "abstract"
    #: Does this sampler need a valid starting context?
    requires_starting_context: bool = True

    def __init__(self, n_samples: int = 50):
        if n_samples < 1:
            raise SamplingError(f"n_samples must be >= 1, got {n_samples}")
        self.n_samples = int(n_samples)

    @abstractmethod
    def sample(
        self,
        verifier: OutlierVerifier,
        utility: UtilityFunction,
        record_id: int,
        starting_bits: int | None,
        mechanism: ExponentialMechanism,
        rng: np.random.Generator,
    ) -> SamplingRun:
        """Collect the candidate pool.

        ``mechanism`` carries the per-invocation ``epsilon_1``; only the
        search samplers (DFS/BFS) consult it during collection, but it is
        threaded everywhere for interface uniformity.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_samples={self.n_samples})"


# -------------------------------------------------------------------- registry


@dataclass(frozen=True)
class SamplerInfo:
    """Registry entry: factory plus the metadata the service layer needs.

    ``accounting_name`` keys into :mod:`repro.mechanisms.accounting` (the
    budget split), and ``requires_starting_context`` tells the engine whether
    a starting-context search must run before sampling — both are read from
    the registry instead of being hardcoded at call sites.
    """

    name: str
    factory: Callable[..., Sampler]
    accounting_name: str
    requires_starting_context: bool


_SAMPLERS: Dict[str, SamplerInfo] = {}


def register_sampler(
    name: str,
    factory: Callable[..., Sampler],
    *,
    accounting_name: Optional[str] = None,
    requires_starting_context: Optional[bool] = None,
) -> None:
    """Register a sampler factory under ``name`` (case-insensitive).

    Metadata defaults are read off the factory's class attributes, so
    registering a :class:`Sampler` subclass needs no extra arguments; explicit
    values let plain functions act as factories.
    """
    key = name.lower()
    if key in _SAMPLERS:
        raise SamplingError(f"sampler {name!r} already registered")
    if accounting_name is None:
        accounting_name = str(getattr(factory, "accounting_name", key))
    if requires_starting_context is None:
        requires_starting_context = bool(
            getattr(factory, "requires_starting_context", True)
        )
    _SAMPLERS[key] = SamplerInfo(
        name=key,
        factory=factory,
        accounting_name=accounting_name,
        requires_starting_context=requires_starting_context,
    )


def sampler_info(name: str) -> SamplerInfo:
    """The registry entry for ``name``."""
    key = name.lower()
    if key not in _SAMPLERS:
        raise SamplingError(
            f"unknown sampler {name!r}; available: {sorted(_SAMPLERS)}"
        )
    return _SAMPLERS[key]


def make_sampler(name: str, n_samples: int = 50, **kwargs) -> Sampler:
    """Instantiate a registered sampler by name."""
    return sampler_info(name).factory(n_samples=n_samples, **kwargs)


def available_samplers() -> List[str]:
    """Names of all registered samplers."""
    return sorted(_SAMPLERS)

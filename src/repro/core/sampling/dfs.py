"""Algorithm 4 — Differentially Private Depth-First Search sampling.

Plain DFS is deterministic, so neighbouring datasets could produce outputs
with probability 0 vs 1 — unfixable by output perturbation (Section 5.2.2).
The modification: at each expansion, the next child is drawn by the
Exponential mechanism over the *matching, unvisited* children of the stack
top, using the utility function itself.  Each of the ``n`` pushes costs
``2 * epsilon_1``; with the final selection the total is
``(2n + 2) * epsilon_1`` (Theorem 5.5).

Dead ends pop the stack (backtracking); collection ends when ``n`` contexts
are visited or the stack empties.
"""

from __future__ import annotations

import numpy as np

from repro.core.sampling.base import Sampler, SamplingRun, SamplingStats, register_sampler
from repro.core.utility import UtilityFunction
from repro.core.verification import OutlierVerifier
from repro.exceptions import SamplingError
from repro.mechanisms.exponential import ExponentialMechanism


class DFSSampler(Sampler):
    """Utility-directed, privacy-randomised depth-first search."""

    name = "dfs"
    accounting_name = "dfs"
    requires_starting_context = True

    def sample(
        self,
        verifier: OutlierVerifier,
        utility: UtilityFunction,
        record_id: int,
        starting_bits: int | None,
        mechanism: ExponentialMechanism,
        rng: np.random.Generator,
    ) -> SamplingRun:
        if starting_bits is None:
            raise SamplingError("DFS needs a starting context")
        stats = SamplingStats()
        t = verifier.schema.t
        stack: list[int] = [int(starting_bits)]
        visited: list[int] = []
        visited_set: set[int] = set()

        while len(visited) < self.n_samples and stack:
            stats.steps += 1
            top = stack[-1]
            if top not in visited_set:
                visited.append(top)
                visited_set.add(top)
                stats.candidates_collected += 1
                if len(visited) >= self.n_samples:
                    break

            # All t one-bit-flip children, tested in one batched f_M pass.
            unvisited = [
                child
                for bit in range(t)
                if (child := top ^ (1 << bit)) not in visited_set
            ]
            children: list[int] = []
            if unvisited:
                stats.contexts_examined += len(unvisited)
                matching = verifier.is_matching_many(unvisited, record_id)
                children = [c for c, ok in zip(unvisited, matching) if ok]

            if not children:
                stack.pop()
                continue

            scores = utility.scores(children)
            stats.mechanism_invocations += 1
            chosen, _ = mechanism.select(children, scores, rng)
            stack.append(chosen)

        return SamplingRun(candidates=visited, stats=stats)


register_sampler("dfs", DFSSampler)

"""Algorithm 1 — the direct (formulaic) approach.

Enumerate every matching context of ``V`` and apply the Exponential
mechanism once over all of them.  This is the gold standard for utility
(the whole ``COE_M`` is the candidate set) and the baseline every sampler
is compared against, but its cost is exponential in ``t``
(Theorem 4.2) — the paper's three-day reference computation.

``enumerate_mode``:
  * ``"containing"`` (default) — loop only over supersets of ``V``'s own
    bits (``2^(t-m)`` contexts).  Identical output distribution, since a
    context that does not contain ``V`` can never match.
  * ``"all"`` — the literal paper loop over all ``2^t`` bitmasks, kept for
    cost demonstrations.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.context.context import Context
from repro.context.space import DEFAULT_ENUMERATION_LIMIT, ContextSpace
from repro.core.result import PCORResult
from repro.core.sampling.base import SamplingStats
from repro.core.utility import UtilityFunction
from repro.core.verification import OutlierVerifier
from repro.exceptions import SamplingError
from repro.mechanisms.accounting import epsilon_one_for
from repro.mechanisms.exponential import ExponentialMechanism
from repro.rng import RngLike, ensure_rng


class DirectPCOR:
    """Direct application of the Exponential mechanism over ``COE_M(D, V)``."""

    name = "direct"

    def __init__(
        self,
        verifier: OutlierVerifier,
        epsilon: float = 0.2,
        enumerate_mode: str = "containing",
        limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT,
        half_sensitivity: bool = False,
    ):
        if enumerate_mode not in ("containing", "all"):
            raise SamplingError(
                f"enumerate_mode must be 'containing' or 'all', got {enumerate_mode!r}"
            )
        self.verifier = verifier
        self.epsilon = float(epsilon)
        self.enumerate_mode = enumerate_mode
        self.limit = limit
        self.half_sensitivity = bool(half_sensitivity)

    def release(
        self,
        utility: UtilityFunction,
        record_id: int,
        rng: RngLike = None,
    ) -> PCORResult:
        """Run Algorithm 1 for ``record_id`` with the given utility."""
        gen = ensure_rng(rng)
        t0 = time.perf_counter()
        fm_before = self.verifier.fm_evaluations
        space = ContextSpace(self.verifier.schema)
        stats = SamplingStats()

        candidates: list[int] = []
        if self.enumerate_mode == "containing":
            record_bits = self.verifier.dataset.record_bits(record_id)
            iterator = space.enumerate_containing(record_bits, limit=self.limit)
        else:
            iterator = space.enumerate_all(limit=self.limit)
        for ctx in iterator:
            stats.contexts_examined += 1
            if self.verifier.is_matching(ctx.bits, record_id):
                candidates.append(ctx.bits)
        stats.candidates_collected = len(candidates)

        if not candidates:
            raise SamplingError(
                f"record {record_id} has no matching context; COE_M is empty"
            )

        eps1 = epsilon_one_for("direct", self.epsilon)
        mechanism = ExponentialMechanism(
            eps1,
            sensitivity=utility.sensitivity or 1.0,
            half_sensitivity=self.half_sensitivity,
        )
        scores = utility.scores(candidates)
        stats.mechanism_invocations += 1
        chosen, _ = mechanism.select(candidates, scores, gen)

        return PCORResult(
            context=Context(self.verifier.schema, chosen),
            record_id=record_id,
            utility_value=float(utility.score(chosen)),
            utility_name=utility.name,
            epsilon_total=self.epsilon,
            epsilon_one=eps1,
            algorithm=self.name,
            n_candidates=len(candidates),
            starting_context=None,
            stats=stats,
            fm_evaluations=self.verifier.fm_evaluations - fm_before,
            wall_time_s=time.perf_counter() - t0,
        )

"""Execution backend protocol, registry and deterministic task seeding.

PCOR's cost is dominated by repeated detector runs over candidate contexts;
the work is embarrassingly parallel at two granularities — whole releases in
a ``release_many``/``submit_many`` batch, and batches of uncached context
profiles inside one release.  An :class:`ExecutionBackend` executes both
task shapes:

* :meth:`ExecutionBackend.run_releases` — one task per release request,
  fanned out across workers, reduced in request order.
* :meth:`ExecutionBackend.run_profiles` — one task per contiguous chunk of
  uncached context bitmasks, reduced in input order.  Every caller of
  ``OutlierVerifier.is_matching_many`` / ``UtilityFunction.scores`` — the
  samplers' child expansion included — funnels through this path.

**Determinism contract.**  Profiles are deterministic functions of the
context, so their fan-out cannot change any answer.  Releases draw
randomness, so :func:`plan_task_rngs` derives one *independent substream
per task* from the release seeds — spawned in request order (the stable
task key) — and results are always reduced in that canonical order.  Any
backend at any worker count therefore produces bit-identical releases to
:class:`~repro.runtime.serial.SerialBackend` for the same seed.

Backends are registered by name (``serial`` / ``thread`` / ``process``);
:func:`resolve_backend` also honours the ``PCOR_BACKEND`` and
``PCOR_WORKERS`` environment variables so a whole test suite or deployment
can be switched without code changes.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ExecutionError
from repro.rng import RngLike

#: Default worker-count ceiling when neither the caller nor the
#: ``PCOR_WORKERS`` environment variable names one.
DEFAULT_MAX_WORKERS = 4

#: A per-task seed token: either a spawned child generator (shared-generator
#: seeds) or a :class:`numpy.random.SeedSequence` (int / fresh-entropy
#: seeds).  Both are picklable, so tokens travel to process workers as-is.
SeedToken = Union[np.random.Generator, np.random.SeedSequence]


def default_workers() -> int:
    """Worker count from ``PCOR_WORKERS``, else ``min(4, cpu_count)``."""
    env = os.environ.get("PCOR_WORKERS")
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ExecutionError(
                f"PCOR_WORKERS must be an integer, got {env!r}"
            ) from None
        if workers < 1:
            raise ExecutionError(f"PCOR_WORKERS must be >= 1, got {workers}")
        return workers
    return max(1, min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1))


def chunk_evenly(items: Sequence, n_chunks: int) -> List[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-equal chunks.

    Contiguity keeps the reduce order canonical: concatenating the chunk
    results in chunk order reproduces the input order exactly.
    """
    n = len(items)
    if n == 0:
        return []
    n_chunks = max(1, min(int(n_chunks), n))
    quotient, remainder = divmod(n, n_chunks)
    out: List[list] = []
    start = 0
    for i in range(n_chunks):
        size = quotient + (1 if i < remainder else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


def plan_task_rngs(seeds: Sequence[RngLike]) -> List[SeedToken]:
    """One independent RNG substream token per task, by stable task key.

    The task key is the position in ``seeds`` (request order).  Seeds map to
    tokens as:

    * ``None`` — a fresh-entropy :class:`~numpy.random.SeedSequence` (the
      caller asked for nondeterminism);
    * ``int`` — ``SeedSequence(seed)``, which is exactly the stream
      ``default_rng(seed)`` would produce, so per-request integer seeds
      behave as they always did;
    * a shared :class:`~numpy.random.Generator` — one child spawned per
      occurrence, in order.  Spawning (rather than handing tasks the live
      object) is what makes the plan independent of execution order and
      worker count: the parent generator advances identically however the
      tasks are later scheduled.
    """
    tokens: List[SeedToken] = []
    for seed in seeds:
        if seed is None:
            tokens.append(np.random.SeedSequence())
        elif isinstance(seed, np.random.Generator):
            tokens.append(seed.spawn(1)[0])
        elif isinstance(seed, (int, np.integer)):
            tokens.append(np.random.SeedSequence(int(seed)))
        else:
            raise TypeError(
                f"seed must be None, an int, or a numpy Generator; got {type(seed)!r}"
            )
    return tokens


def rng_from_token(token: SeedToken) -> np.random.Generator:
    """Materialise the generator a task should draw from."""
    if isinstance(token, np.random.Generator):
        return token
    return np.random.default_rng(token)


class ExecutionBackend(ABC):
    """Executes PCOR's two task shapes over a pool of workers.

    Parameters
    ----------
    workers:
        Worker count; ``None`` reads ``PCOR_WORKERS`` and falls back to
        ``min(4, cpu_count)``.

    Class attributes
    ----------------
    remote:
        True when tasks execute outside this process (results do not pass
        through the engine's in-process counters).
    min_profile_fanout:
        Smallest uncached-profile batch worth fanning out; below it the
        verifier computes inline.  Process backends set this higher because
        every chunk pays an IPC round trip.
    """

    name: str = "abstract"
    remote: bool = False
    min_profile_fanout: int = 64

    def __init__(self, workers: Optional[int] = None):
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {self.workers}")
        self._stats_lock = threading.Lock()
        self.release_tasks = 0
        self.profile_tasks = 0
        self.task_wall_s = 0.0

    # ------------------------------------------------------------- protocol

    @abstractmethod
    def run_releases(self, engine, requests: Sequence, tokens: Sequence[SeedToken]) -> List:
        """Execute one release per request, reduced in request order.

        ``engine`` is the :class:`~repro.service.engine.ReleaseEngine` the
        batch was submitted to; in-process backends call its release core
        directly, the process backend ships self-contained task payloads to
        its worker pool instead.
        """

    @abstractmethod
    def run_profiles(self, verifier, misses: List[int]) -> List:
        """Profile a batch of uncached contexts, reduced in input order."""

    def close(self) -> None:
        """Release pools and shared-memory resources (idempotent)."""

    # ------------------------------------------------------------- plumbing

    @property
    def parallel(self) -> bool:
        """Can this backend actually fan work out?"""
        return self.workers > 1

    def inner_fanout_allowed(self) -> bool:
        """May a *nested* profile fan-out run right now?

        Pool-sharing backends return False from inside their own worker
        tasks so a release executing on the pool never re-enters it (which
        could deadlock a bounded pool).
        """
        return True

    def _count(self, *, releases: int = 0, profiles: int = 0, wall: float = 0.0) -> None:
        with self._stats_lock:
            self.release_tasks += releases
            self.profile_tasks += profiles
            self.task_wall_s += wall

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for :class:`~repro.service.engine.EngineMetrics`."""
        with self._stats_lock:
            return {
                "backend": self.name,
                "workers": self.workers,
                "release_tasks": self.release_tasks,
                "profile_tasks": self.profile_tasks,
                "task_wall_s": self.task_wall_s,
            }

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


# -------------------------------------------------------------------- registry

_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _BACKENDS:
        raise ExecutionError(f"backend {name!r} already registered")
    _BACKENDS[key] = factory


def make_backend(name: str, workers: Optional[int] = None) -> ExecutionBackend:
    """Instantiate a registered backend by name."""
    key = str(name).lower()
    if key not in _BACKENDS:
        raise ExecutionError(
            f"unknown backend {name!r}; available: {sorted(_BACKENDS)}"
        )
    return _BACKENDS[key](workers=workers)


def available_backends() -> List[str]:
    """Names of all registered execution backends."""
    return sorted(_BACKENDS)


def resolve_backend(
    backend: Union[None, str, ExecutionBackend] = None,
    workers: Optional[int] = None,
) -> ExecutionBackend:
    """Normalise a backend argument into an :class:`ExecutionBackend`.

    ``None`` consults the ``PCOR_BACKEND`` environment variable; absent
    that, ``workers > 1`` implies the process backend (asking for workers
    must never silently run serial — the CLI's ``--workers N`` promotes the
    same way) and otherwise serial is used.  A string goes through the
    registry; an instance is returned unchanged (``workers`` must then be
    omitted or match).
    """
    if isinstance(backend, ExecutionBackend):
        if workers is not None and int(workers) != backend.workers:
            raise ExecutionError(
                f"workers={workers} conflicts with the supplied "
                f"{backend.name} backend's workers={backend.workers}"
            )
        return backend
    if backend is None:
        backend = os.environ.get("PCOR_BACKEND")
    if backend is None:
        backend = "process" if workers is not None and int(workers) > 1 else "serial"
    return make_backend(backend, workers=workers)

"""The serial backend: in-process, single-worker execution (the default).

This is the reference implementation of the determinism contract — every
other backend must produce bit-identical releases to it for the same seed.
It executes tasks inline in task-key order, so there is no pool, no
shipping, and no cleanup.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.runtime.base import ExecutionBackend, SeedToken, rng_from_token


class SerialBackend(ExecutionBackend):
    """Run every task inline, in canonical order, on the calling thread."""

    name = "serial"

    def __init__(self, workers: Optional[int] = None):
        # A serial backend has exactly one (implicit) worker regardless of
        # what was asked for; accepting the argument keeps the registry
        # factory signature uniform.
        super().__init__(workers=1)

    def run_releases(self, engine, requests: Sequence, tokens: Sequence[SeedToken]) -> List:
        t0 = time.perf_counter()
        results = [
            engine._execute(request, rng_from_token(token))
            for request, token in zip(requests, tokens)
        ]
        self._count(releases=len(results), wall=time.perf_counter() - t0)
        return results

    def run_profiles(self, verifier, misses: List[int]) -> List:
        t0 = time.perf_counter()
        profiles = verifier._profile_chunk(misses)
        self._count(profiles=len(misses), wall=time.perf_counter() - t0)
        return profiles

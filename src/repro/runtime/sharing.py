"""Shared-memory transport of a dataset and its packed mask matrix.

The process backend must not pickle the dataset into every task: the record
codes, ids, metric column and the bit-packed ``t x ceil(n/64)`` uint64
predicate-mask matrix are written into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment per dataset,
once, at pool start.  Workers attach the segment in their initializer and
rebuild a :class:`~repro.data.table.Dataset` plus a
:class:`~repro.data.masks.PredicateMaskIndex` whose packed matrix is a
zero-copy read-only view straight into the segment — the single largest
shared structure never exists twice per worker.

Ownership: the exporting (parent) process is the only one that ever
unlinks.  Workers unregister their attachment from the resource tracker so
a worker crash or exit cannot tear the segment down under its siblings;
:meth:`SharedDatasetExport.close` is idempotent and also runs via a
``weakref.finalize`` on the owning backend, so segments are reclaimed even
when ``close()`` is never called explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

from repro.data.masks import PredicateMaskIndex
from repro.data.table import Dataset
from repro.schema import Schema

#: layout entry: (byte offset, shape, dtype string)
ArraySpec = Tuple[int, Tuple[int, ...], str]


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Everything a worker needs to attach: segment name, layout, schema.

    ``dataset_version`` is the append counter of the mask index the export
    snapshotted; workers use it to decide whether a task's handle is newer
    than the segment they are currently attached to (live rebind after a
    dataset append) — versions are monotone, so a plain ``>`` suffices.
    """

    shm_name: str
    layout: Dict[str, ArraySpec]
    schema: Schema
    dataset_version: int = 0


def _codes_key(attr_name: str) -> str:
    return f"codes:{attr_name}"


class SharedDatasetExport:
    """Parent-side owner of one dataset's shared-memory segment."""

    def __init__(self, dataset: Dataset, mask_index: PredicateMaskIndex):
        schema = dataset.schema
        # One coherent (packed, version) pair: an append racing this export
        # must not pair an old matrix with a new version stamp.
        snap = mask_index.snapshot()
        arrays: Dict[str, np.ndarray] = {
            _codes_key(attr.name): dataset.codes(attr.name)
            for attr in schema.attributes
        }
        arrays["ids"] = dataset.ids
        arrays["metric"] = dataset.metric
        arrays["masks"] = snap.packed

        layout: Dict[str, ArraySpec] = {}
        offset = 0
        for name, arr in arrays.items():
            offset = -(-offset // 8) * 8  # 8-byte alignment for every block
            layout[name] = (offset, tuple(arr.shape), arr.dtype.str)
            offset += arr.nbytes

        self.shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for name, arr in arrays.items():
            off, shape, dtype = layout[name]
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.shm.buf, offset=off)
            view[...] = arr

        self.handle = SharedDatasetHandle(
            shm_name=self.shm.name,
            layout=layout,
            schema=schema,
            dataset_version=snap.version,
        )
        self.nbytes = max(1, offset)
        self._closed = False

    def close(self) -> None:
        """Unlink the segment (idempotent; safe while workers are attached —
        POSIX keeps the memory alive until the last attachment closes)."""
        if self._closed:
            return
        self._closed = True
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedDatasetExport(name={self.shm.name!r}, bytes={self.nbytes}, "
            f"closed={self._closed})"
        )


def attach_shared_dataset(
    handle: SharedDatasetHandle,
) -> Tuple[Dataset, PredicateMaskIndex, shared_memory.SharedMemory]:
    """Worker-side rebuild of the dataset and mask index from a handle.

    The returned :class:`SharedMemory` must stay referenced for as long as
    the mask index lives: its packed matrix is a zero-copy view into the
    segment.  (The dataset's own columns are validated copies.)

    Tracker note: spawned workers share the parent's resource tracker, and
    the tracker's registry is a *set*, so every worker's attach-time
    registration dedupes against the exporter's own.  The single unregister
    in :meth:`SharedDatasetExport.close` therefore balances them all —
    workers never unlink and never unregister.
    """
    shm = shared_memory.SharedMemory(name=handle.shm_name)

    def view(name: str) -> np.ndarray:
        off, shape, dtype = handle.layout[name]
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        arr.flags.writeable = False
        return arr

    schema = handle.schema
    codes = {attr.name: view(_codes_key(attr.name)) for attr in schema.attributes}
    dataset = Dataset.from_codes(schema, codes, view("metric"), ids=view("ids"))
    masks = PredicateMaskIndex.from_packed(
        dataset, view("masks"), dataset_version=handle.dataset_version
    )
    return dataset, masks, shm

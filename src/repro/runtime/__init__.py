"""Parallel execution runtime: pluggable worker backends for PCOR.

Three registered backends execute the engine's fan-out points
(``submit_many`` request batches and uncached context-profile batches):

* ``serial`` — :class:`SerialBackend`, inline execution (the default and
  the determinism reference);
* ``thread`` — :class:`ThreadBackend`, an in-process pool sharing the
  engine's lock-protected profile stores;
* ``process`` — :class:`ProcessBackend`, spawned workers over a
  shared-memory copy of the dataset and its bit-packed mask matrix.

Every backend produces **bit-identical releases** for the same seed at any
worker count: randomness is planned as per-task substreams
(:func:`plan_task_rngs`) keyed by request order, and results are always
reduced in that canonical order.

Select a backend with ``ReleaseEngine(backend=...)``/``PCOR(backend=...)``,
per-spec via ``PipelineSpec.backend``, from the CLI via
``pcor release --backend process --workers 4``, or globally through the
``PCOR_BACKEND`` / ``PCOR_WORKERS`` environment variables.
"""

from repro.runtime.base import (
    DEFAULT_MAX_WORKERS,
    ExecutionBackend,
    available_backends,
    chunk_evenly,
    default_workers,
    make_backend,
    plan_task_rngs,
    register_backend,
    resolve_backend,
    rng_from_token,
)
from repro.runtime.process import ProcessBackend
from repro.runtime.serial import SerialBackend
from repro.runtime.sharing import (
    SharedDatasetExport,
    SharedDatasetHandle,
    attach_shared_dataset,
)
from repro.runtime.threads import ThreadBackend

register_backend("serial", SerialBackend)
register_backend("thread", ThreadBackend)
register_backend("process", ProcessBackend)

__all__ = [
    "DEFAULT_MAX_WORKERS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SharedDatasetExport",
    "SharedDatasetHandle",
    "attach_shared_dataset",
    "available_backends",
    "chunk_evenly",
    "default_workers",
    "make_backend",
    "plan_task_rngs",
    "register_backend",
    "resolve_backend",
    "rng_from_token",
]

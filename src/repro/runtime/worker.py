"""Worker-process runtime and task payloads for the process backend.

A worker is initialised once per process: it attaches the shared-memory
dataset segment, rebuilds the dataset and the zero-copy mask index, and
keeps a private, unbudgeted, strictly-serial
:class:`~repro.service.engine.ReleaseEngine` for the pool's lifetime.
Verifiers (and hence profile stores) persist across tasks, so a worker
amortises detector runs over every task it is handed.

Components cross the process boundary as *specs*, never as pickled
instances:

* named registry components travel as ``(name, kwargs)`` and rebuild
  through the registries;
* detector / sampler **instances** travel as their configuration
  fingerprint — class path plus public constructor parameters — and are
  re-validated against the original's
  :func:`~repro.core.profiles.detector_fingerprint` *before* shipping, so a
  class whose constructor cannot round-trip its configuration fails in the
  parent with a clear :class:`~repro.exceptions.ExecutionError` instead of
  crashing a worker.

Heavyweight imports (the service engine) happen lazily inside functions:
this module is imported by the backend in the parent process too, and must
not create an import cycle with :mod:`repro.service.engine`.
"""

from __future__ import annotations

import os
from importlib import import_module
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ExecutionError
from repro.runtime.base import rng_from_token
from repro.runtime.sharing import SharedDatasetHandle, attach_shared_dataset

_RUNTIME: Optional[Dict[str, Any]] = None


# ------------------------------------------------------------- initialisation


def _build_runtime(
    handle: SharedDatasetHandle, profile_capacity: Optional[int]
) -> Dict[str, Any]:
    """Attach ``handle`` and stand up a fresh serial engine over it."""
    from repro.core.profiles import DEFAULT_CAPACITY
    from repro.runtime.serial import SerialBackend
    from repro.service.engine import ReleaseEngine

    dataset, masks, shm = attach_shared_dataset(handle)
    # Workers are leaves: an explicit serial backend ignores any inherited
    # PCOR_BACKEND/PCOR_WORKERS environment, so a worker can never spawn
    # its own pool.
    engine = ReleaseEngine(
        dataset,
        mask_index=masks,
        backend=SerialBackend(),
        profile_capacity=(
            DEFAULT_CAPACITY if profile_capacity is None else int(profile_capacity)
        ),
    )
    return {
        "engine": engine,
        "shm": shm,
        "version": handle.dataset_version,
        "profile_capacity": profile_capacity,
    }


def initialize_worker(
    handle: SharedDatasetHandle, profile_capacity: Optional[int] = None
) -> None:
    """Process-pool initializer: attach shared memory, build the engine.

    ``profile_capacity`` carries the parent engine's profile-store bound so
    worker caches (which persist across tasks by design) respect the same
    memory ceiling the caller configured.
    """
    global _RUNTIME
    _RUNTIME = _build_runtime(handle, profile_capacity)


def _engine(shm_ref: Optional[Dict[str, Any]] = None):
    """The worker's engine, re-attached first if the task carries a newer
    shared segment (a live dataset append republished the export).

    Versions are monotone and superseded segments are unlinked by the
    parent, so a worker only ever moves forward: a stale ``shm_ref`` (task
    queued before a newer rebind was observed) is simply ignored.  The
    rebuilt engine starts with empty profile caches — correct by
    construction, since cached profiles describe the previous snapshot.
    """
    global _RUNTIME
    if _RUNTIME is None:
        raise ExecutionError(
            "worker runtime not initialised; tasks may only run on a pool "
            "started by ProcessBackend"
        )
    if shm_ref is not None:
        handle: SharedDatasetHandle = shm_ref["handle"]
        if handle.dataset_version > _RUNTIME["version"]:
            old = _RUNTIME
            _RUNTIME = _build_runtime(handle, old["profile_capacity"])
            old_shm = old.pop("shm")
            old.clear()  # drop the old engine (and its zero-copy views) now
            try:
                old_shm.close()
            except BufferError:  # pragma: no cover - view pinned by a cycle
                # mmap refuses to close while a numpy view is exported; the
                # collector will release it — the mapping lingers until then
                # (bounded: one superseded mapping per rebind, not a leak of
                # the segment itself, which the parent already unlinked).
                pass
    return _RUNTIME["engine"]


# ----------------------------------------------------------- component specs


def _resolve_class(module: str, qualname: str):
    obj: Any = import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _instance_payload(obj: object) -> Tuple:
    """Class path + public configuration of a detector/sampler instance."""
    params = {k: v for k, v in vars(obj).items() if not k.startswith("_")}
    return ("class", type(obj).__module__, type(obj).__qualname__, params)


def _rebuild_instance(payload: Tuple, what: str):
    _, module, qualname, params = payload
    try:
        cls = _resolve_class(module, qualname)
    except (ImportError, AttributeError) as exc:
        raise ExecutionError(
            f"cannot import {what} class {module}.{qualname}: {exc}"
        ) from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise ExecutionError(
            f"cannot rebuild {what} {qualname} from its public configuration "
            f"{sorted(params)}: {exc}; use a registry-named {what} (its spec "
            "ships as data) or give the class a constructor that accepts its "
            "public attributes"
        ) from None


def detector_payload(detector) -> Tuple:
    """Shippable spec of a detector: registry name or class fingerprint."""
    if isinstance(detector, str):
        return ("named", detector, {})
    return _instance_payload(detector)


def rebuild_detector(payload: Tuple):
    if payload[0] == "named":
        from repro.outliers.base import make_detector

        return make_detector(payload[1], **payload[2])
    return _rebuild_instance(payload, "detector")


def rebuild_sampler(payload: Tuple):
    if payload[0] == "named":
        from repro.core.sampling.base import make_sampler

        name, kwargs, n_samples = payload[1], payload[2], payload[3]
        return make_sampler(name, n_samples=n_samples, **kwargs)
    return _rebuild_instance(payload, "sampler")


def spec_payload(spec) -> Dict[str, Any]:
    """Shippable rendering of a :class:`~repro.service.spec.PipelineSpec`.

    Fully registry-named specs ship as their ``to_dict()`` form.  Specs
    carrying live components decompose into per-component payloads; callable
    utilities ship by pickle reference (the backend pre-validates
    picklability before any task is submitted).
    """
    if spec.is_serializable:
        return {"kind": "dict", "data": spec.to_dict()}
    if isinstance(spec.detector, str):
        det = ("named", spec.detector, dict(spec.detector_kwargs))
    else:
        det = _instance_payload(spec.detector)
    if isinstance(spec.sampler, str):
        smp: Tuple = ("named", spec.sampler, dict(spec.sampler_kwargs), spec.n_samples)
    else:
        smp = _instance_payload(spec.sampler)
    if isinstance(spec.utility, str):
        util: Tuple = ("named", spec.utility, dict(spec.utility_kwargs))
    else:
        util = ("callable", spec.utility, dict(spec.utility_kwargs))
    return {
        "kind": "parts",
        "detector": det,
        "sampler": smp,
        "utility": util,
        "epsilon": spec.epsilon,
        "n_samples": spec.n_samples,
        "half_sensitivity": spec.half_sensitivity,
        "utility_needs_start": spec.utility_needs_start,
    }


def rebuild_spec(payload: Dict[str, Any]):
    from repro.service.spec import PipelineSpec

    if payload["kind"] == "dict":
        return PipelineSpec.from_dict(payload["data"])
    det_p, smp_p, util_p = payload["detector"], payload["sampler"], payload["utility"]
    detector = det_p[1] if det_p[0] == "named" else rebuild_detector(det_p)
    detector_kwargs = det_p[2] if det_p[0] == "named" else {}
    sampler = smp_p[1] if smp_p[0] == "named" else rebuild_sampler(smp_p)
    sampler_kwargs = smp_p[2] if smp_p[0] == "named" else {}
    utility = util_p[1]
    utility_kwargs = util_p[2]
    return PipelineSpec(
        detector=detector,
        sampler=sampler,
        utility=utility,
        epsilon=payload["epsilon"],
        n_samples=payload["n_samples"],
        half_sensitivity=payload["half_sensitivity"],
        detector_kwargs=detector_kwargs,
        sampler_kwargs=sampler_kwargs,
        utility_kwargs=utility_kwargs,
        utility_needs_start=payload["utility_needs_start"],
    )


# -------------------------------------------------------------------- tasks


def run_release_task(payload: Dict[str, Any]):
    """One whole release, end to end, against the worker's engine.

    A sampled trace ships as ``{"trace_id", "t0"}``: the worker rebuilds
    a local :class:`~repro.obs.trace.Trace` on the parent's clock origin,
    records its spans, and rides them back on the (pickled) result as a
    ``trace_spans`` instance attribute — :class:`~repro.core.result.PCORResult`
    is frozen, but instance attributes set via ``object.__setattr__``
    live in ``__dict__``, survive pickling, and leave ``to_dict()`` and
    equality untouched.
    """
    from repro.service.engine import ReleaseRequest

    engine = _engine(payload.get("shm"))
    spec = rebuild_spec(payload["spec"])
    trace = None
    trace_ref = payload.get("trace")
    if trace_ref is not None:
        from repro.obs.trace import Trace

        trace = Trace(trace_ref["trace_id"], sampled=True, t0=trace_ref["t0"])
    request = ReleaseRequest(
        record_id=payload["record_id"],
        spec=spec,
        starting_context=payload["starting_bits"],
        trace=trace,
    )
    result = engine._execute(request, rng_from_token(payload["seed"]))
    if trace is not None:
        object.__setattr__(result, "trace_spans", trace.spans())
    return result


def run_profile_task(payload: Dict[str, Any]):
    """Profile one chunk of contexts against the worker's shared verifier."""
    engine = _engine(payload.get("shm"))
    detector = rebuild_detector(payload["detector"])
    verifier = engine.verifier_for(detector)
    return verifier.profiles(payload["bits"])


def ping_task(delay: float) -> int:
    """Warm-up no-op used by ``ProcessBackend.bind`` to force worker spawn.

    The short sleep keeps each already-spawned worker busy so the pool's
    lazy spawner brings up a fresh process for every queued ping.
    """
    import time

    time.sleep(float(delay))
    return os.getpid()


def crash_task(_payload) -> None:  # pragma: no cover - kills the process
    """Test hook: die abruptly, simulating a worker crash."""
    os._exit(13)

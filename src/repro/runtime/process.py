"""The process backend: spawned worker pool over shared-memory datasets.

On first use with a dataset, the backend writes the record codes, ids,
metric column and the bit-packed mask matrix into one shared-memory segment
(:class:`~repro.runtime.sharing.SharedDatasetExport`) and spawns a
``spawn``-context :class:`~concurrent.futures.ProcessPoolExecutor` whose
initializer attaches the segment and builds a per-worker serial engine.
Tasks then carry only their own payload — a request spec rendered as data
plus a picklable RNG substream token — so per-task IPC stays tiny however
large the dataset is.

Failure semantics: a worker dying mid-task surfaces as a clear
:class:`~repro.exceptions.ExecutionError` naming this backend (never a raw
``BrokenProcessPool``), and the pool plus shared memory are torn down
immediately so nothing leaks even on a crash.  Ordinary task exceptions
(``SamplingError`` etc.) propagate unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import threading
import time
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExecutionError
from repro.runtime.base import ExecutionBackend, SeedToken, chunk_evenly
from repro.runtime.sharing import SharedDatasetExport
from repro.runtime import worker as worker_mod


def _release_resources(export: Optional[SharedDatasetExport], pool) -> None:
    """GC/close-time cleanup; must never reference the backend itself.

    The pool is joined *before* the segment is unlinked, so a worker still
    running its initializer can finish attaching; crashed workers are
    already gone and join immediately.
    """
    if pool is not None:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    if export is not None:
        export.close()


class ProcessBackend(ExecutionBackend):
    """Fan tasks out across spawned worker processes."""

    name = "process"
    remote = True
    # Every chunk pays a pickle round trip, so small miss batches stay local.
    min_profile_fanout = 256

    @property
    def parallel(self) -> bool:
        """Always true: even one process worker executes out-of-process, so
        tasks ship (unlike serial/thread, where one worker means inline)."""
        return True

    #: Bound on the validated-payload memo dicts (FIFO eviction): a
    #: long-lived service submitting many ad-hoc specs must not accumulate
    #: entries (and pinned specs/verifiers) without limit.
    payload_cache_size = 64

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers)
        # Guards the pool/export lifecycle and the payload memos so
        # concurrent submitters cannot double-spawn (leaking a pool + shm
        # segment) or unbind a pool out from under an in-flight map.
        self._lifecycle_lock = threading.RLock()
        self._export: Optional[SharedDatasetExport] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        # Strong reference to the bound dataset: identity is the bind key,
        # and holding the object keeps a recycled id from silently aliasing
        # a *different* dataset onto a stale shared-memory export.
        self._dataset: Optional[Any] = None
        self._finalizer: Optional[weakref.finalize] = None
        # spec -> validated payload; keyed by id with a strong reference to
        # the spec so a recycled id can never alias a different spec.
        self._spec_payloads: Dict[int, Tuple[Any, Dict[str, Any]]] = {}
        self._detector_payloads: Dict[int, Tuple[Any, Tuple]] = {}

    # -------------------------------------------------------------- binding

    def bind(self, dataset, mask_index=None, profile_capacity: Optional[int] = None) -> None:
        """Export ``dataset`` and spawn the worker pool now (idempotent).

        Binding otherwise happens lazily on the first fan-out; call this to
        pay the spawn + shared-memory export cost up front (e.g. at service
        start) so the first batch runs at steady-state speed.
        """
        if mask_index is None:
            from repro.data.masks import PredicateMaskIndex

            mask_index = PredicateMaskIndex(dataset)
        pool = self._ensure_bound(dataset, mask_index, profile_capacity)
        # The executor spawns workers lazily on submission; pinging with one
        # short sleep per worker forces the whole pool (and every worker's
        # initializer) up now.
        self._map(pool, worker_mod.ping_task, [0.05] * self.workers)

    def _ensure_bound(
        self, dataset, mask_index, profile_capacity: Optional[int] = None
    ) -> ProcessPoolExecutor:
        """Export ``dataset``, spawn the pool (once per dataset), and return
        the pool *handle* the caller must ship its tasks through — holding
        the handle (rather than re-reading ``self._pool`` later) keeps a
        concurrent rebind to a different dataset from silently swapping the
        pool under an in-flight batch."""
        with self._lifecycle_lock:
            if self._pool is not None and self._dataset is dataset:
                return self._pool
            self._unbind()
            export = SharedDatasetExport(dataset, mask_index)
            try:
                pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=mp.get_context("spawn"),
                    initializer=worker_mod.initialize_worker,
                    initargs=(
                        export.handle,
                        profile_capacity,
                    ),
                )
            except Exception:
                export.close()
                raise
            self._export = export
            self._pool = pool
            self._dataset = dataset
            self._finalizer = weakref.finalize(self, _release_resources, export, pool)
            return pool

    def _unbind(self, expected_pool: Optional[ProcessPoolExecutor] = None) -> None:
        """Tear down the current binding.

        With ``expected_pool`` given, only tears down if that pool is still
        the bound one — a failing batch must not destroy a healthy pool the
        backend has since been rebound to.
        """
        with self._lifecycle_lock:
            if expected_pool is not None and self._pool is not expected_pool:
                return
            finalizer, self._finalizer = self._finalizer, None
            self._export = None
            self._pool = None
            self._dataset = None
        if finalizer is not None:
            finalizer()  # runs _release_resources exactly once

    def close(self) -> None:
        self._unbind()
        with self._lifecycle_lock:
            self._spec_payloads.clear()
            self._detector_payloads.clear()

    # ------------------------------------------------------------ shipping

    def _map(self, pool: Optional[ProcessPoolExecutor], fn, payloads: Sequence) -> List:
        """Ordered map over ``pool`` with crash translation and teardown."""
        if pool is None:
            with self._lifecycle_lock:
                pool = self._pool
        if pool is None:
            raise ExecutionError(f"{self.name} backend is not bound to a dataset")
        try:
            return list(pool.map(fn, payloads))
        except BrokenExecutor as exc:
            # The pool is unusable and its workers are gone; tear everything
            # down now (unless a rebind already replaced it) so the shared
            # segment cannot leak, then re-raise as a library error naming
            # the backend.
            self._unbind(expected_pool=pool)
            raise ExecutionError(
                f"{self.name} backend ({self.workers} workers) lost a worker "
                f"process mid-task ({type(exc).__name__}); the pool and its "
                "shared-memory segment were torn down — resubmit to respawn"
            ) from exc
        except RuntimeError as exc:
            # Only translate the executor's own shutdown complaint (a
            # concurrent close()/rebind mid-flight); any other RuntimeError
            # is an ordinary task exception and must propagate unchanged.
            if "after shutdown" not in str(exc):
                raise
            raise ExecutionError(
                f"{self.name} backend ({self.workers} workers) was shut down "
                f"while a batch was in flight: {exc}"
            ) from exc

    @staticmethod
    def _memoize(cache: Dict[int, Tuple[Any, Any]], key_obj: Any, value: Any, bound: int) -> None:
        """FIFO-bounded insert so long-lived services cannot accumulate
        entries (and the specs/verifiers they pin) without limit."""
        while len(cache) >= bound:
            cache.pop(next(iter(cache)))
        cache[id(key_obj)] = (key_obj, value)

    def _shippable_spec(self, spec) -> Dict[str, Any]:
        with self._lifecycle_lock:
            cached = self._spec_payloads.get(id(spec))
            if cached is not None and cached[0] is spec:
                return cached[1]
        payload = worker_mod.spec_payload(spec)
        self._validate_payload(payload, spec)
        with self._lifecycle_lock:
            self._memoize(self._spec_payloads, spec, payload, self.payload_cache_size)
        return payload

    def _validate_payload(self, payload: Dict[str, Any], spec) -> None:
        """Fail in the parent, with a clear error, before any task ships."""
        try:
            pickle.dumps(payload)
        except Exception as exc:
            raise ExecutionError(
                f"spec {spec!r} cannot be shipped to {self.name} workers: "
                f"{exc}; use registry-named components for process execution"
            ) from None
        rebuilt = worker_mod.rebuild_spec(payload)
        from repro.core.profiles import detector_fingerprint

        if detector_fingerprint(rebuilt.build_detector()) != detector_fingerprint(
            spec.build_detector()
        ):
            raise ExecutionError(
                f"detector {type(spec.build_detector()).__qualname__} does not "
                "round-trip through its public configuration; register it "
                f"(register_detector) to release via the {self.name} backend"
            )
        original_sampler = spec.build_sampler()
        rebuilt_sampler = rebuilt.build_sampler()
        if type(rebuilt_sampler) is not type(original_sampler) or vars(
            rebuilt_sampler
        ) != vars(original_sampler):
            raise ExecutionError(
                f"sampler {type(original_sampler).__qualname__} does not "
                "round-trip through its public configuration; register it "
                f"(register_sampler) to release via the {self.name} backend"
            )

    def _detector_payload_for(self, verifier) -> Tuple:
        with self._lifecycle_lock:
            cached = self._detector_payloads.get(id(verifier))
            if cached is not None and cached[0] is verifier:
                return cached[1]
        payload = worker_mod.detector_payload(verifier.detector)
        try:
            pickle.dumps(payload)
            rebuilt = worker_mod.rebuild_detector(payload)
            from repro.core.profiles import detector_fingerprint

            if detector_fingerprint(rebuilt) != detector_fingerprint(
                verifier.detector
            ):
                raise ExecutionError(
                    f"detector {type(verifier.detector).__qualname__} does not "
                    "round-trip through its public configuration"
                )
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError(
                f"detector {type(verifier.detector).__qualname__} cannot be "
                f"shipped to {self.name} workers: {exc}"
            ) from None
        with self._lifecycle_lock:
            self._memoize(
                self._detector_payloads, verifier, payload, self.payload_cache_size
            )
        return payload

    # ------------------------------------------------------------- protocol

    def run_releases(self, engine, requests: Sequence, tokens: Sequence[SeedToken]) -> List:
        t0 = time.perf_counter()
        pool = self._ensure_bound(engine.dataset, engine.masks, engine.profile_capacity)
        payloads = []
        for request, token in zip(requests, tokens):
            start = request.starting_context
            starting_bits = (
                None if start is None else int(getattr(start, "bits", start))
            )
            trace = getattr(request, "trace", None)
            payloads.append(
                {
                    "record_id": request.record_id,
                    "spec": self._shippable_spec(request.spec),
                    "starting_bits": starting_bits,
                    "seed": token,
                    # Sampled traces ship id + clock origin so worker spans
                    # land on the parent's timeline (CLOCK_MONOTONIC is
                    # system-wide); unsampled requests ship nothing.
                    "trace": (
                        {"trace_id": trace.trace_id, "t0": trace.t0}
                        if trace is not None and trace.sampled
                        else None
                    ),
                }
            )
        results = self._map(pool, worker_mod.run_release_task, payloads)
        for request, result in zip(requests, results):
            trace = getattr(request, "trace", None)
            if trace is not None:
                trace.extend(getattr(result, "trace_spans", None))
        self._count(releases=len(results), wall=time.perf_counter() - t0)
        return results

    def run_profiles(self, verifier, misses: List[int]) -> List:
        t0 = time.perf_counter()
        pool = self._ensure_bound(
            verifier.dataset, verifier.masks, verifier.profile_store.capacity
        )
        detector = self._detector_payload_for(verifier)
        payloads = [
            {"detector": detector, "bits": chunk}
            for chunk in chunk_evenly(misses, self.workers)
        ]
        profiles: List = []
        for part in self._map(pool, worker_mod.run_profile_task, payloads):
            profiles.extend(part)
        self._count(profiles=len(misses), wall=time.perf_counter() - t0)
        return profiles

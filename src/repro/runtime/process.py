"""The process backend: spawned worker pool over shared-memory datasets.

On first use with a dataset, the backend writes the record codes, ids,
metric column and the bit-packed mask matrix into one shared-memory segment
(:class:`~repro.runtime.sharing.SharedDatasetExport`) and spawns a
``spawn``-context :class:`~concurrent.futures.ProcessPoolExecutor` whose
initializer attaches the segment and builds a per-worker serial engine.
Tasks then carry only their own payload — a request spec rendered as data
plus a picklable RNG substream token — so per-task IPC stays tiny however
large the dataset is.

Live datasets: when the bound mask index reappears with a *new* dataset
snapshot (``ReleaseEngine.append`` committed between batches), the pool is
kept — a fresh export is published and each task carries its handle, so
workers re-attach lazily on their next task instead of paying a respawn.
The initargs segment stays alive for late-spawning workers; superseded
intermediate segments are unlinked immediately.

Failure semantics: a worker dying mid-task surfaces as a clear
:class:`~repro.exceptions.ExecutionError` naming this backend (never a raw
``BrokenProcessPool``), and the pool plus shared memory are torn down
immediately so nothing leaks even on a crash.  Ordinary task exceptions
(``SamplingError`` etc.) propagate unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import threading
import time
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExecutionError
from repro.runtime.base import ExecutionBackend, SeedToken, chunk_evenly
from repro.runtime.sharing import SharedDatasetExport
from repro.runtime import worker as worker_mod


def _release_resources(exports: List[SharedDatasetExport], pool) -> None:
    """GC/close-time cleanup; must never reference the backend itself.

    The pool is joined *before* the segments are unlinked, so a worker still
    running its initializer can finish attaching; crashed workers are
    already gone and join immediately.  ``exports`` is the backend's live
    mutable list — read at call time, so exports added by live rebinds after
    the finalizer was registered are still reclaimed.
    """
    if pool is not None:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    for export in list(exports):
        export.close()
    exports.clear()


class ProcessBackend(ExecutionBackend):
    """Fan tasks out across spawned worker processes."""

    name = "process"
    remote = True
    # Every chunk pays a pickle round trip, so small miss batches stay local.
    min_profile_fanout = 256

    @property
    def parallel(self) -> bool:
        """Always true: even one process worker executes out-of-process, so
        tasks ship (unlike serial/thread, where one worker means inline)."""
        return True

    #: Bound on the validated-payload memo dicts (FIFO eviction): a
    #: long-lived service submitting many ad-hoc specs must not accumulate
    #: entries (and pinned specs/verifiers) without limit.
    payload_cache_size = 64

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers)
        # Guards the pool/export lifecycle and the payload memos so
        # concurrent submitters cannot double-spawn (leaking a pool + shm
        # segment) or unbind a pool out from under an in-flight map.
        self._lifecycle_lock = threading.RLock()
        self._export: Optional[SharedDatasetExport] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        # Strong reference to the bound dataset: identity is the bind key,
        # and holding the object keeps a recycled id from silently aliasing
        # a *different* dataset onto a stale shared-memory export.
        self._dataset: Optional[Any] = None
        # The mask index the pool was spawned against.  When the *same*
        # index reappears with a *new* dataset (an append swapped the
        # engine's snapshot), the pool is kept and only a fresh export is
        # published — workers re-attach per task instead of respawning.
        self._mask_index: Optional[Any] = None
        # Export the pool's initargs name: it must outlive every rebind,
        # because a worker the executor spawns late still runs its
        # initializer against this segment before any task re-attaches it.
        self._initial_export: Optional[SharedDatasetExport] = None
        #: dataset_version baked into the pool initargs; tasks ship a
        #: re-attach handle only while the current export is newer.
        self._pool_version: int = 0
        # Every un-closed export, shared (as one mutable list) with the
        # finalizer so rebind-published segments are reclaimed too.
        self._live_exports: List[SharedDatasetExport] = []
        self._finalizer: Optional[weakref.finalize] = None
        # spec -> validated payload; keyed by id with a strong reference to
        # the spec so a recycled id can never alias a different spec.
        self._spec_payloads: Dict[int, Tuple[Any, Dict[str, Any]]] = {}
        self._detector_payloads: Dict[int, Tuple[Any, Tuple]] = {}

    # -------------------------------------------------------------- binding

    def bind(self, dataset, mask_index=None, profile_capacity: Optional[int] = None) -> None:
        """Export ``dataset`` and spawn the worker pool now (idempotent).

        Binding otherwise happens lazily on the first fan-out; call this to
        pay the spawn + shared-memory export cost up front (e.g. at service
        start) so the first batch runs at steady-state speed.
        """
        if mask_index is None:
            from repro.data.masks import PredicateMaskIndex

            mask_index = PredicateMaskIndex(dataset)
        pool, _ = self._ensure_bound(dataset, mask_index, profile_capacity)
        # The executor spawns workers lazily on submission; pinging with one
        # short sleep per worker forces the whole pool (and every worker's
        # initializer) up now.
        self._map(pool, worker_mod.ping_task, [0.05] * self.workers)

    def _current_shm_ref(self) -> Optional[Dict[str, Any]]:
        """Re-attach handle to ride on task payloads, or ``None`` while the
        current export is still the one the pool initargs carry (the common
        no-append case pays zero extra payload bytes).  Callers hold the
        lifecycle lock."""
        if (
            self._export is None
            or self._export.handle.dataset_version == self._pool_version
        ):
            return None
        return {"handle": self._export.handle}

    def _ensure_bound(
        self, dataset, mask_index, profile_capacity: Optional[int] = None
    ) -> Tuple[ProcessPoolExecutor, Optional[Dict[str, Any]]]:
        """Export ``dataset``, spawn or rebind the pool, and return the pool
        *handle* the caller must ship its tasks through plus the shm
        re-attach reference (``None`` unless a live append superseded the
        segment the pool was spawned with).  Holding the pool handle (rather
        than re-reading ``self._pool`` later) keeps a concurrent rebind to a
        different dataset from silently swapping the pool under an in-flight
        batch.

        Rebind semantics: when the *same mask index* comes back carrying a
        *new* dataset snapshot (``ReleaseEngine.append`` committed between
        batches), the spawned workers are kept — only a fresh export is
        published, and tasks carry its handle so each worker re-attaches
        lazily on its next task.  Anything else (different dataset, different
        index) is a cold rebind: tear down and respawn.
        """
        with self._lifecycle_lock:
            if self._pool is not None and self._mask_index is mask_index:
                if self._dataset is dataset:
                    return self._pool, self._current_shm_ref()
                if mask_index.dataset is dataset:
                    # Live append: publish the new snapshot, keep the pool.
                    export = SharedDatasetExport(dataset, mask_index)
                    superseded, self._export = self._export, export
                    self._dataset = dataset
                    self._live_exports.append(export)
                    if superseded is not None and superseded is not self._initial_export:
                        # Intermediate generation: no future task ships its
                        # handle, and attached workers keep their own
                        # mapping alive — safe to unlink now.
                        superseded.close()
                        self._live_exports.remove(superseded)
                    return self._pool, self._current_shm_ref()
            self._unbind()
            export = SharedDatasetExport(dataset, mask_index)
            try:
                pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=mp.get_context("spawn"),
                    initializer=worker_mod.initialize_worker,
                    initargs=(
                        export.handle,
                        profile_capacity,
                    ),
                )
            except Exception:
                export.close()
                raise
            self._export = export
            self._initial_export = export
            self._pool_version = export.handle.dataset_version
            self._live_exports = [export]
            self._pool = pool
            self._dataset = dataset
            self._mask_index = mask_index
            self._finalizer = weakref.finalize(
                self, _release_resources, self._live_exports, pool
            )
            return pool, None

    def _unbind(self, expected_pool: Optional[ProcessPoolExecutor] = None) -> None:
        """Tear down the current binding.

        With ``expected_pool`` given, only tears down if that pool is still
        the bound one — a failing batch must not destroy a healthy pool the
        backend has since been rebound to.
        """
        with self._lifecycle_lock:
            if expected_pool is not None and self._pool is not expected_pool:
                return
            finalizer, self._finalizer = self._finalizer, None
            self._export = None
            self._initial_export = None
            self._pool = None
            self._dataset = None
            self._mask_index = None
            self._pool_version = 0
            self._live_exports = []
        if finalizer is not None:
            finalizer()  # runs _release_resources exactly once

    def close(self) -> None:
        self._unbind()
        with self._lifecycle_lock:
            self._spec_payloads.clear()
            self._detector_payloads.clear()

    # ------------------------------------------------------------ shipping

    def _map(self, pool: Optional[ProcessPoolExecutor], fn, payloads: Sequence) -> List:
        """Ordered map over ``pool`` with crash translation and teardown."""
        if pool is None:
            with self._lifecycle_lock:
                pool = self._pool
        if pool is None:
            raise ExecutionError(f"{self.name} backend is not bound to a dataset")
        try:
            return list(pool.map(fn, payloads))
        except BrokenExecutor as exc:
            # The pool is unusable and its workers are gone; tear everything
            # down now (unless a rebind already replaced it) so the shared
            # segment cannot leak, then re-raise as a library error naming
            # the backend.
            self._unbind(expected_pool=pool)
            raise ExecutionError(
                f"{self.name} backend ({self.workers} workers) lost a worker "
                f"process mid-task ({type(exc).__name__}); the pool and its "
                "shared-memory segment were torn down — resubmit to respawn"
            ) from exc
        except RuntimeError as exc:
            # Only translate the executor's own shutdown complaint (a
            # concurrent close()/rebind mid-flight); any other RuntimeError
            # is an ordinary task exception and must propagate unchanged.
            if "after shutdown" not in str(exc):
                raise
            raise ExecutionError(
                f"{self.name} backend ({self.workers} workers) was shut down "
                f"while a batch was in flight: {exc}"
            ) from exc

    @staticmethod
    def _memoize(cache: Dict[int, Tuple[Any, Any]], key_obj: Any, value: Any, bound: int) -> None:
        """FIFO-bounded insert so long-lived services cannot accumulate
        entries (and the specs/verifiers they pin) without limit."""
        while len(cache) >= bound:
            cache.pop(next(iter(cache)))
        cache[id(key_obj)] = (key_obj, value)

    def _shippable_spec(self, spec) -> Dict[str, Any]:
        with self._lifecycle_lock:
            cached = self._spec_payloads.get(id(spec))
            if cached is not None and cached[0] is spec:
                return cached[1]
        payload = worker_mod.spec_payload(spec)
        self._validate_payload(payload, spec)
        with self._lifecycle_lock:
            self._memoize(self._spec_payloads, spec, payload, self.payload_cache_size)
        return payload

    def _validate_payload(self, payload: Dict[str, Any], spec) -> None:
        """Fail in the parent, with a clear error, before any task ships."""
        try:
            pickle.dumps(payload)
        except Exception as exc:
            raise ExecutionError(
                f"spec {spec!r} cannot be shipped to {self.name} workers: "
                f"{exc}; use registry-named components for process execution"
            ) from None
        rebuilt = worker_mod.rebuild_spec(payload)
        from repro.core.profiles import detector_fingerprint

        if detector_fingerprint(rebuilt.build_detector()) != detector_fingerprint(
            spec.build_detector()
        ):
            raise ExecutionError(
                f"detector {type(spec.build_detector()).__qualname__} does not "
                "round-trip through its public configuration; register it "
                f"(register_detector) to release via the {self.name} backend"
            )
        original_sampler = spec.build_sampler()
        rebuilt_sampler = rebuilt.build_sampler()
        if type(rebuilt_sampler) is not type(original_sampler) or vars(
            rebuilt_sampler
        ) != vars(original_sampler):
            raise ExecutionError(
                f"sampler {type(original_sampler).__qualname__} does not "
                "round-trip through its public configuration; register it "
                f"(register_sampler) to release via the {self.name} backend"
            )

    def _detector_payload_for(self, verifier) -> Tuple:
        with self._lifecycle_lock:
            cached = self._detector_payloads.get(id(verifier))
            if cached is not None and cached[0] is verifier:
                return cached[1]
        payload = worker_mod.detector_payload(verifier.detector)
        try:
            pickle.dumps(payload)
            rebuilt = worker_mod.rebuild_detector(payload)
            from repro.core.profiles import detector_fingerprint

            if detector_fingerprint(rebuilt) != detector_fingerprint(
                verifier.detector
            ):
                raise ExecutionError(
                    f"detector {type(verifier.detector).__qualname__} does not "
                    "round-trip through its public configuration"
                )
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError(
                f"detector {type(verifier.detector).__qualname__} cannot be "
                f"shipped to {self.name} workers: {exc}"
            ) from None
        with self._lifecycle_lock:
            self._memoize(
                self._detector_payloads, verifier, payload, self.payload_cache_size
            )
        return payload

    # ------------------------------------------------------------- protocol

    def run_releases(self, engine, requests: Sequence, tokens: Sequence[SeedToken]) -> List:
        t0 = time.perf_counter()
        pool, shm_ref = self._ensure_bound(
            engine.dataset, engine.masks, engine.profile_capacity
        )
        payloads = []
        for request, token in zip(requests, tokens):
            start = request.starting_context
            starting_bits = (
                None if start is None else int(getattr(start, "bits", start))
            )
            trace = getattr(request, "trace", None)
            payloads.append(
                {
                    "record_id": request.record_id,
                    "spec": self._shippable_spec(request.spec),
                    "starting_bits": starting_bits,
                    "seed": token,
                    # Sampled traces ship id + clock origin so worker spans
                    # land on the parent's timeline (CLOCK_MONOTONIC is
                    # system-wide); unsampled requests ship nothing.
                    "trace": (
                        {"trace_id": trace.trace_id, "t0": trace.t0}
                        if trace is not None and trace.sampled
                        else None
                    ),
                    "shm": shm_ref,
                }
            )
        results = self._map(pool, worker_mod.run_release_task, payloads)
        for request, result in zip(requests, results):
            trace = getattr(request, "trace", None)
            if trace is not None:
                trace.extend(getattr(result, "trace_spans", None))
        self._count(releases=len(results), wall=time.perf_counter() - t0)
        return results

    def run_profiles(self, verifier, misses: List[int]) -> List:
        t0 = time.perf_counter()
        pool, shm_ref = self._ensure_bound(
            verifier.dataset, verifier.masks, verifier.profile_store.capacity
        )
        detector = self._detector_payload_for(verifier)
        payloads = [
            {"detector": detector, "bits": chunk, "shm": shm_ref}
            for chunk in chunk_evenly(misses, self.workers)
        ]
        profiles: List = []
        for part in self._map(pool, worker_mod.run_profile_task, payloads):
            profiles.extend(part)
        self._count(profiles=len(misses), wall=time.perf_counter() - t0)
        return profiles

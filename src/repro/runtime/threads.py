"""The thread backend: a shared-memory-by-construction worker pool.

Threads share the engine's verifiers, so the whole batch amortises one
profile store (the :class:`~repro.core.profiles.ProfileStore` and
:class:`~repro.mechanisms.accounting.PrivacyAccountant` are lock-protected
for exactly this).  The GIL limits the speedup to whatever fraction of the
work NumPy releases it for, but there is zero shipping cost and no second
copy of anything — the right trade for cache-heavy batches and modest
datasets.  Determinism is inherited from the per-task RNG substream plan;
thread scheduling cannot reorder anything because results are gathered by
task key.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from repro.runtime.base import (
    ExecutionBackend,
    SeedToken,
    chunk_evenly,
    rng_from_token,
)


class ThreadBackend(ExecutionBackend):
    """Fan tasks out over a lazily created :class:`ThreadPoolExecutor`."""

    name = "thread"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._busy = threading.local()

    # ------------------------------------------------------------- plumbing

    @property
    def pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="pcor-worker"
                )
            return self._pool

    def inner_fanout_allowed(self) -> bool:
        # A release already running on this pool must not fan its profile
        # misses back onto the same (bounded) pool: with every worker busy
        # the inner tasks would never start.  Such tasks compute inline.
        return not getattr(self._busy, "active", False)

    def _guarded(self, fn: Callable, *args):
        self._busy.active = True
        try:
            return fn(*args)
        finally:
            self._busy.active = False

    # ------------------------------------------------------------- protocol

    def run_releases(self, engine, requests: Sequence, tokens: Sequence[SeedToken]) -> List:
        t0 = time.perf_counter()
        futures = [
            self.pool.submit(self._guarded, engine._execute, request, rng_from_token(token))
            for request, token in zip(requests, tokens)
        ]
        # Gather by task key; a failed task raises here with its original
        # exception while the remaining futures run to completion.
        results = [future.result() for future in futures]
        self._count(releases=len(results), wall=time.perf_counter() - t0)
        return results

    def run_profiles(self, verifier, misses: List[int]) -> List:
        t0 = time.perf_counter()
        chunks = chunk_evenly(misses, self.workers)
        futures = [
            self.pool.submit(self._guarded, verifier._profile_chunk, chunk)
            for chunk in chunks
        ]
        profiles: List = []
        for future in futures:
            profiles.extend(future.result())
        self._count(profiles=len(misses), wall=time.perf_counter() - t0)
        return profiles

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

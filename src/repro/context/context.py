"""The context bitvector of Section 3.

A context ``C`` is a binary vector ``<c_11 .. c_1|A1| .. c_m1 .. c_m|Am|>``
of length ``t = sum(|A_i|)``; bit ``c_ij = 1`` means predicate
``A_i = v_ij`` is part of the context.  The context filters the dataset as a
conjunction over attributes of disjunctions over selected values.

We store the vector as a single Python ``int`` — immutable, hashable,
O(t/64) bit operations, and ``int.bit_count()`` gives the Hamming weight for
free.  :class:`Context` is a thin frozen wrapper binding bits to a schema so
that contexts from different schemas can never be confused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping, Sequence, Tuple

from repro.exceptions import ContextError
from repro.schema import Predicate, Schema


@dataclass(frozen=True)
class Context:
    """An immutable context bitvector bound to a schema."""

    schema: Schema
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 0 or self.bits >> self.schema.t:
            raise ContextError(
                f"bits {self.bits:#x} out of range for t={self.schema.t}"
            )

    # ----------------------------------------------------------- constructors

    @classmethod
    def from_predicates(
        cls, schema: Schema, predicates: Mapping[str, Sequence[str]]
    ) -> "Context":
        """Build a context from ``{attribute: [selected values...]}``."""
        bits = 0
        for attr_name, values in predicates.items():
            for value in values:
                bits |= 1 << schema.bit_for(attr_name, value)
        return cls(schema, bits)

    @classmethod
    def from_bitstring(cls, schema: Schema, bitstring: str) -> "Context":
        """Build from the paper's vector notation, e.g. ``"101001010"``.

        The paper writes vectors left-to-right as ``c_11 c_12 ...``, i.e. the
        first character is bit 0.
        """
        clean = bitstring.strip()
        if len(clean) != schema.t or set(clean) - {"0", "1"}:
            raise ContextError(
                f"bitstring must be {schema.t} characters of 0/1, got {bitstring!r}"
            )
        bits = 0
        for pos, ch in enumerate(clean):
            if ch == "1":
                bits |= 1 << pos
        return cls(schema, bits)

    @classmethod
    def full(cls, schema: Schema) -> "Context":
        """The whole-domain context (every predicate selected)."""
        return cls(schema, schema.full_bits)

    @classmethod
    def exact(cls, schema: Schema, record: Mapping[str, str]) -> "Context":
        """The smallest context containing ``record`` (its own values only)."""
        return cls(schema, schema.record_bits(record))

    # ------------------------------------------------------------- bit access

    def __contains__(self, bit: int) -> bool:
        return bool((self.bits >> bit) & 1)

    def __len__(self) -> int:
        return self.schema.t

    @property
    def hamming_weight(self) -> int:
        """Number of selected predicates."""
        return self.bits.bit_count()

    def hamming_distance(self, other: "Context") -> int:
        self._check_same_schema(other)
        return (self.bits ^ other.bits).bit_count()

    def is_connected_to(self, other: "Context") -> bool:
        """Paper's connectivity: Hamming distance exactly 1."""
        return self.hamming_distance(other) == 1

    def with_bit(self, bit: int) -> "Context":
        self._check_bit(bit)
        return Context(self.schema, self.bits | (1 << bit))

    def without_bit(self, bit: int) -> "Context":
        self._check_bit(bit)
        return Context(self.schema, self.bits & ~(1 << bit))

    def flip_bit(self, bit: int) -> "Context":
        """The connected context differing in exactly this predicate."""
        self._check_bit(bit)
        return Context(self.schema, self.bits ^ (1 << bit))

    def neighbors(self) -> Iterator["Context"]:
        """All ``t`` contexts at Hamming distance 1 (graph neighbours)."""
        for bit in range(self.schema.t):
            yield self.flip_bit(bit)

    # -------------------------------------------------------------- structure

    def block_bits(self, attr_index: int) -> int:
        """The sub-bitmask of attribute ``attr_index``, shifted to zero."""
        off = self.schema.offsets[attr_index]
        size = len(self.schema.attributes[attr_index])
        return (self.bits >> off) & ((1 << size) - 1)

    @property
    def is_structurally_valid(self) -> bool:
        """True iff every attribute block selects at least one value.

        The paper: "any non-empty context should include at least one
        predicate of each attribute" — minimum Hamming weight ``m``.
        """
        return all(self.block_bits(i) != 0 for i in range(self.schema.m))

    def contains_record_bits(self, record_bits: int) -> bool:
        """Does this context contain a record with exact-context ``record_bits``?"""
        return (record_bits & self.bits) == record_bits

    def intersection(self, other: "Context") -> "Context":
        self._check_same_schema(other)
        return Context(self.schema, self.bits & other.bits)

    def union(self, other: "Context") -> "Context":
        self._check_same_schema(other)
        return Context(self.schema, self.bits | other.bits)

    # ------------------------------------------------------------- rendering

    def selected_predicates(self) -> List[Predicate]:
        """The predicates selected by this context, in bit order."""
        return [
            self.schema.predicate_at(bit)
            for bit in range(self.schema.t)
            if (self.bits >> bit) & 1
        ]

    def selected_values(self) -> Mapping[str, Tuple[str, ...]]:
        """``{attribute: (selected values...)}``."""
        out = {}
        for i, attr in enumerate(self.schema.attributes):
            block = self.block_bits(i)
            out[attr.name] = tuple(
                attr.domain[j] for j in range(len(attr)) if (block >> j) & 1
            )
        return out

    def to_bitstring(self) -> str:
        """Paper-style left-to-right vector notation."""
        return "".join(
            "1" if (self.bits >> pos) & 1 else "0" for pos in range(self.schema.t)
        )

    def describe(self) -> str:
        """SQL-ish rendering: ``[A IN {v1, v2}] AND [B IN {v3}]``."""
        parts = []
        for attr_name, values in self.selected_values().items():
            if not values:
                parts.append(f"[{attr_name} IN {{}}]")
            else:
                parts.append(f"[{attr_name} IN {{{', '.join(values)}}}]")
        return " AND ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Context({self.to_bitstring()!r})"

    # -------------------------------------------------------------- internals

    def _check_bit(self, bit: int) -> None:
        if not 0 <= bit < self.schema.t:
            raise ContextError(f"bit {bit} out of range for t={self.schema.t}")

    def _check_same_schema(self, other: "Context") -> None:
        if other.schema is not self.schema and other.schema != self.schema:
            raise ContextError("contexts belong to different schemas")

"""The space of all contexts over a schema.

Provides enumeration (all ``2^t`` bitmasks, or only the structurally valid
ones), uniform random draws, and counting — the raw material for the direct
approach (Algorithm 1), uniform sampling (Algorithm 2) and the reference
file of Section 6.2.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional

import numpy as np

from repro.bitops import bool_matrix_to_ints, bool_to_int, int_to_bool
from repro.context.context import Context
from repro.exceptions import EnumerationError
from repro.rng import RngLike, ensure_rng
from repro.schema import Schema

# A soft cap: full enumeration above this many contexts is almost certainly a
# configuration mistake (the whole point of the paper is avoiding it).
DEFAULT_ENUMERATION_LIMIT = 1 << 22


class ContextSpace:
    """All contexts over one schema, with enumeration and sampling helpers."""

    def __init__(self, schema: Schema):
        self.schema = schema

    # ---------------------------------------------------------------- counts

    @property
    def t(self) -> int:
        return self.schema.t

    @property
    def size(self) -> int:
        """Total number of bitmasks, ``2^t``."""
        return 1 << self.schema.t

    @property
    def n_structurally_valid(self) -> int:
        """Number of contexts selecting >=1 value in every attribute block.

        Product over attributes of ``(2^{|A_i|} - 1)``.
        """
        out = 1
        for attr in self.schema.attributes:
            out *= (1 << len(attr)) - 1
        return out

    # ----------------------------------------------------------- enumeration

    def enumerate_all(
        self, limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT
    ) -> Iterator[Context]:
        """Yield every bitmask ``0 .. 2^t - 1`` as a context."""
        if limit is not None and self.size > limit:
            raise EnumerationError(
                f"context space has {self.size} elements (> limit {limit}); "
                "full enumeration refused - use a sampler"
            )
        for bits in range(self.size):
            yield Context(self.schema, bits)

    def enumerate_valid(
        self, limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT
    ) -> Iterator[Context]:
        """Yield only structurally valid contexts (>=1 predicate per block).

        Enumerates block-wise (skipping empty blocks) rather than filtering
        all ``2^t`` masks, so the cost is proportional to the number of valid
        contexts.
        """
        if limit is not None and self.n_structurally_valid > limit:
            raise EnumerationError(
                f"{self.n_structurally_valid} valid contexts (> limit {limit}); "
                "full enumeration refused - use a sampler"
            )
        offsets = self.schema.offsets
        sizes = [len(a) for a in self.schema.attributes]

        def rec(attr_index: int, acc_bits: int) -> Iterator[int]:
            if attr_index == len(sizes):
                yield acc_bits
                return
            off, size = offsets[attr_index], sizes[attr_index]
            for block in range(1, 1 << size):
                yield from rec(attr_index + 1, acc_bits | (block << off))

        for bits in rec(0, 0):
            yield Context(self.schema, bits)

    def enumerate_containing(
        self, record_bits: int, limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT
    ) -> Iterator[Context]:
        """Yield every context containing a record with the given exact bits.

        Containing contexts are exactly the supersets of ``record_bits``:
        the record's own ``m`` bits are forced on and the remaining ``t - m``
        bits range freely — ``2^(t-m)`` contexts, all structurally valid.
        """
        free_bits = [
            b for b in range(self.schema.t) if not (record_bits >> b) & 1
        ]
        count = 1 << len(free_bits)
        if limit is not None and count > limit:
            raise EnumerationError(
                f"{count} containing contexts (> limit {limit}); enumeration refused"
            )
        for mask in range(count):
            bits = record_bits
            for k, b in enumerate(free_bits):
                if (mask >> k) & 1:
                    bits |= 1 << b
            yield Context(self.schema, bits)

    # -------------------------------------------------------------- sampling

    def random_context(
        self, rng: RngLike = None, p: float = 0.5
    ) -> Context:
        """Draw a context with each bit set independently w.p. ``p``.

        ``p = 0.5`` is the uniform draw of Algorithm 2.  The ``t`` Bernoulli
        draws collapse to a bitmask in a single vectorised pack.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        gen = ensure_rng(rng)
        draws = gen.random(self.schema.t) < p
        return Context(self.schema, bool_to_int(draws))

    def random_contexts(
        self, size: int, rng: RngLike = None, p: float = 0.5
    ) -> List[Context]:
        """Draw a batch of ``size`` independent random contexts.

        Equivalent to ``size`` successive :meth:`random_context` calls (the
        underlying uniform stream is consumed identically), but the draw and
        the bit-packing are one vectorised pass each.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        gen = ensure_rng(rng)
        draws = gen.random((size, self.schema.t)) < p
        return [Context(self.schema, bits) for bits in bool_matrix_to_ints(draws)]

    def random_valid_context(self, rng: RngLike = None) -> Context:
        """Draw uniformly among structurally valid contexts.

        Each attribute block is drawn uniformly from its ``2^{|A_i|} - 1``
        non-empty sub-masks; blocks are independent, so the product measure
        is uniform over the valid set.
        """
        gen = ensure_rng(rng)
        bits = 0
        for off, attr in zip(self.schema.offsets, self.schema.attributes):
            block = int(gen.integers(1, 1 << len(attr)))
            bits |= block << off
        return Context(self.schema, bits)

    def random_containing(self, record_bits: int, rng: RngLike = None) -> Context:
        """Uniform draw among contexts containing the given record bits.

        The record's own bits are forced on; the free bits are one batched
        fair-coin draw, packed back into a bitmask in a single reduction.
        """
        gen = ensure_rng(rng)
        chosen = int_to_bool(record_bits, self.schema.t)
        free_positions = np.flatnonzero(~chosen)
        draws = gen.random(free_positions.size) < 0.5
        chosen[free_positions[draws]] = True
        return Context(self.schema, bool_to_int(chosen))

    # ------------------------------------------------------------------ misc

    def log2_size(self) -> float:
        return float(self.schema.t)

    def expected_uniform_draws(self, n_samples: int, n_matching: int) -> float:
        """Expected draws for Algorithm 2 to collect ``n_samples`` matches.

        Theorem 5.2: with ``N`` matching contexts among ``2^t``, the expected
        number of draws is ``n * 2^t / N``.
        """
        if n_matching <= 0:
            return math.inf
        return n_samples * self.size / n_matching

"""Contexts as bitvectors, the context space, and the context graph."""

from repro.context.context import Context
from repro.context.graph import ContextGraph
from repro.context.space import ContextSpace

__all__ = ["Context", "ContextSpace", "ContextGraph"]

"""The context graph of Section 5.2.

Vertices are all contexts over the schema; an edge joins two contexts at
Hamming distance 1, so the graph is the ``t``-dimensional hypercube
``Q_t`` (every vertex has degree exactly ``t``).  The graph is *implicit* —
samplers only ever expand neighbourhoods on demand — but an explicit
:mod:`networkx` export is provided for analysis and for the locality
experiments, restricted to small ``t``.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

import networkx as nx

from repro.context.context import Context
from repro.exceptions import EnumerationError
from repro.schema import Schema

# Above this many vertices we refuse to materialise the hypercube.
MATERIALIZE_LIMIT = 1 << 16


class ContextGraph:
    """Implicit hypercube graph over contexts, with optional materialisation."""

    def __init__(self, schema: Schema):
        self.schema = schema

    @property
    def degree(self) -> int:
        """Every vertex of ``Q_t`` has degree ``t``."""
        return self.schema.t

    @property
    def n_vertices(self) -> int:
        return 1 << self.schema.t

    def neighbors(self, context: Context) -> Iterator[Context]:
        """The ``t`` contexts connected to ``context`` (Hamming distance 1)."""
        return context.neighbors()

    def neighbors_bits(self, bits: int) -> List[int]:
        """Neighbour bitmasks without Context wrapping (hot path for samplers)."""
        return [bits ^ (1 << b) for b in range(self.schema.t)]

    def are_connected(self, a: Context, b: Context) -> bool:
        return a.is_connected_to(b)

    def shortest_path_length(self, a: Context, b: Context) -> int:
        """Hypercube geodesic distance = Hamming distance."""
        return a.hamming_distance(b)

    def shortest_path(self, a: Context, b: Context) -> List[Context]:
        """One geodesic from ``a`` to ``b``: flip differing bits low-to-high."""
        path = [a]
        current = a
        diff = a.bits ^ b.bits
        bit = 0
        while diff:
            if diff & 1:
                current = current.flip_bit(bit)
                path.append(current)
            diff >>= 1
            bit += 1
        return path

    # ----------------------------------------------------------- exploration

    def ball(self, center: Context, radius: int) -> Iterator[Context]:
        """All contexts within Hamming distance ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        seen = {center.bits}
        frontier = [center.bits]
        yield center
        for _ in range(radius):
            next_frontier: List[int] = []
            for bits in frontier:
                for nb in self.neighbors_bits(bits):
                    if nb not in seen:
                        seen.add(nb)
                        next_frontier.append(nb)
                        yield Context(self.schema, nb)
            frontier = next_frontier

    def locality_profile(
        self,
        matcher: Callable[[int], bool],
        center: Context,
        max_radius: int,
    ) -> List[float]:
        """Fraction of matching contexts at each Hamming radius from ``center``.

        This quantifies the paper's *locality hypothesis* (Section 5.2): if
        ``V`` is an outlier in ``C``, connected contexts are likelier to be
        matching than random ones.  Entry ``r`` of the result is the match
        rate among contexts at exactly distance ``r``.
        """
        if max_radius < 0:
            raise ValueError(f"max_radius must be non-negative, got {max_radius}")
        totals = [0] * (max_radius + 1)
        matches = [0] * (max_radius + 1)
        for ctx in self.ball(center, max_radius):
            r = center.hamming_distance(ctx)
            totals[r] += 1
            if matcher(ctx.bits):
                matches[r] += 1
        return [m / t if t else 0.0 for m, t in zip(matches, totals)]

    # -------------------------------------------------------- materialisation

    def to_networkx(self, limit: Optional[int] = MATERIALIZE_LIMIT) -> nx.Graph:
        """Materialise the full hypercube as a :class:`networkx.Graph`.

        Nodes are context bitmasks (ints).  Refused above ``limit`` vertices.
        """
        if limit is not None and self.n_vertices > limit:
            raise EnumerationError(
                f"context graph has {self.n_vertices} vertices (> limit {limit})"
            )
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_vertices))
        for bits in range(self.n_vertices):
            for b in range(self.schema.t):
                nb = bits ^ (1 << b)
                if nb > bits:
                    graph.add_edge(bits, nb)
        return graph

    def induced_subgraph(
        self, matcher: Callable[[int], bool], limit: Optional[int] = MATERIALIZE_LIMIT
    ) -> nx.Graph:
        """Subgraph induced by contexts accepted by ``matcher``.

        Useful for studying whether the matching region is connected — the
        implicit assumption behind walking/searching from a starting context.
        """
        if limit is not None and self.n_vertices > limit:
            raise EnumerationError(
                f"context graph has {self.n_vertices} vertices (> limit {limit})"
            )
        graph = nx.Graph()
        matching = [bits for bits in range(self.n_vertices) if matcher(bits)]
        graph.add_nodes_from(matching)
        matching_set = set(matching)
        for bits in matching:
            for b in range(self.schema.t):
                nb = bits ^ (1 << b)
                if nb > bits and nb in matching_set:
                    graph.add_edge(bits, nb)
        return graph

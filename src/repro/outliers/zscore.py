"""Z-score detector — the simplest statistics-based baseline.

Not evaluated in the paper, but included to exercise the paper's claim that
PCOR composes with *any* deterministic outlier detection algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.outliers.base import OutlierDetector, register_detector


class ZScoreDetector(OutlierDetector):
    """Flag values more than ``z_threshold`` sample standard deviations out."""

    name = "zscore"

    def __init__(self, z_threshold: float = 3.0, min_population: int = 10):
        super().__init__(min_population=min_population)
        if z_threshold <= 0.0:
            raise ValueError(f"z_threshold must be positive, got {z_threshold}")
        self.z_threshold = float(z_threshold)

    def _outlier_positions(self, values: np.ndarray) -> np.ndarray:
        std = values.std(ddof=1)
        if std == 0.0:
            return np.empty(0, dtype=np.int64)
        z = np.abs(values - values.mean()) / std
        return np.flatnonzero(z > self.z_threshold).astype(np.int64)


register_detector("zscore", ZScoreDetector)

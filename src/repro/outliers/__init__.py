"""Deterministic, unsupervised outlier detectors (Section 2.1).

One detector per category evaluated in the paper:

* :class:`GrubbsDetector` — statistics-based, hypothesis testing.
* :class:`HistogramDetector` — statistics-based, distribution fitting.
* :class:`LOFDetector` — distance/density based.

plus two simple extras (:class:`ZScoreDetector`, :class:`IQRDetector`) that
back the paper's claim that PCOR "fits any outlier detection algorithm".
"""

from repro.outliers.base import (
    OutlierDetector,
    available_detectors,
    detector_factory,
    make_detector,
    register_detector,
)
from repro.outliers.grubbs import GrubbsDetector
from repro.outliers.histogram import HistogramDetector
from repro.outliers.iqr import IQRDetector
from repro.outliers.lof import LOFDetector
from repro.outliers.zscore import ZScoreDetector

__all__ = [
    "OutlierDetector",
    "GrubbsDetector",
    "HistogramDetector",
    "LOFDetector",
    "ZScoreDetector",
    "IQRDetector",
    "make_detector",
    "register_detector",
    "available_detectors",
    "detector_factory",
]

"""Detector interface and registry.

The PCOR framework only requires a *deterministic* function from a
population's metric values to the set of outlier positions (Definition 3.1
embeds the detector inside the verification function ``f_M``).  All
detectors therefore implement a single method,
:meth:`OutlierDetector.outlier_positions`, over a 1-d ``float64`` array.

Determinism matters: the privacy analysis conditions on
``COE_M(D1, V) = COE_M(D2, V)``, which is only meaningful when the detector
itself has no randomness.  Detectors must not read any RNG.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List

import numpy as np

from repro.exceptions import ReproError


class OutlierDetector(ABC):
    """A deterministic unsupervised outlier detector on 1-d metric values.

    Parameters
    ----------
    min_population:
        Populations with fewer records than this are declared outlier-free.
        This keeps small-sample statistics (Grubbs needs n >= 3, LOF needs
        n > k) well-defined and mirrors the practical requirement that a
        context must cover a non-trivial population to *explain* anything.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    def __init__(self, min_population: int = 10):
        if min_population < 1:
            raise ValueError(f"min_population must be >= 1, got {min_population}")
        self.min_population = int(min_population)

    # ------------------------------------------------------------------ API

    @abstractmethod
    def _outlier_positions(self, values: np.ndarray) -> np.ndarray:
        """Positions (into ``values``) of outliers; guaranteed len >= min_population."""

    def outlier_positions(self, values: np.ndarray) -> np.ndarray:
        """Sorted positions of outliers in ``values`` (empty if too small)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ReproError("detector input must be a 1-d array of metric values")
        if arr.shape[0] < self.min_population:
            return np.empty(0, dtype=np.int64)
        out = np.asarray(self._outlier_positions(arr), dtype=np.int64)
        out.sort()
        return out

    def detect(self, values: np.ndarray) -> np.ndarray:
        """Boolean outlier mask over ``values``."""
        arr = np.asarray(values, dtype=np.float64)
        mask = np.zeros(arr.shape[0], dtype=bool)
        mask[self.outlier_positions(arr)] = True
        return mask

    def is_outlier(self, values: np.ndarray, position: int) -> bool:
        """Is the value at ``position`` an outlier within ``values``?"""
        positions = self.outlier_positions(values)
        return bool(np.isin(position, positions))

    # ----------------------------------------------------------------- misc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items()) if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


# -------------------------------------------------------------------- registry

_REGISTRY: Dict[str, Callable[..., OutlierDetector]] = {}


def register_detector(name: str, factory: Callable[..., OutlierDetector]) -> None:
    """Register a detector factory under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ReproError(f"detector {name!r} already registered")
    _REGISTRY[key] = factory


def detector_factory(name: str) -> Callable[..., OutlierDetector]:
    """The registered factory for ``name`` (for introspection/validation)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ReproError(
            f"unknown detector {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def make_detector(name: str, **kwargs) -> OutlierDetector:
    """Instantiate a registered detector by name."""
    return detector_factory(name)(**kwargs)


def available_detectors() -> List[str]:
    """Names of all registered detectors."""
    return sorted(_REGISTRY)

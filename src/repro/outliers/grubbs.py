"""Grubbs' test for outliers (Grubbs 1969) — hypothesis-testing detector.

The two-sided Grubbs statistic for a sample of size ``N`` is

    G = max_i |x_i - mean| / std      (std with ddof=1)

and the null hypothesis "no outlier" is rejected at significance ``alpha``
when

    G > ((N-1)/sqrt(N)) * sqrt( tq^2 / (N - 2 + tq^2) )

with ``tq`` the upper ``alpha/(2N)`` critical value of Student's t with
``N-2`` degrees of freedom.  Grubbs' test flags one observation at a time,
so — as is standard (generalised ESD, Rosner 1983) — we apply it
iteratively: remove the most deviant point while the test rejects, up to
``max_outliers`` removals.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.outliers.base import OutlierDetector, register_detector


def grubbs_critical_value(n: int, alpha: float) -> float:
    """Two-sided Grubbs critical value for sample size ``n``."""
    if n < 3:
        return math.inf  # the test is undefined; reject nothing
    tq = stats.t.ppf(1.0 - alpha / (2.0 * n), n - 2)
    return ((n - 1) / math.sqrt(n)) * math.sqrt(tq * tq / (n - 2 + tq * tq))


class GrubbsDetector(OutlierDetector):
    """Iterative two-sided Grubbs test.

    Parameters
    ----------
    alpha:
        Significance level of each individual test (default 0.05).
    max_outliers:
        Upper bound on removals; ``None`` means at most 10% of the sample,
        which keeps the iterative procedure honest (Grubbs' test loses power
        when a large fraction of the data is removed).
    min_population:
        See :class:`OutlierDetector`.
    """

    name = "grubbs"

    def __init__(
        self,
        alpha: float = 0.05,
        max_outliers: int | None = None,
        min_population: int = 10,
    ):
        super().__init__(min_population=min_population)
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_outliers is not None and max_outliers < 1:
            raise ValueError(f"max_outliers must be >= 1, got {max_outliers}")
        self.alpha = float(alpha)
        self.max_outliers = max_outliers

    def _outlier_positions(self, values: np.ndarray) -> np.ndarray:
        remaining = np.arange(values.shape[0], dtype=np.int64)
        data = values.copy()
        flagged = []
        budget = (
            self.max_outliers
            if self.max_outliers is not None
            else max(1, values.shape[0] // 10)
        )
        while len(flagged) < budget and data.shape[0] >= 3:
            mean = data.mean()
            std = data.std(ddof=1)
            if std == 0.0:
                break  # all remaining values identical: nothing deviates
            deviations = np.abs(data - mean) / std
            worst = int(np.argmax(deviations))
            if deviations[worst] <= grubbs_critical_value(data.shape[0], self.alpha):
                break
            flagged.append(int(remaining[worst]))
            keep = np.ones(data.shape[0], dtype=bool)
            keep[worst] = False
            data = data[keep]
            remaining = remaining[keep]
        return np.asarray(flagged, dtype=np.int64)


register_detector("grubbs", GrubbsDetector)

"""Local Outlier Factor (Breunig et al., SIGMOD 2000) — density detector.

Implemented from scratch for 1-d metric values.  For a point ``p`` with
``k`` nearest neighbours ``N_k(p)``:

* ``k-dist(p)`` — distance to the k-th nearest neighbour,
* ``reach-dist_k(p, o) = max(k-dist(o), d(p, o))``,
* ``lrd(p) = 1 / mean_{o in N_k(p)} reach-dist_k(p, o)``  (local
  reachability density),
* ``LOF(p) = mean_{o in N_k(p)} lrd(o) / lrd(p)``.

A point is an outlier when ``LOF(p) > threshold`` (default 1.5).

Because the metric is one-dimensional, the k nearest neighbours of a value
lie within a window of +-k positions in sorted order; we evaluate distances
on that window only, giving a fully vectorised O(n k) implementation with a
deterministic tie-break (smaller distance first, then smaller sorted
position).  Neighbour sets are exactly ``k`` points — the common
implementation choice (e.g. scikit-learn) for the tie rule; duplicate-heavy
data where ``k-dist = 0`` is handled by the standard convention
``lrd = inf`` and ``inf/inf = 1``.
"""

from __future__ import annotations

import numpy as np

from repro.outliers.base import OutlierDetector, register_detector


def lof_scores(values: np.ndarray, k: int) -> np.ndarray:
    """LOF score per value (1-d, exact k neighbours, deterministic ties)."""
    arr = np.asarray(values, dtype=np.float64)
    n = arr.shape[0]
    if n <= k:
        raise ValueError(f"LOF needs more than k={k} points, got {n}")

    order = np.argsort(arr, kind="stable")
    sv = arr[order]

    # Candidate neighbours: the 2k sorted positions around each point.  Out-
    # of-range window slots are masked with +inf distance rather than
    # clipped — clipping would duplicate boundary candidates and a duplicate
    # could be selected twice into N_k.  Every row keeps >= k valid
    # candidates because the in-range window around i always holds at least
    # min(n - 1, k) non-i positions and n > k.
    offsets = np.concatenate([np.arange(-k, 0), np.arange(1, k + 1)])
    idx = np.arange(n)[:, None] + offsets[None, :]
    valid = (idx >= 0) & (idx < n)
    np.clip(idx, 0, n - 1, out=idx)

    dist = np.abs(sv[idx] - sv[:, None])
    dist[~valid] = np.inf
    # Deterministic k smallest per row: candidates are laid out in ascending
    # sorted position, so a stable sort on distance breaks ties by position.
    row_order = np.argsort(dist, axis=1, kind="stable")
    nbr = np.take_along_axis(idx, row_order[:, :k], axis=1)
    nbr_dist = np.take_along_axis(dist, row_order[:, :k], axis=1)

    k_dist = nbr_dist[:, -1]  # distance to the k-th nearest
    reach = np.maximum(k_dist[nbr], nbr_dist)
    mean_reach = reach.mean(axis=1)
    # over=ignore: a denormal-small mean reach distance overflows 1/x to
    # inf, which is the intended "infinitely dense" limit anyway.
    with np.errstate(divide="ignore", over="ignore"):
        lrd = np.where(mean_reach > 0.0, 1.0 / mean_reach, np.inf)

    lrd_nbr = lrd[nbr]
    # over=ignore: a finite-but-huge neighbour density over a tiny one may
    # overflow to inf, which is the right answer (the point is infinitely
    # less dense than its neighbourhood).
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        ratios = lrd_nbr / lrd[:, None]
    # inf / inf -> nan -> both densities are "infinite" (duplicate cluster):
    # the point is exactly as dense as its neighbours, LOF contribution 1.
    ratios = np.where(np.isnan(ratios), 1.0, ratios)
    scores_sorted = ratios.mean(axis=1)

    scores = np.empty(n, dtype=np.float64)
    scores[order] = scores_sorted
    return scores


class LOFDetector(OutlierDetector):
    """LOF with score threshold.

    Parameters
    ----------
    k:
        Neighbourhood size (MinPts in the original paper), default 10.
    threshold:
        LOF score above which a point is an outlier, default 1.5.
    """

    name = "lof"

    def __init__(self, k: int = 10, threshold: float = 1.5, min_population: int | None = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if threshold <= 0.0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        # LOF needs at least k+1 points; fold that into min_population.
        floor = k + 1
        if min_population is None:
            min_population = max(10, floor)
        super().__init__(min_population=max(min_population, floor))
        self.k = int(k)
        self.threshold = float(threshold)

    def _outlier_positions(self, values: np.ndarray) -> np.ndarray:
        scores = lof_scores(values, self.k)
        return np.flatnonzero(scores > self.threshold).astype(np.int64)


register_detector("lof", LOFDetector)

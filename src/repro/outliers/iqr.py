"""Tukey fence (IQR) detector — robust statistics-based baseline.

Included, like :mod:`repro.outliers.zscore`, to demonstrate PCOR's
detector-genericity; robust to the masking effect that afflicts the z-score
rule when several outliers inflate the standard deviation.
"""

from __future__ import annotations

import numpy as np

from repro.outliers.base import OutlierDetector, register_detector


class IQRDetector(OutlierDetector):
    """Flag values outside ``[Q1 - factor*IQR, Q3 + factor*IQR]``."""

    name = "iqr"

    def __init__(self, factor: float = 1.5, min_population: int = 10):
        super().__init__(min_population=min_population)
        if factor <= 0.0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.factor = float(factor)

    def _outlier_positions(self, values: np.ndarray) -> np.ndarray:
        q1, q3 = np.percentile(values, [25.0, 75.0])
        iqr = q3 - q1
        lo = q1 - self.factor * iqr
        hi = q3 + self.factor * iqr
        return np.flatnonzero((values < lo) | (values > hi)).astype(np.int64)


register_detector("iqr", IQRDetector)

"""Histogram-based outlier detection — distribution-fitting detector.

Following Section 6.5 of the paper: the metric values of a population
``D_C`` are binned into ``sqrt(|D_C|)`` equal-width bins, and every value
falling in a bin with frequency below ``frequency_fraction * |D_C|`` is an
outlier (the paper uses ``2.5e-3``).

At laptop-scale populations the paper's fraction can drop below one record,
in which case no occupied bin ever qualifies; ``min_count_floor`` optionally
raises the cutoff to an absolute count so the detector stays useful on small
populations (set it to 0 for strict paper behaviour).
"""

from __future__ import annotations

import math

import numpy as np

from repro.outliers.base import OutlierDetector, register_detector


class HistogramDetector(OutlierDetector):
    """Sparse-bin histogram detector.

    Parameters
    ----------
    frequency_fraction:
        A bin is an outlier bin when ``count < frequency_fraction * n``
        (paper: 2.5e-3).
    min_count_floor:
        Lower bound applied to the cutoff, in records.  The effective rule is
        ``count < max(frequency_fraction * n, min_count_floor)``.  The
        default of 0 reproduces the paper exactly.
    n_bins:
        Optional fixed bin count; default ``round(sqrt(n))``.
    """

    name = "histogram"

    def __init__(
        self,
        frequency_fraction: float = 2.5e-3,
        min_count_floor: float = 0.0,
        n_bins: int | None = None,
        min_population: int = 10,
    ):
        super().__init__(min_population=min_population)
        if frequency_fraction < 0.0:
            raise ValueError(
                f"frequency_fraction must be >= 0, got {frequency_fraction}"
            )
        if min_count_floor < 0.0:
            raise ValueError(f"min_count_floor must be >= 0, got {min_count_floor}")
        if n_bins is not None and n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.frequency_fraction = float(frequency_fraction)
        self.min_count_floor = float(min_count_floor)
        self.n_bins = n_bins

    def _outlier_positions(self, values: np.ndarray) -> np.ndarray:
        n = values.shape[0]
        lo, hi = float(values.min()), float(values.max())
        if lo == hi:
            return np.empty(0, dtype=np.int64)  # single bin holds everything
        bins = self.n_bins if self.n_bins is not None else max(1, round(math.sqrt(n)))
        width = (hi - lo) / bins
        if width == 0.0 or not math.isfinite(width):
            # The value range is too narrow (denormal spread underflows the
            # bin width) or too wide (the spread overflows float64) to form
            # finite-width bins; behave like the single-bin case.
            return np.empty(0, dtype=np.int64)
        counts, edges = np.histogram(values, bins=bins, range=(lo, hi))
        cutoff = max(self.frequency_fraction * n, self.min_count_floor)
        sparse = counts < cutoff
        if not sparse.any():
            return np.empty(0, dtype=np.int64)
        # Assign each value to its bin; the top edge belongs to the last bin.
        bin_of = np.clip(np.digitize(values, edges[1:-1], right=False), 0, bins - 1)
        return np.flatnonzero(sparse[bin_of]).astype(np.int64)


register_detector("histogram", HistogramDetector)

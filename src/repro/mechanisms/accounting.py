"""Privacy-budget accounting for PCOR's five algorithms.

The paper proves per-algorithm OCDP costs in terms of the Exponential
mechanism's per-invocation parameter ``epsilon_1``:

========================  =======================  ======================
Algorithm                 Theorem                  Total OCDP epsilon
========================  =======================  ======================
Direct (Alg 1)            4.1                      ``2 * eps1``
Uniform sampling (Alg 2)  5.1                      ``2 * eps1``
Random walk (Alg 3)       5.3                      ``2 * eps1``
DP-DFS (Alg 4)            5.5                      ``(2n + 2) * eps1``
DP-BFS (Alg 5)            5.7                      ``(2n + 2) * eps1``
========================  =======================  ======================

(`n` = number of samples; all with ``Delta_u <= 1``.)  Section 6.3 confirms
the split: a total budget of 0.2 gives ``eps1 ~= 0.002`` for DFS/BFS at
``n = 50`` and ``eps1 = 0.1`` for Uniform/RandomWalk.

:func:`epsilon_one_for` is the single source of truth for this split;
:class:`PrivacyAccountant` tracks spend across multiple mechanism
invocations under basic (sequential) composition.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.exceptions import PrivacyBudgetError

#: Budget multipliers, i.e. total epsilon = multiplier(n) * epsilon_1.
_SPLITS = {
    "direct": lambda n: 2.0,
    "uniform": lambda n: 2.0,
    "random_walk": lambda n: 2.0,
    "dfs": lambda n: 2.0 * n + 2.0,
    "bfs": lambda n: 2.0 * n + 2.0,
}


def budget_multiplier(algorithm: str, n_samples: int = 0) -> float:
    """``total_epsilon / epsilon_1`` for the named algorithm."""
    key = algorithm.lower()
    if key not in _SPLITS:
        raise PrivacyBudgetError(
            f"unknown algorithm {algorithm!r}; known: {sorted(_SPLITS)}"
        )
    if key in ("dfs", "bfs") and n_samples < 1:
        raise PrivacyBudgetError(
            f"{algorithm} needs n_samples >= 1 to split the budget, got {n_samples}"
        )
    return _SPLITS[key](n_samples)


def epsilon_one_for(algorithm: str, total_epsilon: float, n_samples: int = 0) -> float:
    """Per-invocation ``epsilon_1`` so the run costs ``total_epsilon`` of OCDP."""
    if not (total_epsilon > 0.0 and math.isfinite(total_epsilon)):
        raise PrivacyBudgetError(
            f"total_epsilon must be positive and finite, got {total_epsilon}"
        )
    return total_epsilon / budget_multiplier(algorithm, n_samples)


def total_epsilon_for(algorithm: str, epsilon_one: float, n_samples: int = 0) -> float:
    """Total OCDP budget consumed when invoking with ``epsilon_1``."""
    if not (epsilon_one > 0.0 and math.isfinite(epsilon_one)):
        raise PrivacyBudgetError(
            f"epsilon_one must be positive and finite, got {epsilon_one}"
        )
    return epsilon_one * budget_multiplier(algorithm, n_samples)


def group_privacy_epsilon(epsilon: float, group_size: int) -> float:
    """Budget implied for groups of ``group_size`` correlated records.

    Standard DP group privacy: an epsilon-DP mechanism is (k*epsilon)-DP for
    datasets differing in k records.  Section 6.7 evaluates PCOR's OCDP
    constraint at group distances Delta-D in {1, 5, 10, 25}; this helper
    gives the corresponding formal budget when the constraint holds at
    distance ``group_size``.
    """
    if not (epsilon > 0.0 and math.isfinite(epsilon)):
        raise PrivacyBudgetError(f"epsilon must be positive and finite, got {epsilon}")
    if group_size < 1:
        raise PrivacyBudgetError(f"group_size must be >= 1, got {group_size}")
    return epsilon * group_size


@dataclass
class PrivacyAccountant:
    """Sequential-composition ledger.

    Every mechanism invocation is charged at its worst-case cost; the
    accountant refuses charges that would exceed the budget.  The
    check-then-append in :meth:`charge` (and the batch variant
    :meth:`charge_many`) is atomic under the accountant's lock, so
    concurrent engine callers can never overdraw — or double-charge — the
    budget by racing each other.

    Persistence hooks:

    * ``sink`` — a callable ``(label, cost)`` invoked under the lock after
      every *admitted* charge, so an observer (e.g. a write-ahead ledger)
      sees charges in ledger order with no gaps or reorderings.  This is
      the hook for embedders who charge an accountant directly (say, a
      budgeted :class:`~repro.service.engine.ReleaseEngine` outside the
      HTTP server) and still want durable spend; the server's tenant
      layer instead writes richer tenant-stamped records itself, in
      :meth:`repro.server.tenants.TenantBudgets.admit`.  A sink that
      raises aborts the caller *after* the in-memory append — the
      conservative direction: budget counts as spent even if the durable
      record failed.
    * :meth:`restore` — re-append charges replayed from an authoritative
      ledger *without* the budget check (and without notifying the sink),
      so a restarted service faithfully reconstructs its spend even when
      the replayed total exceeds a since-lowered budget; subsequent
      charges are then rejected as over-budget.  This is what the
      server's :class:`~repro.server.tenants.TenantBudgets` replay calls.
    """

    budget: float
    sink: Optional[Callable[[str, float], None]] = None
    _ledger: List[Tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (self.budget > 0.0 and math.isfinite(self.budget)):
            raise PrivacyBudgetError(f"budget must be positive and finite, got {self.budget}")
        self._lock = threading.RLock()
        # Running total, maintained on every append: admission and budget
        # snapshots run per request under the lock, and recomputing an
        # fsum over the whole ledger there would make a long-lived server
        # O(charges^2) cumulative.
        self._spent_total = math.fsum(cost for _, cost in self._ledger)

    @property
    def spent(self) -> float:
        with self._lock:
            return self._spent_total

    @property
    def remaining(self) -> float:
        with self._lock:
            return self.budget - self.spent

    def _check_and_append(self, charges: Sequence[Tuple[str, float]]) -> None:
        for label, cost in charges:
            if cost < 0.0 or not math.isfinite(cost):
                raise PrivacyBudgetError(
                    f"charge must be finite and >= 0, got {cost}"
                )
        total = math.fsum(cost for _, cost in charges)
        # Tolerate float dust from splitting eps across many invocations.
        if self.spent + total > self.budget * (1.0 + 1e-9):
            label = charges[0][0] if len(charges) == 1 else f"batch of {len(charges)}"
            raise PrivacyBudgetError(
                f"charge {label!r} of {total:.6g} exceeds remaining budget "
                f"{self.remaining:.6g} (total {self.budget:.6g})"
            )
        self._ledger.extend((label, float(cost)) for label, cost in charges)
        self._spent_total = math.fsum((self._spent_total, total))
        if self.sink is not None:
            for label, cost in charges:
                self.sink(label, float(cost))

    def can_charge(self, cost: float) -> bool:
        """Would :meth:`charge` admit ``cost`` right now?

        Uses the exact admission arithmetic of :meth:`charge` (including
        the float-dust tolerance), so a caller holding an outer lock that
        serialises every mutation of this accountant may rely on
        ``can_charge`` → ``charge`` never failing.
        """
        if cost < 0.0 or not math.isfinite(cost):
            return False
        with self._lock:
            return self.spent + cost <= self.budget * (1.0 + 1e-9)

    def charge(self, label: str, cost: float) -> None:
        """Record a charge; raises if it would overdraw the budget."""
        with self._lock:
            self._check_and_append([(label, cost)])

    def charge_many(self, charges: Sequence[Tuple[str, float]]) -> None:
        """Atomically record a batch of charges, all or nothing.

        Either every charge fits the remaining budget and all are appended,
        or none are — and no other thread can slip a charge in between the
        check and the append.
        """
        if not charges:
            return
        with self._lock:
            self._check_and_append(list(charges))

    def restore(self, charges: Sequence[Tuple[str, float]]) -> None:
        """Replay charges from an authoritative external ledger.

        Appends without the budget check and without notifying the sink
        (the charges already live in the durable ledger being replayed).
        Costs must still be finite and non-negative — a corrupt replay
        record is an error, not a spend.
        """
        cleaned = []
        for label, cost in charges:
            cost = float(cost)
            if cost < 0.0 or not math.isfinite(cost):
                raise PrivacyBudgetError(
                    f"replayed charge {label!r} must be finite and >= 0, got {cost}"
                )
            cleaned.append((str(label), cost))
        with self._lock:
            self._ledger.extend(cleaned)
            self._spent_total = math.fsum(
                [self._spent_total, *(cost for _, cost in cleaned)]
            )

    def ledger(self) -> List[Tuple[str, float]]:
        """A copy of all (label, cost) charges so far."""
        with self._lock:
            return list(self._ledger)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrivacyAccountant(spent={self.spent:.6g}, budget={self.budget:.6g}, "
            f"charges={len(self._ledger)})"
        )

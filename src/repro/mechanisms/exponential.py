"""The Exponential mechanism (McSherry & Talwar 2007), paper Section 2.3.

The paper's privacy proofs (Equations 4-6) weight a candidate ``r`` by
``exp(epsilon_1 * u(D, r))`` and conclude ``2*epsilon_1*Delta_u``-OCDP, so
that parameterisation is the default here.  The textbook definition
``exp(epsilon * u / (2*Delta_u))`` (Definition 2.3) is available via
``half_sensitivity=True`` and yields ``epsilon``-DP directly.

Implementation notes
--------------------
* All weights are computed in log space with a max-shift, so huge utilities
  (population sizes in the tens of thousands) cannot overflow.
* A utility of ``-inf`` (the paper's score for invalid contexts) receives
  probability exactly zero.
* Sampling uses the Gumbel-max trick: ``argmax(log w_i + G_i)`` with i.i.d.
  Gumbel noise is an exact draw from the softmax distribution.  This avoids
  forming the normalised probability vector and is numerically robust.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.exceptions import MechanismError, PrivacyBudgetError
from repro.rng import RngLike, ensure_rng

T = TypeVar("T")


class ExponentialMechanism:
    """Draw one of ``n`` candidates with probability ``exp(eps1 * u_i)``-proportional.

    Parameters
    ----------
    epsilon:
        The per-invocation privacy parameter (the paper's ``epsilon_1``).
    sensitivity:
        ``Delta_u`` of the utility function (both paper utilities have 1).
    half_sensitivity:
        If True, use the textbook scaling ``epsilon/(2*sensitivity)``; if
        False (default), the paper's ``epsilon_1`` scaling, which costs
        ``2*epsilon_1*sensitivity`` of budget per invocation.
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: float = 1.0,
        half_sensitivity: bool = False,
    ):
        if not (epsilon > 0.0 and math.isfinite(epsilon)):
            raise PrivacyBudgetError(f"epsilon must be positive and finite, got {epsilon}")
        if not (sensitivity > 0.0 and math.isfinite(sensitivity)):
            raise PrivacyBudgetError(
                f"sensitivity must be positive and finite, got {sensitivity}"
            )
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)
        self.half_sensitivity = bool(half_sensitivity)

    @property
    def scale(self) -> float:
        """Multiplier applied to utilities before exponentiation."""
        if self.half_sensitivity:
            return self.epsilon / (2.0 * self.sensitivity)
        return self.epsilon

    @property
    def privacy_cost(self) -> float:
        """Worst-case DP cost of one invocation (Theorem 2.1 / Eq. 5)."""
        if self.half_sensitivity:
            return self.epsilon
        return 2.0 * self.epsilon * self.sensitivity

    # ------------------------------------------------------------------ core

    def log_weights(self, utilities: Sequence[float]) -> np.ndarray:
        """Unnormalised log-weights ``scale * u_i`` (``-inf`` preserved)."""
        u = np.asarray(utilities, dtype=np.float64)
        if u.ndim != 1 or u.shape[0] == 0:
            raise MechanismError("utilities must be a non-empty 1-d sequence")
        if np.isnan(u).any():
            raise MechanismError("utilities contain NaN")
        if np.isposinf(u).any():
            raise MechanismError("utilities contain +inf")
        return self.scale * u

    def probabilities(self, utilities: Sequence[float]) -> np.ndarray:
        """Exact selection probabilities (max-shifted softmax)."""
        logw = self.log_weights(utilities)
        finite = np.isfinite(logw)
        if not finite.any():
            raise MechanismError(
                "all candidates have -inf utility; nothing is selectable"
            )
        shifted = logw - logw[finite].max()
        w = np.where(finite, np.exp(shifted), 0.0)
        return w / w.sum()

    def select_index(self, utilities: Sequence[float], rng: RngLike = None) -> int:
        """Draw a candidate index via the Gumbel-max trick."""
        gen = ensure_rng(rng)
        logw = self.log_weights(utilities)
        finite = np.isfinite(logw)
        if not finite.any():
            raise MechanismError(
                "all candidates have -inf utility; nothing is selectable"
            )
        gumbel = gen.gumbel(size=logw.shape[0])
        keys = np.where(finite, logw + gumbel, -np.inf)
        return int(np.argmax(keys))

    def select(
        self,
        candidates: Sequence[T],
        utilities: Sequence[float],
        rng: RngLike = None,
    ) -> Tuple[T, int]:
        """Draw ``(candidate, index)`` from paired candidates/utilities."""
        if len(candidates) != len(utilities):
            raise MechanismError(
                f"{len(candidates)} candidates but {len(utilities)} utilities"
            )
        i = self.select_index(utilities, rng)
        return candidates[i], i

    # ------------------------------------------------------------ diagnostics

    def probability_ratio_bound(self) -> float:
        """The guaranteed bound ``e^{privacy_cost}`` on output-probability ratios."""
        return math.exp(self.privacy_cost)

    def expected_utility(self, utilities: Sequence[float]) -> float:
        """Expected utility of the selection (exact, for analysis/tests)."""
        p = self.probabilities(utilities)
        u = np.asarray(utilities, dtype=np.float64)
        support = p > 0.0  # -inf utilities have p == 0; exclude before multiplying
        return float(np.sum(p[support] * u[support]))

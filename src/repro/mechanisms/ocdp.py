"""Output-Constrained Differential Privacy (Definitions 2.4 and 2.5).

OCDP relaxes DP to pairs of *f-neighbours*: datasets that (1) differ in one
record and (2) map to the same non-empty output under a fixed function
``f``.  In PCOR, ``f = COE_M(., V)`` — the set of all valid contexts for the
queried outlier — so the guarantee reads: *as long as adding/removing one
record does not change which contexts are valid for V, the released context
is epsilon-indistinguishable.*  Section 6.7 measures how often the
constraint actually holds; :mod:`repro.experiments.coe_match` reproduces
that measurement using the helpers here.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Callable, FrozenSet, Tuple

from repro.data.table import Dataset


def differ_by_one_record(d1: Dataset, d2: Dataset) -> bool:
    """General neighbouring condition: symmetric difference of one record.

    Record identity is judged by stable record id (this library's datasets
    preserve ids across add/remove), so ``D2 = D1 minus one record`` and
    ``D2 = D1 plus one record`` both qualify.
    """
    ids1 = set(int(i) for i in d1.ids)
    ids2 = set(int(i) for i in d2.ids)
    return len(ids1 ^ ids2) == 1


class FNeighborChecker:
    """Decides whether two datasets are neighbours w.r.t. a function ``f``.

    Parameters
    ----------
    f:
        The constraint function, mapping a dataset to a frozen set of
        outputs (for PCOR: the set of valid context bitmasks for a fixed
        outlier ``V``).
    """

    def __init__(self, f: Callable[[Dataset], FrozenSet[int]]):
        self.f = f

    def outputs(self, dataset: Dataset) -> FrozenSet[int]:
        return frozenset(self.f(dataset))

    def are_f_neighbors(self, d1: Dataset, d2: Dataset) -> Tuple[bool, str]:
        """``(verdict, reason)`` for Definition 2.4.

        The reason string distinguishes the three failure modes: not
        one-record neighbours, empty output, or differing output sets.
        """
        if not differ_by_one_record(d1, d2):
            return False, "datasets do not differ by exactly one record"
        out1 = self.outputs(d1)
        out2 = self.outputs(d2)
        if not out1 or not out2:
            return False, "f maps at least one dataset to the empty set"
        if out1 != out2:
            return False, (
                f"f outputs differ: |only D1|={len(out1 - out2)}, "
                f"|only D2|={len(out2 - out1)}"
            )
        return True, "f-neighbors"


def ocdp_ratio_bound(epsilon: float) -> float:
    """The OCDP guarantee: probability ratios are bounded by ``e^epsilon``."""
    if epsilon < 0.0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    return math.exp(epsilon)


def set_match_fraction(a: AbstractSet[int], b: AbstractSet[int]) -> float:
    """Jaccard similarity of two output sets, the paper's "COE match".

    Section 6.7 reports the "contexts set match of the original dataset and
    its neighboring datasets"; we quantify it as ``|A & B| / |A | B|``
    (1.0 when both are empty: identical outputs).
    """
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)

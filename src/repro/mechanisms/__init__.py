"""Differential-privacy substrate: mechanisms, OCDP, budget accounting."""

from repro.mechanisms.accounting import PrivacyAccountant, epsilon_one_for, total_epsilon_for
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.ocdp import FNeighborChecker, ocdp_ratio_bound

__all__ = [
    "ExponentialMechanism",
    "LaplaceMechanism",
    "PrivacyAccountant",
    "epsilon_one_for",
    "total_epsilon_for",
    "FNeighborChecker",
    "ocdp_ratio_bound",
]

"""The Laplace mechanism (Dwork et al. 2006) — numeric-query DP substrate.

PCOR's context release uses the Exponential mechanism, but a complete
DP toolkit needs the Laplace mechanism too: the examples use it to release
noisy population counts *alongside* a private context, and the accountant
composes both kinds of invocation.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

from repro.exceptions import PrivacyBudgetError
from repro.rng import RngLike, ensure_rng


class LaplaceMechanism:
    """Add Laplace(sensitivity / epsilon) noise to numeric query answers."""

    def __init__(self, epsilon: float, sensitivity: float = 1.0):
        if not (epsilon > 0.0 and math.isfinite(epsilon)):
            raise PrivacyBudgetError(f"epsilon must be positive and finite, got {epsilon}")
        if not (sensitivity > 0.0 and math.isfinite(sensitivity)):
            raise PrivacyBudgetError(
                f"sensitivity must be positive and finite, got {sensitivity}"
            )
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)

    @property
    def scale(self) -> float:
        """The Laplace scale parameter ``b = sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    @property
    def privacy_cost(self) -> float:
        """One invocation costs exactly ``epsilon``."""
        return self.epsilon

    def release(
        self, true_value: Union[float, Sequence[float]], rng: RngLike = None
    ) -> Union[float, np.ndarray]:
        """Noisy release of a scalar or vector query answer."""
        gen = ensure_rng(rng)
        arr = np.asarray(true_value, dtype=np.float64)
        noise = gen.laplace(0.0, self.scale, size=arr.shape)
        noisy = arr + noise
        if noisy.shape == ():
            return float(noisy)
        return noisy

    def release_count(self, true_count: int, rng: RngLike = None) -> float:
        """Noisy count (not clamped; callers may round/clamp as they see fit)."""
        return float(self.release(float(true_count), rng))

    def confidence_halfwidth(self, confidence: float = 0.95) -> float:
        """Half-width ``h`` with ``P(|noise| <= h) = confidence``."""
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        return -self.scale * math.log(1.0 - confidence)

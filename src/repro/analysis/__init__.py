"""Analysis tools: COE structure, search reachability, release sessions."""

from repro.analysis.coe_structure import COEStructure, analyze_coe, coe_structure_report
from repro.analysis.session import ReleaseSession

__all__ = ["COEStructure", "analyze_coe", "coe_structure_report", "ReleaseSession"]

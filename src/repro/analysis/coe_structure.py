"""Structural analysis of a record's matching-context set inside the graph.

The graph samplers explore the subgraph of the hypercube induced by
``COE_M(D, V)``.  Their utility ceiling is therefore determined by the
*structure* of that subgraph, not just its size:

* if the COE splits into several connected components, a search started in
  one component can never reach a maximum context in another;
* even within one component, the utility-directed search has to cover the
  Hamming distance from the starting context to the best context within its
  ``n`` visits.

:func:`analyze_coe` quantifies both effects for one record; aggregated over
records it explains (and predicts) when BFS/DFS approach the direct
approach's utility and when they cannot — the laptop-scale deviations
documented in EXPERIMENTS.md were diagnosed with exactly this tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.reference import ReferenceFile
from repro.exceptions import EnumerationError


@dataclass(frozen=True)
class COEStructure:
    """Connectivity profile of one record's matching-context subgraph."""

    record_id: int
    n_matching: int
    n_components: int
    #: Sizes of the connected components, descending.
    component_sizes: Tuple[int, ...]
    #: Fraction of matching contexts lying in the component that contains
    #: the maximum-population context.
    max_component_coverage: float
    #: Maximum population over the whole COE.
    max_population: int
    #: Best population reachable from a *random* component, averaged over
    #: components weighted by size (the expected ceiling of a search whose
    #: starting context is drawn uniformly from the COE).
    expected_reachable_max: float
    #: Mean Hamming distance from a context to the best context of its own
    #: component (how far a search must travel).
    mean_distance_to_best: float

    @property
    def is_connected(self) -> bool:
        return self.n_components == 1

    @property
    def expected_ceiling_ratio(self) -> float:
        """Expected best-reachable population over the global maximum.

        This is an *upper bound* on the expected utility ratio of any
        graph sampler with a uniformly drawn starting context — a structural
        limit no amount of budget can beat.
        """
        if self.max_population == 0:
            return 1.0
        return self.expected_reachable_max / self.max_population


def _matching_subgraph(t: int, matching: Sequence[int]) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(matching)
    matching_set = set(matching)
    for bits in matching:
        for b in range(t):
            nb = bits ^ (1 << b)
            if nb > bits and nb in matching_set:
                graph.add_edge(bits, nb)
    return graph


def analyze_coe(
    reference: ReferenceFile, record_id: int, max_contexts: int = 100_000
) -> COEStructure:
    """Compute the COE connectivity profile of one record."""
    matching = reference.matching_contexts(record_id)
    if not matching:
        raise EnumerationError(f"record {record_id} has no matching contexts")
    if len(matching) > max_contexts:
        raise EnumerationError(
            f"COE of record {record_id} has {len(matching)} contexts "
            f"(> {max_contexts}); analysis refused"
        )
    t = reference.schema.t
    graph = _matching_subgraph(t, matching)
    components = sorted(
        (sorted(c) for c in nx.connected_components(graph)),
        key=len,
        reverse=True,
    )

    pops = {bits: reference.population_size(bits) for bits in matching}
    max_population = max(pops.values())
    best_overall = max(matching, key=lambda b: pops[b])

    component_sizes = tuple(len(c) for c in components)
    max_component = next(c for c in components if best_overall in c)
    coverage = len(max_component) / len(matching)

    # Expected ceiling for a uniform starting context: land in component c
    # w.p. |c| / |COE|; from there the best reachable is max over c.
    expected_reachable = 0.0
    distances: List[int] = []
    for comp in components:
        comp_best = max(comp, key=lambda b: pops[b])
        expected_reachable += (len(comp) / len(matching)) * pops[comp_best]
        for bits in comp:
            distances.append((bits ^ comp_best).bit_count())

    return COEStructure(
        record_id=record_id,
        n_matching=len(matching),
        n_components=len(components),
        component_sizes=component_sizes,
        max_component_coverage=coverage,
        max_population=max_population,
        expected_reachable_max=expected_reachable,
        mean_distance_to_best=float(np.mean(distances)),
    )


def coe_structure_report(
    reference: ReferenceFile,
    record_ids: Sequence[int],
) -> Dict[str, float]:
    """Aggregate COE-structure statistics over a set of records.

    Returns summary metrics that calibrate expectations for the utility
    experiments (see EXPERIMENTS.md):

    * ``connected_fraction`` — records whose COE is a single component,
    * ``mean_components`` / ``mean_coverage`` — fragmentation measures,
    * ``mean_ceiling_ratio`` — the structural upper bound on graph-sampler
      utility with uniform starting contexts,
    * ``mean_distance_to_best`` — how deep searches must travel.
    """
    if not record_ids:
        raise EnumerationError("no record ids supplied")
    structures = [analyze_coe(reference, rid) for rid in record_ids]
    return {
        "n_records": float(len(structures)),
        "connected_fraction": float(
            np.mean([s.is_connected for s in structures])
        ),
        "mean_components": float(np.mean([s.n_components for s in structures])),
        "mean_coverage": float(
            np.mean([s.max_component_coverage for s in structures])
        ),
        "mean_ceiling_ratio": float(
            np.mean([s.expected_ceiling_ratio for s in structures])
        ),
        "mean_distance_to_best": float(
            np.mean([s.mean_distance_to_best for s in structures])
        ),
        "mean_coe_size": float(np.mean([s.n_matching for s in structures])),
    }

"""Budgeted multi-release sessions.

A data owner rarely answers a single query.  :class:`ReleaseSession` wraps
a :class:`~repro.core.pcor.PCOR` pipeline with a budgeted
:class:`~repro.service.engine.ReleaseEngine`, so that a sequence of
releases composes under a single total budget and over-budget queries fail
*before* any data is touched.  The session keeps exactly one ledger — the
engine's :class:`~repro.mechanisms.accounting.PrivacyAccountant` — so spend
is never double-counted between layers.

Differential privacy composes sequentially: releasing k contexts at
epsilon each costs k*epsilon in the worst case.  (OCDP inherits the same
composition for a fixed constraint function; note that releases about
*different* outliers condition on different ``COE_M(., V)`` constraints, so
the ledger tracks the total spend an adversary should be assumed to see.)
"""

from __future__ import annotations

from typing import List, Union

from repro.context.context import Context
from repro.core.pcor import PCOR
from repro.core.result import PCORResult
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms.accounting import PrivacyAccountant
from repro.rng import RngLike
from repro.service.engine import ReleaseEngine, ReleaseRequest


class ReleaseSession:
    """A sequence of PCOR releases under one total privacy budget.

    Internally this is a budgeted :class:`ReleaseEngine` sharing the
    pipeline's verifier (and thus its profile cache), plus a log of results.
    """

    def __init__(self, pcor: PCOR, total_budget: float):
        self.pcor = pcor
        self.engine = ReleaseEngine(pcor.dataset, budget=total_budget)
        self.engine.adopt_verifier(pcor.verifier)
        self._results: List[PCORResult] = []

    @property
    def accountant(self) -> PrivacyAccountant:
        """The engine's ledger — the session's single source of spend truth."""
        return self.engine.accountant

    @property
    def spent(self) -> float:
        return self.accountant.spent

    @property
    def remaining(self) -> float:
        return self.accountant.remaining

    @property
    def results(self) -> List[PCORResult]:
        """All releases made in this session, in release order.

        The returned list is a fresh copy, but the :class:`PCORResult`
        entries are the session's own objects — in particular each result's
        ``stats`` is the sampler's mutable counter record, shared, not
        copied.  Treat results as read-only.
        """
        return list(self._results)

    def can_release(self) -> bool:
        """Would one more release at the pipeline's epsilon fit the budget?"""
        return self.engine.can_submit(self.pcor.epsilon)

    def release(
        self,
        record_id: int,
        starting_context: Union[None, int, Context] = None,
        seed: RngLike = None,
    ) -> PCORResult:
        """One budgeted release; the engine charges the ledger before
        touching data (even an aborted mechanism run may leak)."""
        if not self.can_release():
            raise PrivacyBudgetError(
                f"release needs epsilon={self.pcor.epsilon:g} but only "
                f"{self.remaining:.6g} of {self.accountant.budget:g} remains"
            )
        result = self.engine.submit(
            ReleaseRequest(
                record_id=record_id,
                spec=self.pcor.spec,
                starting_context=starting_context,
                seed=seed,
            )
        )
        self._results.append(result)
        return result

    def ledger_report(self) -> str:
        """Human-readable spend ledger."""
        lines = [
            f"privacy ledger (budget {self.accountant.budget:g}, "
            f"spent {self.spent:.6g}, remaining {self.remaining:.6g}):"
        ]
        for label, cost in self.accountant.ledger():
            lines.append(f"  {cost:.6g}  {label}")
        return "\n".join(lines)

"""Budgeted multi-release sessions.

A data owner rarely answers a single query.  :class:`ReleaseSession` wraps
a :class:`~repro.core.pcor.PCOR` pipeline with a
:class:`~repro.mechanisms.accounting.PrivacyAccountant` so that a sequence
of releases — different outliers, different utilities — composes under a
single total budget, and over-budget queries fail *before* any data is
touched.

Differential privacy composes sequentially: releasing k contexts at
epsilon each costs k*epsilon in the worst case.  (OCDP inherits the same
composition for a fixed constraint function; note that releases about
*different* outliers condition on different ``COE_M(., V)`` constraints, so
the ledger tracks the total spend an adversary should be assumed to see.)
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.context.context import Context
from repro.core.pcor import PCOR
from repro.core.result import PCORResult
from repro.exceptions import PrivacyBudgetError
from repro.mechanisms.accounting import PrivacyAccountant
from repro.rng import RngLike


class ReleaseSession:
    """A sequence of PCOR releases under one total privacy budget."""

    def __init__(self, pcor: PCOR, total_budget: float):
        self.pcor = pcor
        self.accountant = PrivacyAccountant(budget=total_budget)
        self._results: List[PCORResult] = []

    @property
    def spent(self) -> float:
        return self.accountant.spent

    @property
    def remaining(self) -> float:
        return self.accountant.remaining

    @property
    def results(self) -> List[PCORResult]:
        """All releases made in this session (copies the list, not results)."""
        return list(self._results)

    def can_release(self) -> bool:
        """Would one more release at the pipeline's epsilon fit the budget?"""
        return self.pcor.epsilon <= self.remaining * (1.0 + 1e-9)

    def release(
        self,
        record_id: int,
        starting_context: Union[None, int, Context] = None,
        seed: RngLike = None,
    ) -> PCORResult:
        """One budgeted release; charges the ledger before touching data."""
        if not self.can_release():
            raise PrivacyBudgetError(
                f"release needs epsilon={self.pcor.epsilon:g} but only "
                f"{self.remaining:.6g} of {self.accountant.budget:g} remains"
            )
        # Charge first: even an aborted mechanism run may leak.
        self.accountant.charge(
            f"release(record={record_id}, sampler={self.pcor.sampler.name})",
            self.pcor.epsilon,
        )
        result = self.pcor.release(
            record_id, starting_context=starting_context, seed=seed
        )
        self._results.append(result)
        return result

    def ledger_report(self) -> str:
        """Human-readable spend ledger."""
        lines = [
            f"privacy ledger (budget {self.accountant.budget:g}, "
            f"spent {self.spent:.6g}, remaining {self.remaining:.6g}):"
        ]
        for label, cost in self.accountant.ledger():
            lines.append(f"  {cost:.6g}  {label}")
        return "\n".join(lines)

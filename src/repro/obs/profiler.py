"""A zero-dependency sampling wall-clock profiler for live workers.

:class:`SamplingProfiler` snapshots every thread's Python stack via
``sys._current_frames()`` on a fixed wall-clock cadence from a daemon
sampler thread, and folds the samples into collapsed-stack
("folded flamegraph") lines — ``root;frame;...;leaf count`` — the input
format of ``flamegraph.pl`` and speedscope.  No signals, no C extension,
no third-party profiler: ``sys._current_frames`` holds the GIL for the
duration of one snapshot, so a sample costs roughly *threads x depth*
attribute reads and the profiled process keeps serving.

On interpreters without ``sys._current_frames`` (it is a CPython
implementation detail) the profiler degrades to a safe no-op: sessions
report ``"supported": false`` and an empty profile instead of failing.

Engine phase annotations
------------------------
The release engine marks its execution phases (the same boundaries PR 8's
trace spans use — ``engine.starting_context`` / ``engine.sample`` /
``engine.select``) on the *calling thread* via :func:`set_engine_phase`.
While at least one profiler session is live, the sampler prepends the
thread's current phase as a synthetic ``[phase]`` frame right after the
thread root, so hot stacks group by engine phase in the flamegraph.
When no session is running, :func:`set_engine_phase` is one module-global
integer read — the serving hot path pays nothing
(``benchmarks/bench_obs_overhead.py`` gates the idle cost).

Serving integration
-------------------
Workers expose ``GET /v1/debug/profile?seconds=N&hz=M`` through a
:class:`ProfileSessions` registry: every in-flight session is tracked so
server drain can *disarm* it — the session wakes early, returns the
samples it has, and the drain barrier never waits out a 30-second
profile.  A disarmed registry refuses new sessions with
:class:`ProfilerDisarmed`, which the HTTP layer maps to the same typed
503 + ``Retry-After`` as every other drain-guarded route.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_SECONDS",
    "MAX_HZ",
    "MAX_SECONDS",
    "ProfileSessions",
    "ProfilerDisarmed",
    "SamplingProfiler",
    "collect_profile",
    "merge_folded",
    "profiler_supported",
    "profiling_active",
    "render_folded",
    "set_engine_phase",
    "validate_profile_args",
]

DEFAULT_SECONDS = 5.0
DEFAULT_HZ = 99.0
MAX_SECONDS = 60.0
MAX_HZ = 1000.0

#: Frames kept per stack (deeper stacks are truncated at the root end,
#: keeping the leaves — the hot code — intact).
MAX_STACK_DEPTH = 64

#: Number of live sampling sessions, module-wide.  Read unlocked on the
#: hot path (:func:`set_engine_phase`); mutated under ``_active_lock``.
_active_sessions = 0
_active_lock = threading.Lock()

#: thread ident -> current engine phase (annotated into sampled stacks).
_engine_phases: Dict[int, str] = {}


class ProfilerDisarmed(RuntimeError):
    """New profile session refused: the server is draining."""


def profiler_supported() -> bool:
    """Whether this interpreter can sample stacks at all."""
    return hasattr(sys, "_current_frames")


def profiling_active() -> bool:
    """True while at least one :class:`SamplingProfiler` is sampling."""
    return _active_sessions > 0


def set_engine_phase(name: Optional[str]) -> None:
    """Mark (or with ``None`` clear) the calling thread's engine phase.

    Single dict write keyed by thread ident, and only while a profiler
    session is live — idle cost is one global integer comparison.
    Clearing always runs so a session starting mid-release never inherits
    a stale phase from a previous one.
    """
    if name is None:
        _engine_phases.pop(threading.get_ident(), None)
    elif _active_sessions > 0:
        _engine_phases[threading.get_ident()] = name


def validate_profile_args(
    seconds: Optional[float], hz: Optional[float]
) -> Tuple[float, float]:
    """Clamp-and-validate endpoint parameters; raises ``ValueError``."""
    seconds = DEFAULT_SECONDS if seconds is None else float(seconds)
    hz = DEFAULT_HZ if hz is None else float(hz)
    if not 0.0 < seconds <= MAX_SECONDS:
        raise ValueError(
            f"seconds must be in (0, {MAX_SECONDS:g}], got {seconds:g}"
        )
    if not 1.0 <= hz <= MAX_HZ:
        raise ValueError(f"hz must be in [1, {MAX_HZ:g}], got {hz:g}")
    return seconds, hz


def _frame_label(frame) -> str:
    """``module.function`` with folded-format separators sanitised out."""
    module = frame.f_globals.get("__name__") or "?"
    label = f"{module}.{frame.f_code.co_name}"
    return label.replace(";", ":").replace(" ", "_")


def _thread_label(name: str) -> str:
    return (name or "?").replace(";", ":").replace(" ", "_")


class SamplingProfiler:
    """One sampling session: a daemon thread folding stack snapshots.

    Use :meth:`start` / :meth:`stop`, or the blocking
    :func:`collect_profile` helper.  ``folded()`` returns the collapsed
    stacks accumulated so far (``{stack: count}``); :meth:`result` wraps
    them in the JSON payload the debug endpoint serves.
    """

    def __init__(self, hz: float = DEFAULT_HZ):
        if not 1.0 <= float(hz) <= MAX_HZ:
            raise ValueError(f"hz must be in [1, {MAX_HZ:g}], got {hz}")
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        self._folded: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._samples = 0
        self._max_threads = 0
        self._started_at: Optional[float] = None
        self._duration = 0.0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent; no-op on unsupported platforms)."""
        global _active_sessions
        if self._thread is not None or not profiler_supported():
            return self
        self._started_at = time.monotonic()
        with _active_lock:
            _active_sessions += 1
        self._thread = threading.Thread(
            target=self._run, name="pcor-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the sampler thread (idempotent)."""
        global _active_sessions
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
            with _active_lock:
                _active_sessions -= 1
        if self._started_at is not None:
            self._duration = time.monotonic() - self._started_at
            self._started_at = None
        return self

    def _run(self) -> None:
        next_tick = time.monotonic()
        while True:
            self._sample_once()
            next_tick += self.interval
            delay = next_tick - time.monotonic()
            if delay <= 0:
                # Sampling overran the cadence (huge thread count or a
                # stalled box): resynchronise rather than spin to catch up.
                next_tick = time.monotonic()
                if self._stop.is_set():
                    return
                continue
            if self._stop.wait(delay):
                return

    # ------------------------------------------------------------- sampling

    def _sample_once(self) -> None:
        own = threading.get_ident()
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - interpreter quirk
            return
        names = {t.ident: t.name for t in threading.enumerate()}
        counted = 0
        with self._lock:
            for ident, frame in frames.items():
                if ident == own:
                    continue
                stack: List[str] = []
                depth = 0
                while frame is not None and depth < MAX_STACK_DEPTH:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                stack.reverse()
                parts = [_thread_label(names.get(ident, f"tid-{ident}"))]
                phase = _engine_phases.get(ident)
                if phase is not None:
                    parts.append(f"[{phase}]")
                parts.extend(stack)
                key = ";".join(parts)
                self._folded[key] = self._folded.get(key, 0) + 1
                counted += 1
            self._samples += 1
            self._max_threads = max(self._max_threads, counted)

    # -------------------------------------------------------------- results

    def folded(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._folded)

    def result(
        self, seconds: Optional[float] = None, disarmed: bool = False
    ) -> Dict[str, Any]:
        """The debug-endpoint payload for this session."""
        with self._lock:
            folded = dict(self._folded)
            samples = self._samples
            threads = self._max_threads
        return {
            "supported": profiler_supported(),
            "seconds": (
                float(seconds) if seconds is not None else self._duration
            ),
            "duration_s": round(self._duration, 3),
            "hz": self.hz,
            "samples": samples,
            "threads": threads,
            "disarmed": bool(disarmed),
            "folded": folded,
        }


def collect_profile(
    seconds: float = DEFAULT_SECONDS,
    hz: float = DEFAULT_HZ,
    stop: Optional[threading.Event] = None,
) -> Dict[str, Any]:
    """Profile this process for ``seconds`` and return the payload.

    Blocks the calling thread (the HTTP handler).  An external ``stop``
    event ends the session early — the drain-disarm path — returning
    whatever samples were gathered, flagged ``"disarmed": true``.
    """
    seconds, hz = validate_profile_args(seconds, hz)
    profiler = SamplingProfiler(hz=hz).start()
    try:
        if stop is None:
            time.sleep(seconds)
            disarmed = False
        else:
            disarmed = stop.wait(seconds)
    finally:
        profiler.stop()
    return profiler.result(seconds=seconds, disarmed=disarmed)


class ProfileSessions:
    """Per-server registry of in-flight profile sessions.

    The server owns one; :meth:`run` backs the debug endpoint and
    :meth:`disarm` is called at the top of shutdown, *before* the drain
    barrier waits — otherwise a 30-second profile session parked inside
    the drain window would stall (and then time out) the drain.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stops: List[threading.Event] = []
        self._disarmed = False

    @property
    def disarmed(self) -> bool:
        return self._disarmed

    def run(
        self, seconds: Optional[float] = None, hz: Optional[float] = None
    ) -> Dict[str, Any]:
        """Run one blocking session; raises :class:`ProfilerDisarmed` if
        the server is already draining."""
        seconds, hz = validate_profile_args(seconds, hz)
        stop = threading.Event()
        with self._lock:
            if self._disarmed:
                raise ProfilerDisarmed(
                    "server is draining; profiling is disarmed"
                )
            self._stops.append(stop)
        try:
            return collect_profile(seconds, hz, stop=stop)
        finally:
            with self._lock:
                if stop in self._stops:
                    self._stops.remove(stop)

    def disarm(self) -> None:
        """Refuse new sessions and wake every in-flight one (idempotent)."""
        with self._lock:
            self._disarmed = True
            stops = list(self._stops)
        for stop in stops:
            stop.set()


# ----------------------------------------------------------------- folding


def merge_folded(
    profiles: List[Tuple[str, Dict[str, int]]]
) -> Dict[str, int]:
    """Merge per-source folded stacks under ``<prefix>;`` roots.

    The router labels each worker's profile ``shard<N>`` (and its own
    ``router``), so one flamegraph shows the whole fleet side by side.
    """
    merged: Dict[str, int] = {}
    for prefix, folded in profiles:
        prefix = _thread_label(str(prefix))
        for stack, count in (folded or {}).items():
            key = f"{prefix};{stack}"
            merged[key] = merged.get(key, 0) + int(count)
    return merged


def render_folded(folded: Dict[str, int]) -> str:
    """The collapsed-stack text format ``flamegraph.pl`` / speedscope
    ingest directly: one ``stack count`` line, sorted for stable diffs."""
    return "\n".join(
        f"{stack} {count}" for stack, count in sorted(folded.items())
    ) + ("\n" if folded else "")

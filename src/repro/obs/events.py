"""A bounded in-memory ring of recent structured events.

Every serving event already flows through :func:`repro.obs.logs.log_event`
— request, flush, heartbeat, register, respawn, worker death, drain.
This module tees those records into a bounded :class:`EventBuffer` via a
plain :class:`logging.Handler`, so ``GET /v1/debug/events?n=K`` can show
an operator the last K events of a live worker without scraping stdout.

The tee is a logging handler (not a patch of ``log_event``) so it
captures every emitter on the ``repro`` logger tree for free and
composes with :func:`~repro.obs.logs.configure_logging` — the stream
formatter and the ring see the same records.  Installation raises the
``repro`` logger to INFO if it was effectively quieter, because
``log_event`` short-circuits below the logger's effective level; with
``propagate`` left alone, stdlib's last-resort handler still only prints
WARNING and above, so installing the ring does not spam stderr.

One buffer sees the whole process: in production one process hosts one
server (or one router), so the ring *is* that server's event history.
In-process test fleets (``manager = "thread"``) share a process, so each
server's ring also sees its siblings' events — a documented degeneracy
of the in-process manager, not of the production topology.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.logs import EVENT_ATTR, FIELDS_ATTR

__all__ = [
    "DEFAULT_CAPACITY",
    "MAX_TAIL",
    "EventBuffer",
    "EventBufferHandler",
    "install_event_buffer",
    "uninstall_event_buffer",
]

DEFAULT_CAPACITY = 512

#: Upper bound on ``?n=`` (the ring itself is the real cap).
MAX_TAIL = 10_000


def _jsonable(value: Any) -> Any:
    """Event fields must survive ``json.dumps`` without a default hook
    (the HTTP layer serialises payloads strictly)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    try:
        return json.loads(json.dumps(value, default=str))
    except (TypeError, ValueError):  # pragma: no cover - exotic reprs
        return str(value)


class EventBuffer:
    """Thread-safe bounded ring of event dicts with a running sequence.

    ``total`` counts every event ever appended; ``total - len(ring)`` is
    how many the ring has dropped — surfaced by the debug endpoint so an
    operator knows when the window is incomplete.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._total = 0

    def append(self, body: Dict[str, Any]) -> None:
        with self._lock:
            self._total += 1
            body["seq"] = self._total
            self._ring.append(body)

    @property
    def total(self) -> int:
        return self._total

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` events, oldest first."""
        if n is None:
            n = self.capacity
        n = max(0, min(int(n), MAX_TAIL))
        if n == 0:
            return []  # events[-0:] would be the whole ring
        with self._lock:
            events = list(self._ring)
        return [dict(e) for e in events[-n:]]

    def snapshot(self, n: Optional[int] = None) -> Dict[str, Any]:
        """The ``/v1/debug/events`` payload body."""
        events = self.tail(n)
        with self._lock:
            total = self._total
            buffered = len(self._ring)
        return {
            "events": events,
            "capacity": self.capacity,
            "buffered": buffered,
            "total": total,
            "dropped": total - buffered,
        }


class EventBufferHandler(logging.Handler):
    """Tee structured ``log_event`` records into an :class:`EventBuffer`.

    Plain (non-event) records are ignored — the ring is an event history,
    not a log mirror.
    """

    def __init__(self, buffer: EventBuffer):
        super().__init__(level=logging.DEBUG)
        self.buffer = buffer
        self._pcor_events = True  # marker for introspection/tests

    def emit(self, record: logging.LogRecord) -> None:
        try:
            event = getattr(record, EVENT_ATTR, None)
            if event is None:
                return
            body: Dict[str, Any] = {
                "ts": round(record.created, 6),
                "level": record.levelname,
                "logger": record.name,
                "event": str(event),
            }
            for key, value in (getattr(record, FIELDS_ATTR, None) or {}).items():
                if key not in body:
                    body[key] = _jsonable(value)
            self.buffer.append(body)
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


def install_event_buffer(
    capacity: int = DEFAULT_CAPACITY, logger_name: str = "repro"
) -> EventBufferHandler:
    """Attach a fresh ring to the ``repro`` logger tree.

    Returns the handler (``handler.buffer`` is the ring).  Each caller
    gets its own ring — handlers stack rather than replace, so a server
    and a router in one process each keep their own history.  The logger
    is raised to INFO if it was effectively quieter, otherwise
    ``log_event`` would never reach any handler.
    """
    logger = logging.getLogger(logger_name)
    handler = EventBufferHandler(EventBuffer(capacity))
    logger.addHandler(handler)
    if logger.getEffectiveLevel() > logging.INFO:
        logger.setLevel(logging.INFO)
    return handler


def uninstall_event_buffer(
    handler: EventBufferHandler, logger_name: str = "repro"
) -> None:
    """Detach a handler installed by :func:`install_event_buffer`."""
    logging.getLogger(logger_name).removeHandler(handler)

"""Lock-cheap metrics primitives + Prometheus text exposition (0.0.4).

Zero dependencies: counters, gauges, and fixed-bucket histograms with
optional label dimensions, registered in a :class:`MetricsRegistry` and
rendered in the Prometheus text exposition format.  Each metric guards
its children with one ``threading.Lock`` — an increment is a dict lookup
plus a float add under an uncontended lock, cheap enough for the serving
hot path (gated by ``benchmarks/bench_obs_overhead.py``).

The JSON bodies served by ``/v1/metrics`` stay byte-compatible: metrics
that back them expose ``items()`` snapshots so the legacy dict shapes
are derived views over the registry, not a second set of counters.

:class:`MetricFamily` is the neutral rendering unit — the registry
collects into families, and scrape-time derived metrics (per-dataset
engine counters, per-tenant spend) are built as families directly by
:mod:`repro.obs.export` without needing registry objects.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: The Content-Type of the text exposition (served by
#: ``GET /v1/metrics/prometheus``).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Fixed latency buckets (seconds) — sub-ms to 10 s, Prometheus-style.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

_INF = float("inf")

LabelValues = Tuple[str, ...]


@dataclass
class MetricFamily:
    """One exposition family: header lines plus flat samples.

    ``samples`` rows are ``(suffix, labels, value)`` — suffix is ``""``
    for plain samples and ``"_bucket"``/``"_sum"``/``"_count"`` for
    histogram series.
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    samples: List[Tuple[str, Dict[str, str], float]] = field(default_factory=list)


def counter_family(
    name: str, help: str, samples: Iterable[Tuple[Dict[str, str], float]]
) -> MetricFamily:
    return MetricFamily(name, "counter", help, [("", dict(l), v) for l, v in samples])


def gauge_family(
    name: str, help: str, samples: Iterable[Tuple[Dict[str, str], float]]
) -> MetricFamily:
    return MetricFamily(name, "gauge", help, [("", dict(l), v) for l, v in samples])


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels.items())
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_text(families: Iterable[MetricFamily]) -> str:
    """Render families in the Prometheus text format (one family block
    per metric name: ``# HELP``, ``# TYPE``, then the samples)."""
    lines: List[str] = []
    for fam in families:
        if not fam.samples:
            continue
        lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for suffix, labels, value in fam.samples:
            lines.append(
                f"{fam.name}{suffix}{_labels_text(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"


class _Metric:
    """Base: a named family with label-tuple-keyed children."""

    kind = ""

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: LabelValues) -> LabelValues:
        labels = tuple(str(v) for v in labels)
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} label "
                f"value(s), got {len(labels)}"
            )
        return labels

    def _labels_dict(self, key: LabelValues) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Metric):
    """Monotonically non-decreasing count (resets only on restart)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._children: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, labels: LabelValues = ()) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, labels: LabelValues = ()) -> float:
        key = self._key(labels)
        with self._lock:
            return self._children.get(key, 0.0)

    def items(self) -> List[Tuple[LabelValues, float]]:
        with self._lock:
            return sorted(self._children.items())

    def family(self) -> MetricFamily:
        return MetricFamily(
            self.name,
            self.kind,
            self.help,
            [("", self._labels_dict(k), v) for k, v in self.items()],
        )


class Gauge(_Metric):
    """A value that can go up and down (queue depth, budget remaining)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._children: Dict[LabelValues, float] = {}

    def set(self, value: float, labels: LabelValues = ()) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, labels: LabelValues = ()) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, labels: LabelValues = ()) -> float:
        key = self._key(labels)
        with self._lock:
            return self._children.get(key, 0.0)

    def items(self) -> List[Tuple[LabelValues, float]]:
        with self._lock:
            return sorted(self._children.items())

    def family(self) -> MetricFamily:
        return MetricFamily(
            self.name,
            self.kind,
            self.help,
            [("", self._labels_dict(k), v) for k, v in self.items()],
        )


class Histogram(_Metric):
    """Fixed-bucket histogram: per-bucket counts, sum, and count.

    Buckets are upper bounds in ascending order (``le`` semantics,
    inclusive); a final ``+Inf`` bucket is implicit.  Observation is a
    ``bisect`` plus two float adds under the metric lock.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be ascending and unique")
        self.buckets = bounds
        # child: [per-bucket counts (len(bounds)+1, last is +Inf), sum]
        self._children: Dict[LabelValues, List] = {}

    def observe(self, value: float, labels: LabelValues = ()) -> None:
        key = self._key(labels)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = [[0] * (len(self.buckets) + 1), 0.0]
                self._children[key] = child
            child[0][idx] += 1
            child[1] += value

    def snapshot(
        self, labels: LabelValues = ()
    ) -> Optional[Tuple[List[int], float, int]]:
        """``(per_bucket_counts, sum, count)`` or ``None`` if unobserved."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                return None
            return list(child[0]), child[1], sum(child[0])

    def family(self) -> MetricFamily:
        with self._lock:
            children = {k: (list(v[0]), v[1]) for k, v in self._children.items()}
        samples: List[Tuple[str, Dict[str, str], float]] = []
        for key in sorted(children):
            counts, total = children[key]
            labels = self._labels_dict(key)
            cumulative = 0
            for bound, count in zip(self.buckets + (_INF,), counts):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                samples.append(("_bucket", bucket_labels, float(cumulative)))
            samples.append(("_sum", labels, total))
            samples.append(("_count", dict(labels), float(cumulative)))
        return MetricFamily(self.name, self.kind, self.help, samples)


class MetricsRegistry:
    """Get-or-create registry of named metrics, rendered in one scrape."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, labelnames=labelnames, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls) or metric.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with a different "
                    "type or label set"
                )
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._get(Histogram, name, help, labelnames, buckets=buckets)

    def collect(self) -> List[MetricFamily]:
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return [m.family() for m in metrics]

    def render(self) -> str:
        return render_text(self.collect())

"""Trace contexts: per-request ids and span timelines for the serving stack.

A :class:`Trace` is minted once at the edge (router or server), carried
through every layer of a release — HTTP handler, coalescer flush, engine
execution, runtime backend (including subprocess workers) — and records
a flat list of spans against one shared clock origin.

Propagation is explicit, not ambient: threads don't inherit
``contextvars`` through ``ThreadPoolExecutor``, so the trace rides on
the :class:`~repro.service.engine.ReleaseRequest` itself and crosses the
router→worker HTTP hop in the ``X-PCOR-Trace`` header
(``<trace_id>;t0=<monotonic>;s=<0|1>``).

``t0`` is a ``time.monotonic()`` origin captured when the trace is
minted.  ``CLOCK_MONOTONIC`` is system-wide uniform on Linux, so worker
subprocesses handed the same ``t0`` produce span offsets on the same
timeline as the parent — no cross-process clock stitching.

Unsampled traces keep their id (logs can still correlate) but record no
spans and skip all timing calls, which is what keeps the unsampled hot
path free.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

TRACE_HEADER = "X-PCOR-Trace"

_HEX = set("0123456789abcdef")


class Trace:
    """One request's trace: an id, a clock origin, and a span timeline."""

    __slots__ = ("trace_id", "sampled", "t0", "_spans", "_lock")

    def __init__(
        self, trace_id: str, sampled: bool = True, t0: Optional[float] = None
    ):
        self.trace_id = trace_id
        self.sampled = bool(sampled)
        self.t0 = time.monotonic() if t0 is None else float(t0)
        self._spans: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    @classmethod
    def mint(cls, sampled: bool = True) -> "Trace":
        return cls(os.urandom(8).hex(), sampled=sampled)

    def add_span(
        self, name: str, started_at: float, ended_at: float, **attrs: Any
    ) -> None:
        """Record one span from monotonic timestamps (no-op when unsampled)."""
        if not self.sampled:
            return
        span: Dict[str, Any] = {
            "name": name,
            "start_ms": round((started_at - self.t0) * 1000.0, 3),
            "duration_ms": round((ended_at - started_at) * 1000.0, 3),
        }
        if attrs:
            span.update(attrs)
        with self._lock:
            self._spans.append(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator["Trace"]:
        started = time.monotonic()
        try:
            yield self
        finally:
            self.add_span(name, started, time.monotonic(), **attrs)

    def extend(self, spans: Optional[Iterable[Dict[str, Any]]]) -> None:
        """Graft spans recorded elsewhere (e.g. in a subprocess worker)."""
        spans = list(spans or ())
        if not spans:
            return
        with self._lock:
            self._spans.extend(spans)

    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "spans": sorted(
                self.spans(), key=lambda s: (s["start_ms"], s["name"])
            ),
        }

    # ------------------------------------------------------------------
    # header codec (router -> worker propagation)
    # ------------------------------------------------------------------
    def header_value(self) -> str:
        return f"{self.trace_id};t0={self.t0!r};s={1 if self.sampled else 0}"

    @classmethod
    def from_header(cls, value: str) -> Optional["Trace"]:
        """Parse an ``X-PCOR-Trace`` value; ``None`` if malformed."""
        parts = [p.strip() for p in value.split(";")]
        trace_id = parts[0]
        if not trace_id or len(trace_id) > 64 or not set(trace_id) <= _HEX:
            return None
        t0: Optional[float] = None
        sampled = True
        for part in parts[1:]:
            key, _, raw = part.partition("=")
            if key == "t0":
                try:
                    t0 = float(raw)
                except ValueError:
                    return None
            elif key == "s":
                sampled = raw != "0"
        return cls(trace_id, sampled=sampled, t0=t0)


def sampled_for(trace_id: str, rate: float) -> bool:
    """Deterministic-by-id sampling decision: same id, same verdict on
    every host — a trace is either followed everywhere or nowhere."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return int(trace_id[:8], 16) / 0xFFFFFFFF < rate


def trace_for_request(header_value: Optional[str], obs) -> Optional[Trace]:
    """The trace for an incoming request, or ``None`` when tracing is off.

    An incoming ``X-PCOR-Trace`` header is adopted verbatim — its
    sampling flag wins, because the minting edge already rolled the
    dice.  Otherwise a fresh trace is minted with a deterministic-by-id
    decision against ``obs.sample_rate``.
    """
    if obs is None or not obs.enabled:
        return None
    if header_value:
        trace = Trace.from_header(header_value)
        if trace is not None:
            return trace
    trace = Trace.mint()
    trace.sampled = sampled_for(trace.trace_id, obs.sample_rate)
    return trace


def process_rss_bytes() -> Optional[int]:
    """Resident set size of this process, or ``None`` if unreadable.

    Reads ``/proc/self/status`` (Linux); falls back to the peak-RSS
    rusage counter elsewhere.  No third-party process libraries.
    """
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without rusage
        return None

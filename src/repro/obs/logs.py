"""Structured logging: one JSON (or ``key=value`` text) line per event.

Serving events — request, flush, heartbeat, register, respawn, drain —
are emitted through :func:`log_event`, which attaches the event name and
a flat field dict to the log record.  The two formatters render the same
records either as JSON lines (``--log-format json``; one parseable
object per line with ``ts``/``level``/``logger``/``event`` always
present) or as terse text (``--log-format text``, the default).

Emission cost when logging is not configured is one ``isEnabledFor``
check (the root logger defaults to WARNING, so INFO events
short-circuit) — the serving hot path pays nothing unless someone is
listening.
"""

from __future__ import annotations

import json
import logging
from typing import Optional, TextIO

EVENT_ATTR = "pcor_event"
FIELDS_ATTR = "pcor_fields"

#: Keys every JSON log line carries (validated by the log-schema test).
REQUIRED_KEYS = ("ts", "level", "logger", "event")

LOG_FORMATS = ("text", "json")


def log_event(
    logger: logging.Logger, event: str, level: int = logging.INFO, **fields
) -> None:
    """Emit one structured event line on ``logger``.

    ``fields`` must be JSON-serialisable scalars/lists/dicts (anything
    else is stringified by the formatter).  No-op below the logger's
    effective level.
    """
    if not logger.isEnabledFor(level):
        return
    logger.log(
        level, "%s", event, extra={EVENT_ATTR: event, FIELDS_ATTR: fields}
    )


class JsonEventFormatter(logging.Formatter):
    """One JSON object per line; plain (non-event) records keep their
    rendered message as the ``event`` value so every line parses."""

    def format(self, record: logging.LogRecord) -> str:
        body = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": getattr(record, EVENT_ATTR, None) or record.getMessage(),
        }
        fields = getattr(record, FIELDS_ATTR, None)
        if fields:
            for key, value in fields.items():
                if key not in body:
                    body[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            body["exception"] = record.exc_info[0].__name__
        return json.dumps(body, default=str)


class TextEventFormatter(logging.Formatter):
    """``level logger event k=v ...`` — greppable, no JSON tooling needed."""

    def format(self, record: logging.LogRecord) -> str:
        event = getattr(record, EVENT_ATTR, None)
        prefix = f"{record.levelname.lower()} {record.name}"
        if event is None:
            return f"{prefix} {record.getMessage()}"
        fields = getattr(record, FIELDS_ATTR, None) or {}
        tail = " ".join(f"{k}={v}" for k, v in fields.items())
        return f"{prefix} {event}" + (f" {tail}" if tail else "")


def configure_logging(
    fmt: str = "text",
    level: int = logging.INFO,
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Install a handler + formatter on the ``repro`` logger tree.

    Idempotent: a previous handler installed by this function is
    replaced, not stacked.  Returns the handler (tests capture its
    stream).
    """
    if fmt not in LOG_FORMATS:
        raise ValueError(f"log format must be one of {LOG_FORMATS}, got {fmt!r}")
    logger = logging.getLogger("repro")
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        JsonEventFormatter() if fmt == "json" else TextEventFormatter()
    )
    handler._pcor_obs = True  # type: ignore[attr-defined]
    logger.handlers = [
        h for h in logger.handlers if not getattr(h, "_pcor_obs", False)
    ]
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return handler

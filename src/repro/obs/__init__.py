"""Observability for the PCOR serving stack — zero dependencies.

Three primitives, wired through every layer (engine, runtime backends,
HTTP server + coalescer, sharded router/fleet):

* :mod:`repro.obs.trace` — per-request trace contexts with span
  timelines, propagated via the ``X-PCOR-Trace`` header and the release
  request itself (including into subprocess workers).
* :mod:`repro.obs.metrics` — lock-cheap counters/gauges/histograms and
  the Prometheus text exposition; :mod:`repro.obs.export` maps the
  byte-compatible ``/v1/metrics`` JSON into labelled families and
  merges worker expositions at the router.
* :mod:`repro.obs.logs` — structured event logging (JSON or text lines)
  behind ``pcor serve --log-format``.

Two debug-introspection primitives ride on top of them:

* :mod:`repro.obs.profiler` — a sampling wall-clock profiler producing
  collapsed-stack ("folded flamegraph") output with engine-phase frame
  annotations, behind ``GET /v1/debug/profile``.
* :mod:`repro.obs.events` — a bounded ring of recent structured events
  tee'd off :func:`log_event`, behind ``GET /v1/debug/events``.

Configured through the ``[observability]`` section of the server config
(:class:`repro.server.ObservabilityConfig`).
"""

from repro.obs.logs import (
    REQUIRED_KEYS,
    JsonEventFormatter,
    TextEventFormatter,
    configure_logging,
    log_event,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    counter_family,
    gauge_family,
    render_text,
)
from repro.obs.export import (
    dataset_families,
    merge_expositions,
    merged_exposition,
    validate_exposition,
)
from repro.obs.events import (
    EventBuffer,
    EventBufferHandler,
    install_event_buffer,
    uninstall_event_buffer,
)
from repro.obs.profiler import (
    ProfileSessions,
    ProfilerDisarmed,
    SamplingProfiler,
    collect_profile,
    merge_folded,
    profiler_supported,
    profiling_active,
    render_folded,
    set_engine_phase,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Trace,
    process_rss_bytes,
    sampled_for,
    trace_for_request,
)

__all__ = [
    "TRACE_HEADER",
    "Trace",
    "trace_for_request",
    "sampled_for",
    "process_rss_bytes",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "DEFAULT_LATENCY_BUCKETS",
    "counter_family",
    "gauge_family",
    "render_text",
    "dataset_families",
    "merge_expositions",
    "merged_exposition",
    "validate_exposition",
    "EventBuffer",
    "EventBufferHandler",
    "install_event_buffer",
    "uninstall_event_buffer",
    "ProfileSessions",
    "ProfilerDisarmed",
    "SamplingProfiler",
    "collect_profile",
    "merge_folded",
    "profiler_supported",
    "profiling_active",
    "render_folded",
    "set_engine_phase",
    "configure_logging",
    "log_event",
    "JsonEventFormatter",
    "TextEventFormatter",
    "REQUIRED_KEYS",
]

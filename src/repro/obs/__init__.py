"""Observability for the PCOR serving stack — zero dependencies.

Three primitives, wired through every layer (engine, runtime backends,
HTTP server + coalescer, sharded router/fleet):

* :mod:`repro.obs.trace` — per-request trace contexts with span
  timelines, propagated via the ``X-PCOR-Trace`` header and the release
  request itself (including into subprocess workers).
* :mod:`repro.obs.metrics` — lock-cheap counters/gauges/histograms and
  the Prometheus text exposition; :mod:`repro.obs.export` maps the
  byte-compatible ``/v1/metrics`` JSON into labelled families and
  merges worker expositions at the router.
* :mod:`repro.obs.logs` — structured event logging (JSON or text lines)
  behind ``pcor serve --log-format``.

Configured through the ``[observability]`` section of the server config
(:class:`repro.server.ObservabilityConfig`).
"""

from repro.obs.logs import (
    REQUIRED_KEYS,
    JsonEventFormatter,
    TextEventFormatter,
    configure_logging,
    log_event,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    counter_family,
    gauge_family,
    render_text,
)
from repro.obs.export import dataset_families, merge_expositions, merged_exposition
from repro.obs.trace import (
    TRACE_HEADER,
    Trace,
    process_rss_bytes,
    sampled_for,
    trace_for_request,
)

__all__ = [
    "TRACE_HEADER",
    "Trace",
    "trace_for_request",
    "sampled_for",
    "process_rss_bytes",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "DEFAULT_LATENCY_BUCKETS",
    "counter_family",
    "gauge_family",
    "render_text",
    "dataset_families",
    "merge_expositions",
    "merged_exposition",
    "configure_logging",
    "log_event",
    "JsonEventFormatter",
    "TextEventFormatter",
    "REQUIRED_KEYS",
]

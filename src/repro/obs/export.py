"""Prometheus export of the serving stack's metrics.

Two concerns live here:

* :func:`dataset_families` — map the (byte-compatible, JSON-first)
  ``/v1/metrics`` per-dataset bodies into ``pcor_*`` metric families
  with a ``dataset`` label.  This is a scrape-time derived view: the
  engine/coalescer keep their typed counters, and the exposition is
  computed from the same snapshot the JSON endpoint serves, so the hot
  path pays nothing for the second format.
* :func:`merge_expositions` — the router-side aggregation: take each
  live worker's exposition text verbatim, inject a ``shard`` label into
  every sample, and merge family blocks so each metric name appears
  exactly once (duplicate ``# TYPE`` lines are invalid exposition).

Naming follows Prometheus conventions: counters end in ``_total``,
durations are ``_seconds`` — which is where the JSON key
``batch_queue_wait_s`` gets its properly unit-suffixed exposition name
``pcor_batch_queue_wait_seconds_total``.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple

from repro.obs.metrics import MetricFamily, render_text

# (json_key, exposition name, help) — counters: monotone within a server
# process, reset on restart.
_DATASET_COUNTERS = (
    ("requests_submitted", "pcor_requests_submitted_total",
     "Release requests accepted for execution."),
    ("releases_completed", "pcor_releases_completed_total",
     "Releases executed to completion."),
    ("requests_rejected", "pcor_requests_rejected_total",
     "Admissions rejected (budget exhausted or invalid)."),
    ("ledger_charges", "pcor_ledger_charges_total",
     "Epsilon charges appended to the privacy ledger."),
    ("epsilon_spent", "pcor_epsilon_spent_total",
     "Total privacy budget charged against the dataset."),
    ("profile_hits", "pcor_profile_hits_total",
     "Context-profile cache hits."),
    ("profile_misses", "pcor_profile_misses_total",
     "Context-profile cache misses."),
    ("profile_evictions", "pcor_profile_evictions_total",
     "Context-profile cache evictions."),
    ("fm_evaluations", "pcor_fm_evaluations_total",
     "Detector (f_M) evaluations performed."),
    ("fm_queries", "pcor_fm_queries_total",
     "Detector query batches issued."),
    ("release_tasks", "pcor_release_tasks_total",
     "Release tasks dispatched to the runtime backend."),
    ("profile_tasks", "pcor_profile_tasks_total",
     "Profile warm-up tasks dispatched to the runtime backend."),
    ("wall_time_s", "pcor_engine_wall_seconds_total",
     "Engine wall-clock seconds spent executing releases."),
    ("batch_flushes", "pcor_batch_flushes_total",
     "Coalescer batch flushes."),
    ("batch_requests", "pcor_batch_requests_total",
     "Requests that flowed through the coalescer."),
    ("batch_queue_wait_s", "pcor_batch_queue_wait_seconds_total",
     "Seconds requests spent queued in the coalescer before flush."),
    ("appends", "pcor_appends_total",
     "Live append operations committed against the dataset."),
    ("profiles_invalidated", "pcor_profiles_invalidated_total",
     "Cached context profiles dropped by targeted append invalidation."),
)

# Gauges: point-in-time values, free to move either way.
_DATASET_GAUGES = (
    ("epsilon_budget", "pcor_epsilon_budget",
     "Configured dataset-global privacy budget."),
    ("epsilon_remaining", "pcor_epsilon_remaining",
     "Privacy budget still unspent."),
    ("profiles_cached", "pcor_profiles_cached",
     "Context profiles currently cached."),
    ("n_verifiers", "pcor_verifiers",
     "Verifier instances alive for the dataset."),
    ("backend_workers", "pcor_backend_workers",
     "Workers attached to the runtime backend."),
    ("batch_queue_depth", "pcor_batch_queue_depth",
     "Requests currently queued in the coalescer."),
    ("batch_size_min", "pcor_batch_size_min",
     "Smallest flushed batch in the recent window."),
    ("batch_size_p50", "pcor_batch_size_p50",
     "Median flushed batch size in the recent window."),
    ("batch_size_max", "pcor_batch_size_max",
     "Largest flushed batch in the recent window."),
    ("dataset_version", "pcor_dataset_version",
     "Append counter of the served dataset (0 = as loaded)."),
)


def dataset_families(datasets: Dict[str, dict]) -> List[MetricFamily]:
    """``pcor_*`` families over the ``/v1/metrics`` ``datasets`` section."""
    families: List[MetricFamily] = []

    for json_key, name, help in _DATASET_COUNTERS:
        fam = MetricFamily(name, "counter", help)
        for dataset in sorted(datasets):
            body = datasets[dataset]
            if json_key in body and body[json_key] is not None:
                fam.samples.append(
                    ("", {"dataset": dataset}, float(body[json_key]))
                )
        if fam.samples:
            families.append(fam)

    for json_key, name, help in _DATASET_GAUGES:
        fam = MetricFamily(name, "gauge", help)
        for dataset in sorted(datasets):
            body = datasets[dataset]
            value = body.get(json_key)
            if value is not None:
                fam.samples.append(("", {"dataset": dataset}, float(value)))
        if fam.samples:
            families.append(fam)

    phase_wall = MetricFamily(
        "pcor_phase_wall_seconds_total", "counter",
        "Engine wall-clock seconds by execution phase.",
    )
    phase_tasks = MetricFamily(
        "pcor_phase_tasks_total", "counter",
        "Backend tasks dispatched by execution phase.",
    )
    for dataset in sorted(datasets):
        body = datasets[dataset]
        for phase, wall in sorted((body.get("phase_wall_s") or {}).items()):
            phase_wall.samples.append(
                ("", {"dataset": dataset, "phase": phase}, float(wall))
            )
        for phase, tasks in sorted((body.get("phase_tasks") or {}).items()):
            phase_tasks.samples.append(
                ("", {"dataset": dataset, "phase": phase}, float(tasks))
            )
    families.extend(fam for fam in (phase_wall, phase_tasks) if fam.samples)

    spend = MetricFamily(
        "pcor_tenant_epsilon_spent", "gauge",
        "Privacy budget spent per tenant (spend-rate numerator).",
    )
    exhausted = MetricFamily(
        "pcor_epsilon_exhausted_total", "counter",
        "Admissions rejected per tenant for insufficient budget.",
    )
    for dataset in sorted(datasets):
        body = datasets[dataset]
        for tenant, eps in sorted((body.get("spend_by_tenant") or {}).items()):
            spend.samples.append(
                ("", {"dataset": dataset, "tenant": tenant}, float(eps))
            )
        for tenant, count in sorted(
            (body.get("tenant_rejections") or {}).items()
        ):
            exhausted.samples.append(
                ("", {"dataset": dataset, "tenant": tenant}, float(count))
            )
    families.extend(fam for fam in (spend, exhausted) if fam.samples)

    return families


def merge_expositions(shard_texts: Iterable[Tuple[int, str]]) -> List[str]:
    """Merge per-worker exposition texts, labelling samples by shard.

    Returns the merged lines (no trailing newline handling — the caller
    joins).  Family headers are emitted once per metric name, in
    first-seen order; every sample line gets ``shard="N"`` injected as
    its first label.  The injection point is found by splitting on the
    first ``{`` (metric names cannot contain ``{``), which is robust to
    ``}`` inside label values.
    """
    order: List[str] = []
    headers: Dict[str, List[str]] = {}
    samples: Dict[str, List[str]] = {}
    for shard, text in shard_texts:
        current = None
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                if name not in headers:
                    headers[name] = []
                    samples[name] = []
                    order.append(name)
                if len(headers[name]) < 2 and line not in headers[name]:
                    headers[name].append(line)
                current = name
                continue
            if line.startswith("#") or current is None:
                continue
            body, _, value = line.rpartition(" ")
            if not body:
                continue
            if "{" in body:
                body = body.replace("{", f'{{shard="{shard}",', 1)
            else:
                body = f'{body}{{shard="{shard}"}}'
            samples[current].append(f"{body} {value}")
    lines: List[str] = []
    for name in order:
        lines.extend(headers[name])
        lines.extend(samples[name])
    return lines


def merged_exposition(
    shard_texts: Iterable[Tuple[int, str]],
    extra_families: Iterable[MetricFamily] = (),
) -> str:
    """One exposition body: shard-labelled worker metrics + extras."""
    lines = merge_expositions(shard_texts)
    extra = render_text(extra_families)
    if extra.strip():
        lines.append(extra.rstrip("\n"))
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ linting

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*)\})?"
    r" (?P<value>\S+)$"
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parses_as_float(value: str) -> bool:
    if value in ("+Inf", "-Inf", "NaN"):
        return True
    try:
        float(value)
        return True
    except ValueError:
        return False


def validate_exposition(text: str) -> List[str]:
    """Lint a text-format-0.0.4 exposition; returns problem strings.

    Checks what a strict scraper would choke on: malformed ``# HELP`` /
    ``# TYPE`` headers, unknown metric types, duplicate ``# TYPE`` lines
    for one family (invalid after merging), sample lines that do not
    parse as ``name{labels} value``, samples whose name matches no
    declared family, and values that are not valid floats.  An empty
    list means the exposition is clean.  Used by the CI telemetry lint
    and the debug-endpoint tests.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    declared: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _METRIC_NAME.match(parts[2]):
                problems.append(f"line {lineno}: malformed header: {line!r}")
                continue
            kind, name = parts[1], parts[2]
            declared.add(name)
            if kind == "TYPE":
                if parts[3] not in _TYPES:
                    problems.append(
                        f"line {lineno}: unknown metric type {parts[3]!r}"
                    )
                if name in typed:
                    problems.append(
                        f"line {lineno}: duplicate # TYPE for {name!r}"
                    )
                typed[name] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment: legal, ignored
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        base = name
        for suffix in _HISTOGRAM_SUFFIXES:
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        if base not in declared:
            problems.append(
                f"line {lineno}: sample {name!r} has no # HELP/# TYPE header"
            )
        if not _parses_as_float(match.group("value")):
            problems.append(
                f"line {lineno}: value {match.group('value')!r} is not a float"
            )
    return problems

"""Bit-packing kernels shared by the mask index and the context space.

The batched verification engine keeps record masks as *bit-packed*
``uint64`` words instead of per-record boolean arrays: a mask over ``n``
records occupies ``ceil(n / 64)`` words, AND/OR become word-wise NumPy ops,
and population counting is a single popcount pass.  Context bitmasks (which
live as arbitrary-precision Python ints because ``t`` can exceed 64) convert
to and from boolean selection rows through the same little-endian bit
layout: bit ``i`` lives in word ``i >> 6`` at position ``i & 63``.

Everything here is pure NumPy and allocation-light; the hot batch kernels in
:mod:`repro.data.masks` are thin loops over these primitives.

A small *kernel registry* at the bottom of this module dispatches the three
batch hot paths — AND-of-OR population evaluation, row popcounts, and
packed-row intersection counts — to either these NumPy fallbacks or the
optional numba-compiled kernels in :mod:`repro.data._kernels`.  Selection
is automatic (native when numba imports, fallback otherwise) and can be
pinned with ``PCOR_NATIVE=0`` (force fallback) / ``PCOR_NATIVE=1`` (require
native; raises if numba is missing).
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

if sys.byteorder != "little":  # pragma: no cover - exotic platforms only
    raise ImportError(
        "repro.bitops packs masks by viewing little-endian byte buffers as "
        "uint64 words; big-endian hosts would silently scramble record bits"
    )

#: Bits per packed word.
WORD_BITS = 64

#: Bytes per packed word.
WORD_BYTES = 8


def words_for(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    return (int(n_bits) + WORD_BITS - 1) >> 6


def pack_bool_matrix(rows: np.ndarray) -> np.ndarray:
    """Pack a ``(r, n)`` boolean matrix into ``(r, ceil(n/64))`` uint64 rows.

    Bit ``i`` of logical row ``k`` lands in ``out[k, i >> 6]`` at position
    ``i & 63`` (little-endian bit order).  Padding bits beyond ``n`` are
    zero, so popcounts over packed rows need no masking.
    """
    rows = np.ascontiguousarray(rows, dtype=bool)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-d boolean matrix, got ndim={rows.ndim}")
    r, n = rows.shape
    n_words = words_for(n)
    padded = n_words * WORD_BITS
    if padded != n:
        rows = np.concatenate(
            [rows, np.zeros((r, padded - n), dtype=bool)], axis=1
        )
    if n_words == 0:
        return np.zeros((r, 0), dtype=np.uint64)
    packed_bytes = np.packbits(rows, axis=1, bitorder="little")
    # Native little-endian word view: byte 8w+b of a row holds bits
    # 64w+8b .. 64w+8b+7.  (All supported platforms are little-endian.)
    return packed_bytes.view(np.uint64)


def unpack_words(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack one row of uint64 words back into an ``(n_bits,)`` bool array."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 1:
        raise ValueError(f"expected a 1-d word row, got ndim={words.ndim}")
    if n_bits == 0:
        return np.zeros(0, dtype=bool)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:n_bits].astype(bool)


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (any shape)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on NumPy < 2.0
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (any shape)."""
        words = np.ascontiguousarray(words, dtype=np.uint64)
        as_bytes = words.view(np.uint8).reshape(*words.shape, WORD_BYTES)
        return _POP8[as_bytes].sum(axis=-1, dtype=np.uint64)


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Total popcount of each row of a ``(r, w)`` packed uint64 matrix."""
    matrix = np.asarray(matrix, dtype=np.uint64)
    if matrix.shape[-1] == 0:
        return np.zeros(matrix.shape[:-1], dtype=np.int64)
    return popcount_words(matrix).sum(axis=-1, dtype=np.int64)


# ------------------------------------------------------------- int <-> bits


def int_to_bool(bits: int, n_bits: int) -> np.ndarray:
    """Expand a non-negative Python int into an ``(n_bits,)`` bool array."""
    if n_bits == 0:
        return np.zeros(0, dtype=bool)
    n_bytes = (n_bits + 7) >> 3
    raw = np.frombuffer(int(bits).to_bytes(n_bytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:n_bits].astype(bool)


def bool_to_int(flags: np.ndarray) -> int:
    """Collapse a boolean array back into a Python int (bit ``i`` = flag i)."""
    flags = np.ascontiguousarray(flags, dtype=bool)
    if flags.size == 0:
        return 0
    packed = np.packbits(flags, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def ints_to_bool_matrix(bits_seq: Sequence[int], n_bits: int) -> np.ndarray:
    """Expand a sequence of ints into a ``(len(seq), n_bits)`` bool matrix.

    One buffer build + one vectorised :func:`numpy.unpackbits`, so decoding
    a batch of contexts costs far less than per-bit Python loops.
    """
    n_rows = len(bits_seq)
    if n_rows == 0 or n_bits == 0:
        return np.zeros((n_rows, n_bits), dtype=bool)
    if n_bits <= WORD_BITS:
        # Word-sized contexts (the common case): one fromiter into a uint64
        # column, viewed as little-endian bytes — no per-int to_bytes and no
        # Python-level buffer join.
        arr = np.fromiter(
            (int(b) for b in bits_seq), dtype=np.uint64, count=n_rows
        )
        raw = arr.view(np.uint8).reshape(n_rows, WORD_BYTES)
    else:
        n_bytes = (n_bits + 7) >> 3
        buf = b"".join(int(b).to_bytes(n_bytes, "little") for b in bits_seq)
        raw = np.frombuffer(buf, dtype=np.uint8).reshape(n_rows, n_bytes)
    return np.unpackbits(raw, axis=1, bitorder="little")[:, :n_bits].astype(bool)


def bool_matrix_to_ints(rows: np.ndarray) -> list[int]:
    """Collapse each row of a ``(r, n)`` bool matrix into a Python int."""
    rows = np.ascontiguousarray(rows, dtype=bool)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-d boolean matrix, got ndim={rows.ndim}")
    if rows.shape[0] == 0:
        return []
    if rows.shape[1] == 0:
        return [0] * rows.shape[0]
    packed = np.packbits(rows, axis=1, bitorder="little")
    stride = packed.shape[1]
    if rows.shape[1] <= WORD_BITS:
        # Word-sized rows: pad each packed row to 8 bytes and read the whole
        # batch back as one uint64 column — ``.tolist()`` yields Python ints
        # without a per-row from_bytes loop.
        padded = np.zeros((rows.shape[0], WORD_BYTES), dtype=np.uint8)
        padded[:, :stride] = packed
        return padded.view(np.uint64).ravel().tolist()
    blob = packed.tobytes()
    return [
        int.from_bytes(blob[k * stride : (k + 1) * stride], "little")
        for k in range(rows.shape[0])
    ]


# --------------------------------------------------------- kernel registry


def batch_and_of_or_numpy(
    packed: np.ndarray,
    offsets: np.ndarray,
    sizes: np.ndarray,
    selection: np.ndarray,
) -> np.ndarray:
    """NumPy AND-of-OR population masks (the always-available fallback).

    ``packed`` is the ``(t, n_words)`` predicate matrix, ``offsets`` and
    ``sizes`` the per-attribute block layout, ``selection`` the ``(B, t)``
    boolean context matrix.  Returns ``(B, n_words)`` uint64 population
    masks: per predicate one fancy-indexed OR into the block accumulator,
    per attribute one AND into the result.  A block with no selected value
    leaves its accumulator all-zero, zeroing the conjunction — the
    empty-disjunction-is-unsatisfiable semantics every backend must match.
    """
    batch = selection.shape[0]
    n_words = packed.shape[1]
    result: Optional[np.ndarray] = None
    for off, size in zip(offsets, sizes):
        block_or = np.zeros((batch, n_words), dtype=np.uint64)
        for j in range(size):
            rows = selection[:, off + j]
            if rows.any():
                block_or[rows] |= packed[off + j]
        if result is None:
            result = block_or
        else:
            result &= block_or
    if result is None:  # zero attributes: empty conjunction selects all
        return np.full((batch, n_words), np.uint64(0xFFFFFFFFFFFFFFFF))
    return result


def _batch_and_of_or_counts_numpy(
    packed: np.ndarray,
    offsets: np.ndarray,
    sizes: np.ndarray,
    selection: np.ndarray,
) -> np.ndarray:
    return popcount_rows(batch_and_of_or_numpy(packed, offsets, sizes, selection))


def _intersect_counts_numpy(matrix: np.ndarray, row: np.ndarray) -> np.ndarray:
    return popcount_rows(matrix & row)


@dataclass(frozen=True)
class KernelBackend:
    """One resolved implementation of the three batch hot paths."""

    name: str
    batch_and_of_or: Callable[..., np.ndarray]
    batch_and_of_or_counts: Callable[..., np.ndarray]
    popcount_rows: Callable[[np.ndarray], np.ndarray]
    intersect_counts: Callable[[np.ndarray, np.ndarray], np.ndarray]


_FALLBACK_BACKEND = KernelBackend(
    name="fallback",
    batch_and_of_or=batch_and_of_or_numpy,
    batch_and_of_or_counts=_batch_and_of_or_counts_numpy,
    popcount_rows=popcount_rows,
    intersect_counts=_intersect_counts_numpy,
)

_kernel_lock = threading.Lock()
_active_backend: Optional[KernelBackend] = None


def native_kernels_available() -> bool:
    """Can the numba-compiled backend be used in this environment?"""
    from repro.data import _kernels

    return _kernels.NATIVE_AVAILABLE


def _native_backend() -> KernelBackend:
    from repro.data import _kernels

    if not _kernels.NATIVE_AVAILABLE:
        raise RuntimeError(
            "native kernels requested (PCOR_NATIVE=1 or "
            "set_kernel_backend('native')) but numba is not importable"
        )
    return KernelBackend(
        name="native",
        batch_and_of_or=_kernels.and_of_or,
        batch_and_of_or_counts=_kernels.and_of_or_counts,
        popcount_rows=_kernels.popcount_rows,
        intersect_counts=_kernels.intersect_counts,
    )


def set_kernel_backend(name: str) -> str:
    """Pin the kernel backend: ``"native"``, ``"fallback"`` or ``"auto"``.

    ``"auto"`` re-runs detection (``PCOR_NATIVE`` override, else native when
    numba imports, else fallback).  Returns the name of the backend now
    active.  Requesting ``"native"`` without numba raises ``RuntimeError``.
    Benches and the equivalence tests use this to time/compare both
    implementations in one process.
    """
    global _active_backend
    with _kernel_lock:
        if name == "fallback":
            _active_backend = _FALLBACK_BACKEND
        elif name == "native":
            _active_backend = _native_backend()
        elif name == "auto":
            _active_backend = _detect_backend()
        else:
            raise ValueError(
                f"unknown kernel backend {name!r}; "
                "expected 'native', 'fallback' or 'auto'"
            )
        return _active_backend.name


def _detect_backend() -> KernelBackend:
    override = os.environ.get("PCOR_NATIVE")
    if override is not None and override.strip() != "":
        if override.strip() == "0":
            return _FALLBACK_BACKEND
        if override.strip() == "1":
            return _native_backend()
        raise RuntimeError(
            f"PCOR_NATIVE={override!r} not understood; use 0 (force the "
            "NumPy fallback) or 1 (require the numba-compiled kernels)"
        )
    return _native_backend() if native_kernels_available() else _FALLBACK_BACKEND


def active_kernels() -> KernelBackend:
    """The currently selected :class:`KernelBackend` (detecting lazily).

    Detection is deferred to first use so importing :mod:`repro.bitops`
    never imports (or requires) numba, and so ``PCOR_NATIVE`` is read after
    test harnesses have had a chance to set it.
    """
    global _active_backend
    backend = _active_backend
    if backend is None:
        with _kernel_lock:
            if _active_backend is None:
                _active_backend = _detect_backend()
            backend = _active_backend
    return backend


def kernel_backend_name() -> str:
    """Name of the active kernel backend (``"native"`` or ``"fallback"``)."""
    return active_kernels().name

"""Bit-packing kernels shared by the mask index and the context space.

The batched verification engine keeps record masks as *bit-packed*
``uint64`` words instead of per-record boolean arrays: a mask over ``n``
records occupies ``ceil(n / 64)`` words, AND/OR become word-wise NumPy ops,
and population counting is a single popcount pass.  Context bitmasks (which
live as arbitrary-precision Python ints because ``t`` can exceed 64) convert
to and from boolean selection rows through the same little-endian bit
layout: bit ``i`` lives in word ``i >> 6`` at position ``i & 63``.

Everything here is pure NumPy and allocation-light; the hot batch kernels in
:mod:`repro.data.masks` are thin loops over these primitives.
"""

from __future__ import annotations

import sys
from typing import Sequence

import numpy as np

if sys.byteorder != "little":  # pragma: no cover - exotic platforms only
    raise ImportError(
        "repro.bitops packs masks by viewing little-endian byte buffers as "
        "uint64 words; big-endian hosts would silently scramble record bits"
    )

#: Bits per packed word.
WORD_BITS = 64

#: Bytes per packed word.
WORD_BYTES = 8


def words_for(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    return (int(n_bits) + WORD_BITS - 1) >> 6


def pack_bool_matrix(rows: np.ndarray) -> np.ndarray:
    """Pack a ``(r, n)`` boolean matrix into ``(r, ceil(n/64))`` uint64 rows.

    Bit ``i`` of logical row ``k`` lands in ``out[k, i >> 6]`` at position
    ``i & 63`` (little-endian bit order).  Padding bits beyond ``n`` are
    zero, so popcounts over packed rows need no masking.
    """
    rows = np.ascontiguousarray(rows, dtype=bool)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-d boolean matrix, got ndim={rows.ndim}")
    r, n = rows.shape
    n_words = words_for(n)
    padded = n_words * WORD_BITS
    if padded != n:
        rows = np.concatenate(
            [rows, np.zeros((r, padded - n), dtype=bool)], axis=1
        )
    if n_words == 0:
        return np.zeros((r, 0), dtype=np.uint64)
    packed_bytes = np.packbits(rows, axis=1, bitorder="little")
    # Native little-endian word view: byte 8w+b of a row holds bits
    # 64w+8b .. 64w+8b+7.  (All supported platforms are little-endian.)
    return packed_bytes.view(np.uint64)


def unpack_words(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack one row of uint64 words back into an ``(n_bits,)`` bool array."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 1:
        raise ValueError(f"expected a 1-d word row, got ndim={words.ndim}")
    if n_bits == 0:
        return np.zeros(0, dtype=bool)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:n_bits].astype(bool)


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (any shape)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on NumPy < 2.0
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (any shape)."""
        words = np.ascontiguousarray(words, dtype=np.uint64)
        as_bytes = words.view(np.uint8).reshape(*words.shape, WORD_BYTES)
        return _POP8[as_bytes].sum(axis=-1, dtype=np.uint64)


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Total popcount of each row of a ``(r, w)`` packed uint64 matrix."""
    matrix = np.asarray(matrix, dtype=np.uint64)
    if matrix.shape[-1] == 0:
        return np.zeros(matrix.shape[:-1], dtype=np.int64)
    return popcount_words(matrix).sum(axis=-1, dtype=np.int64)


# ------------------------------------------------------------- int <-> bits


def int_to_bool(bits: int, n_bits: int) -> np.ndarray:
    """Expand a non-negative Python int into an ``(n_bits,)`` bool array."""
    if n_bits == 0:
        return np.zeros(0, dtype=bool)
    n_bytes = (n_bits + 7) >> 3
    raw = np.frombuffer(int(bits).to_bytes(n_bytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:n_bits].astype(bool)


def bool_to_int(flags: np.ndarray) -> int:
    """Collapse a boolean array back into a Python int (bit ``i`` = flag i)."""
    flags = np.ascontiguousarray(flags, dtype=bool)
    if flags.size == 0:
        return 0
    packed = np.packbits(flags, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def ints_to_bool_matrix(bits_seq: Sequence[int], n_bits: int) -> np.ndarray:
    """Expand a sequence of ints into a ``(len(seq), n_bits)`` bool matrix.

    One buffer build + one vectorised :func:`numpy.unpackbits`, so decoding
    a batch of contexts costs far less than per-bit Python loops.
    """
    n_rows = len(bits_seq)
    if n_rows == 0 or n_bits == 0:
        return np.zeros((n_rows, n_bits), dtype=bool)
    n_bytes = (n_bits + 7) >> 3
    buf = b"".join(int(b).to_bytes(n_bytes, "little") for b in bits_seq)
    raw = np.frombuffer(buf, dtype=np.uint8).reshape(n_rows, n_bytes)
    return np.unpackbits(raw, axis=1, bitorder="little")[:, :n_bits].astype(bool)


def bool_matrix_to_ints(rows: np.ndarray) -> list[int]:
    """Collapse each row of a ``(r, n)`` bool matrix into a Python int."""
    rows = np.ascontiguousarray(rows, dtype=bool)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-d boolean matrix, got ndim={rows.ndim}")
    if rows.shape[0] == 0:
        return []
    if rows.shape[1] == 0:
        return [0] * rows.shape[0]
    packed = np.packbits(rows, axis=1, bitorder="little")
    stride = packed.shape[1]
    blob = packed.tobytes()
    return [
        int.from_bytes(blob[k * stride : (k + 1) * stride], "little")
        for k in range(rows.shape[0])
    ]

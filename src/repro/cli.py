"""Command-line interface: ``pcor`` (or ``python -m repro``).

Subcommands
-----------
* ``release``       — run one private context release end to end
  (``--spec file.json|file.toml`` runs a declarative pipeline spec;
  ``--json`` emits the result as JSON).
* ``serve``         — host datasets over HTTP (the multi-tenant release
  service: per-analyst budgets, durable ledgers; see
  ``src/repro/server/``).  With ``--workers N`` (or a ``[cluster]``
  config section) it becomes a sharded deployment: a thin router plus N
  release-worker processes (``src/repro/cluster/``).
* ``worker``        — internal: one cluster release worker, spawned by
  the ``serve`` supervisor.
* ``specs``         — list the registered detectors, samplers and utilities.
* ``bench``         — run the registered benchmarks (``benchmarks/``) and
  emit normalized JSON telemetry (``BENCH_*.json`` + ``trajectory.jsonl``),
  compared against the committed baselines.
* ``table N``       — regenerate paper Table N (2-13).
* ``figure N``      — regenerate paper Figure N (1-5) as ASCII histograms.
* ``privacy-ratio`` — the Section 6.7 (ii) empirical privacy measurement.
* ``locality``      — the Section 5.2 locality-hypothesis measurement.
* ``generate-data`` — write a synthetic dataset to CSV.
* ``build-reference`` — build and save a reference file (Section 6.2).

Detector/sampler/utility choice lists are registry queries, so anything a
plugin registers (``register_detector`` / ``register_sampler`` /
``register_utility``) is releasable from the CLI without touching this file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.context.space import DEFAULT_ENUMERATION_LIMIT, ContextSpace
from repro.core.reference import ReferenceFile
from repro.core.sampling import available_samplers, sampler_info
from repro.core.starting import find_starting_context, starting_context_from_reference
from repro.core.utility import available_utilities, utility_info
from repro.core.verification import OutlierVerifier
from repro.data.csvio import write_csv
from repro.exceptions import ReproError
from repro.experiments.coe_match import table_12, table_13
from repro.experiments.config import SCALES
from repro.experiments.figures import FIGURE_RUNNERS
from repro.experiments.harness import DATASET_FACTORIES, Workbench
from repro.experiments.locality import locality_experiment, locality_table
from repro.experiments.privacy_ratio import privacy_ratio_experiment
from repro.experiments.tables import DETECTOR_KWARGS, TABLE_RUNNERS
from repro.obs.logs import LOG_FORMATS
from repro.outliers.base import available_detectors, make_detector
from repro.runtime import available_backends
from repro.server import PCORServer, ServerConfig
from repro.service import PipelineSpec, ReleaseEngine, ReleaseRequest


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pcor",
        description="PCOR: private contextual outlier release (SIGMOD 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", choices=sorted(SCALES), default="small")
        p.add_argument("--seed", type=int, default=0)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("table_id", choices=sorted(TABLE_RUNNERS) + ["12", "13"])
    add_common(p_table)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure (ASCII)")
    p_fig.add_argument("figure_id", choices=sorted(FIGURE_RUNNERS))
    add_common(p_fig)

    p_priv = sub.add_parser("privacy-ratio", help="Section 6.7(ii) measurement")
    add_common(p_priv)
    p_priv.add_argument("--epsilon", type=float, default=0.2)

    p_loc = sub.add_parser("locality", help="Section 5.2 locality measurement")
    add_common(p_loc)

    p_coe = sub.add_parser(
        "analyze-coe", help="COE connectivity analysis (sampler utility ceilings)"
    )
    p_coe.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="salary_reduced")
    p_coe.add_argument("--records", type=int, default=2000)
    p_coe.add_argument("--detector", choices=available_detectors(), default="lof")
    p_coe.add_argument("--outliers", type=int, default=20)
    p_coe.add_argument("--seed", type=int, default=0)

    p_rel = sub.add_parser("release", help="run one private context release")
    p_rel.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="salary_reduced")
    p_rel.add_argument("--records", type=int, default=2000)
    p_rel.add_argument("--detector", choices=available_detectors(), default="lof")
    p_rel.add_argument("--sampler", choices=available_samplers(), default="bfs")
    p_rel.add_argument("--utility", choices=available_utilities(), default="population_size")
    p_rel.add_argument("--epsilon", type=float, default=0.2)
    p_rel.add_argument("--samples", type=int, default=50)
    p_rel.add_argument("--record-id", type=int, default=None, help="outlier record to explain (default: auto-pick)")
    p_rel.add_argument("--seed", type=int, default=0)
    p_rel.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="pipeline spec file (.json/.toml); overrides --detector/--sampler/"
        "--utility/--epsilon/--samples",
    )
    p_rel.add_argument(
        "--json", action="store_true", help="emit the release result as JSON"
    )
    p_rel.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="execution backend (default: PCOR_BACKEND env or serial; "
        "releases are bit-identical across backends for a given seed)",
    )
    p_rel.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the execution backend; N>1 without "
        "--backend implies --backend process",
    )

    p_srv = sub.add_parser(
        "serve", help="host datasets over HTTP (multi-tenant release service)"
    )
    p_srv.add_argument(
        "--config",
        required=True,
        metavar="FILE",
        help="server config (.json/.toml): datasets, budgets, ledger policy",
    )
    p_srv.add_argument(
        "--host", default=None, help="bind address override (default: config)"
    )
    p_srv.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port override (0 picks an ephemeral port, printed on start)",
    )
    p_srv.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="sharded serving: run a router plus N release workers "
        "(overrides [cluster] workers; 0 forces single-process)",
    )
    p_srv.add_argument(
        "--log-format",
        choices=sorted(LOG_FORMATS),
        default=None,
        help="structured log format (overrides [observability] log_format; "
        "'json' emits one JSON line per request/flush/heartbeat event)",
    )

    p_wrk = sub.add_parser(
        "worker",
        help="(internal) run one cluster release worker — spawned by "
        "'pcor serve --workers N', not meant to be run by hand",
    )
    p_wrk.add_argument("--config", required=True, metavar="FILE")
    p_wrk.add_argument("--shard", required=True, type=int)
    p_wrk.add_argument("--router", required=True, metavar="URL")
    p_wrk.add_argument("--worker-id", required=True)
    p_wrk.add_argument(
        "--log-format", choices=sorted(LOG_FORMATS), default=None
    )

    sub.add_parser(
        "specs", help="list registered detectors, samplers and utilities"
    )

    p_bench = sub.add_parser(
        "bench",
        help="run benchmarks and emit normalized JSON telemetry "
        "(benchmarks/results/BENCH_*.json, compared against "
        "benchmarks/baselines/)",
    )
    p_bench.add_argument(
        "benches",
        nargs="*",
        metavar="BENCH",
        help="benchmark names to run (default: all; see --list)",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="only the per-commit CI subset (the cheap benches)",
    )
    p_bench.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on baseline regressions too, not just on "
        "failed runs / malformed telemetry",
    )
    p_bench.add_argument(
        "--bench-scale",
        choices=("smoke", "small", "medium", "paper"),
        default=None,
        dest="bench_scale",
        help="workload scale passed to the bench scripts as "
        "PCOR_BENCH_SCALE (default: inherit the environment)",
    )
    p_bench.add_argument(
        "--list", action="store_true", help="list registered benchmarks and exit"
    )

    p_gen = sub.add_parser("generate-data", help="write a synthetic dataset to CSV")
    p_gen.add_argument("dataset", choices=sorted(DATASET_FACTORIES))
    p_gen.add_argument("--records", type=int, default=10_000)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True)

    p_ref = sub.add_parser("build-reference", help="build and save a reference file")
    p_ref.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="salary_reduced")
    p_ref.add_argument("--records", type=int, default=2000)
    p_ref.add_argument("--detector", choices=available_detectors(), default="lof")
    p_ref.add_argument("--seed", type=int, default=0)
    p_ref.add_argument("--out", required=True)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "table":
        if args.table_id == "12":
            print(table_12(args.scale, args.seed).render())
        elif args.table_id == "13":
            print(table_13(args.scale, args.seed).render())
        else:
            perf, util = TABLE_RUNNERS[args.table_id](args.scale, args.seed)
            wanted = perf if perf.table_id == args.table_id else util
            print(wanted.render())
        return 0

    if args.command == "figure":
        print(FIGURE_RUNNERS[args.figure_id](args.scale, args.seed).render())
        return 0

    if args.command == "privacy-ratio":
        result = privacy_ratio_experiment(args.scale, args.seed, epsilon=args.epsilon)
        print(result.to_table().render())
        return 0

    if args.command == "locality":
        results = locality_experiment(args.scale, args.seed)
        print(locality_table(results).render())
        return 0

    if args.command == "analyze-coe":
        from repro.analysis.coe_structure import coe_structure_report

        bench = Workbench.get(
            args.dataset, args.records, args.seed, args.detector,
            DETECTOR_KWARGS.get(args.detector, {}),
        )
        rids = bench.pick_outliers(args.outliers, args.seed, min_matching_contexts=2)
        report = coe_structure_report(bench.reference, rids)
        print(f"COE structure over {int(report['n_records'])} outliers "
              f"({args.dataset}, n={args.records}, {args.detector}):")
        print(f"  mean COE size          : {report['mean_coe_size']:.1f} contexts")
        print(f"  connected fraction     : {report['connected_fraction']:.0%}")
        print(f"  mean components        : {report['mean_components']:.2f}")
        print(f"  max-component coverage : {report['mean_coverage']:.0%}")
        print(f"  sampler utility ceiling: {report['mean_ceiling_ratio']:.2f} "
              "(structural bound for uniform starting contexts)")
        print(f"  mean distance to best  : {report['mean_distance_to_best']:.1f} flips")
        return 0

    if args.command == "release":
        return _run_release(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "worker":
        return _run_worker(args)

    if args.command == "specs":
        return _run_specs()

    if args.command == "bench":
        return _run_bench(args)

    if args.command == "generate-data":
        dataset = DATASET_FACTORIES[args.dataset](n_records=args.records, seed=args.seed)
        write_csv(dataset, args.out)
        print(f"wrote {len(dataset)} records to {args.out}")
        return 0

    if args.command == "build-reference":
        dataset = DATASET_FACTORIES[args.dataset](n_records=args.records, seed=args.seed)
        detector = make_detector(args.detector, **DETECTOR_KWARGS.get(args.detector, {}))
        reference = ReferenceFile.build(OutlierVerifier(dataset, detector))
        reference.to_json(args.out)
        print(
            f"built reference over {len(reference)} contexts "
            f"({len(reference.outlier_records())} outlier records) -> {args.out}"
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _release_spec(args: argparse.Namespace) -> PipelineSpec:
    """The pipeline to run: a spec file if given, else the CLI flags."""
    if args.spec is not None:
        return PipelineSpec.from_file(args.spec)
    return PipelineSpec(
        detector=args.detector,
        detector_kwargs=DETECTOR_KWARGS.get(args.detector, {}),
        sampler=args.sampler,
        utility=args.utility,
        epsilon=args.epsilon,
        n_samples=args.samples,
    )


def _emit_result(args: argparse.Namespace, result) -> None:
    if args.json:
        print(result.to_json(indent=2))
    else:
        print(result.describe())


def _release_backend(args: argparse.Namespace):
    """(backend, workers) for the release engine; ``--workers N`` with N>1
    and no ``--backend`` implies the process backend."""
    backend = args.backend
    if backend is None and args.workers is not None and args.workers > 1:
        backend = "process"
    return backend, args.workers


def _run_release(args: argparse.Namespace) -> int:
    spec = _release_spec(args)
    dataset = DATASET_FACTORIES[args.dataset](n_records=args.records, seed=args.seed)
    space = ContextSpace(dataset.schema)

    if space.n_structurally_valid > DEFAULT_ENUMERATION_LIMIT:
        # Full-schema datasets (e.g. salary_full, t=25) are exactly the
        # regime PCOR exists for: no reference file is computable, so we
        # release via local search + sampling only.
        return _run_release_without_reference(args, dataset, spec)

    bench = Workbench.get(
        args.dataset, args.records, args.seed, spec.detector, spec.detector_kwargs
    )
    record_id = args.record_id
    if record_id is None:
        record_id = bench.pick_outliers(1, args.seed)[0]
        print(f"auto-picked outlier record {record_id}")
    starting = starting_context_from_reference(bench.reference, record_id, args.seed)
    backend, workers = _release_backend(args)
    engine = ReleaseEngine(bench.dataset, backend=backend, workers=workers)
    engine.adopt_verifier(bench.fresh_verifier())
    result = engine.submit(
        ReleaseRequest(
            record_id=record_id, spec=spec, starting_context=starting, seed=args.seed
        )
    )
    _emit_result(args, result)
    max_util = bench.reference.max_population_utility(record_id)
    if not args.json and spec.utility == "population_size" and max_util > 0:
        print(f"  utility ratio    : {result.utility_value / max_util:.3f} of maximum")
    return 0


def _run_release_without_reference(args, dataset, spec: PipelineSpec) -> int:
    """Release against a context space too large to enumerate (paper scale)."""
    import numpy as np

    backend, workers = _release_backend(args)
    engine = ReleaseEngine(dataset, backend=backend, workers=workers)
    verifier = engine.verifier_for(spec.build_detector())
    rng = np.random.default_rng(args.seed)
    print(
        f"context space has {ContextSpace(dataset.schema).n_structurally_valid:,} "
        "valid contexts - releasing without a reference file"
    )

    record_id = args.record_id
    starting = None
    if record_id is None:
        # Scan random records until one has a findable matching context.
        for candidate in rng.permutation(len(dataset))[:500]:
            rid = int(dataset.ids[int(candidate)])
            try:
                starting = find_starting_context(verifier, rid, rng, max_steps=500)
                record_id = rid
                break
            except ReproError:
                continue
        if record_id is None:
            print("error: no contextual outlier found in 500 sampled records", file=sys.stderr)
            return 1
        print(f"auto-picked outlier record {record_id}")
    result = engine.submit(
        ReleaseRequest(
            record_id=record_id, spec=spec, starting_context=starting, seed=rng
        )
    )
    _emit_result(args, result)
    return 0


def _apply_observability(config, log_format):
    """Resolve the effective ``[observability]`` section (a ``--log-format``
    override wins over the file) and configure this process's structured
    logging to match.  Returns the possibly-rewritten config — cluster
    callers must re-serialize it for workers when it changed."""
    import dataclasses

    from repro.obs.logs import configure_logging
    from repro.server import ObservabilityConfig

    obs = config.observability or ObservabilityConfig()
    if log_format is not None and log_format != obs.log_format:
        obs = dataclasses.replace(obs, log_format=log_format)
        config = dataclasses.replace(config, observability=obs)
    configure_logging(obs.log_format)
    return config


def _announce(config, message: str, event: str, **fields) -> None:
    """Serve-lifecycle banners: a human line in text mode, a structured
    event in json mode — piped stdout stays one parseable object per
    line either way."""
    import logging

    from repro.obs.logs import log_event
    from repro.server import ObservabilityConfig

    obs = config.observability or ObservabilityConfig()
    if obs.log_format == "json":
        log_event(logging.getLogger("repro.cli"), event, **fields)
    else:
        print(message, flush=True)


def _run_serve(args: argparse.Namespace) -> int:
    """Host the release service until SIGINT/SIGTERM — single-process, or
    (with ``--workers N`` / ``[cluster] workers``) a router + worker fleet."""
    import signal

    config = ServerConfig.from_file(args.config)
    config_path = args.config
    if args.workers is not None:
        # CLI override rewrites the cluster section; the effective config
        # no longer matches the file, so workers must get a fresh copy
        # (the process manager serialises it) — shard assignment depends
        # on the worker count both sides read.
        import dataclasses

        from repro.server import ClusterConfig

        if args.workers > 0:
            base = config.cluster.to_dict() if config.cluster else {}
            base["workers"] = args.workers
            cluster = ClusterConfig(**base)
        else:
            cluster = None
        config = dataclasses.replace(config, cluster=cluster)
        config_path = None
    config = _apply_observability(config, args.log_format)
    if args.log_format is not None:
        # The effective config no longer matches the file; workers must
        # inherit the rewritten [observability] via a serialized copy.
        config_path = None

    if config.cluster is not None and config.cluster.workers >= 1:
        return _serve_cluster(args, config, config_path)
    server = PCORServer(config, host=args.host, port=args.port)

    def _stop(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    _announce(
        config,
        f"pcor server listening on {server.url} "
        f"(datasets: {', '.join(server.registry.names())}; "
        f"ledger: {config.ledger})",
        "serve_start",
        url=server.url,
        datasets=server.registry.names(),
        ledger=config.ledger,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        _announce(
            config, "pcor server stopped; ledgers closed", "serve_stop"
        )
    return 0


def _serve_cluster(args: argparse.Namespace, config, config_path) -> int:
    """Router + fleet serving (``pcor serve --workers N``)."""
    import signal

    from repro.cluster import PCORRouter

    router = PCORRouter(
        config, host=args.host, port=args.port, config_path=config_path
    )

    def _stop(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    _announce(
        config,
        f"pcor router listening on {router.url} "
        f"(workers: {config.cluster.workers}, manager: {config.cluster.manager}; "
        f"datasets: {', '.join(sorted(config.datasets))}; "
        f"ledger: {config.ledger})",
        "serve_start",
        url=router.url,
        workers=config.cluster.workers,
        manager=config.cluster.manager,
        datasets=sorted(config.datasets),
        ledger=config.ledger,
    )
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.shutdown()
        _announce(
            config, "pcor router stopped; fleet terminated", "serve_stop"
        )
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    """One cluster release worker (spawned by the fleet supervisor)."""
    from repro.cluster import ReleaseWorker

    config = ServerConfig.from_file(args.config)
    config = _apply_observability(config, args.log_format)
    worker = ReleaseWorker(
        config,
        shard=args.shard,
        router_url=args.router,
        worker_id=args.worker_id,
    )
    return worker.run()


def load_bench_harness():
    """Load ``benchmarks/harness.py`` by file location.

    ``benchmarks/`` is deliberately not a package (the scripts are pytest
    files), so the harness is imported from its path relative to the
    installed ``repro`` tree — works from a checkout without any
    install-time data files.
    """
    import importlib.util

    from pathlib import Path

    import repro

    path = Path(repro.__file__).resolve().parents[2] / "benchmarks" / "harness.py"
    if not path.is_file():
        raise ReproError(
            f"benchmark harness not found at {path} — 'pcor bench' needs a "
            "source checkout with the benchmarks/ directory"
        )
    cached = sys.modules.get("pcor_bench_harness")
    if cached is not None and getattr(cached, "__file__", None) == str(path):
        return cached
    spec = importlib.util.spec_from_file_location("pcor_bench_harness", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["pcor_bench_harness"] = module
    spec.loader.exec_module(module)
    return module


def _run_bench(args: argparse.Namespace) -> int:
    """Registry-driven benchmark runner with JSON telemetry (``pcor bench``)."""
    harness = load_bench_harness()

    if args.list:
        for name in sorted(harness.BENCHES):
            spec = harness.BENCHES[name]
            tier = "quick" if spec.get("quick") else "full "
            print(f"  {name:<20s} [{tier}] emits: {', '.join(spec['emits'])}")
        return 0

    try:
        report = harness.run_benchmarks(
            names=args.benches or None,
            quick=args.quick,
            scale=args.bench_scale,
        )
    except ValueError as exc:  # unknown bench name
        raise ReproError(str(exc)) from None
    print(harness.render_report(report))
    if report["documents"]:
        trajectory = harness.append_trajectory(report["documents"].values())
        print(
            f"  telemetry: {len(report['documents'])} document(s) in "
            f"{harness.RESULTS_DIR}, trajectory appended to {trajectory}"
        )

    failed_runs = [r["bench"] for r in report["runs"] if r["returncode"] != 0]
    if failed_runs:
        print(f"error: benchmark run(s) failed: {', '.join(failed_runs)}", file=sys.stderr)
        return 1
    if report["problems"]:
        print("error: malformed/missing benchmark telemetry", file=sys.stderr)
        return 1
    if args.strict and report["regressions"]:
        print("error: baseline regressions under --strict", file=sys.stderr)
        return 1
    return 0


def _run_specs() -> int:
    """List every registered detector, sampler and utility."""
    print("detectors:")
    for name in available_detectors():
        print(f"  {name}")
    print("samplers:")
    for name in available_samplers():
        info = sampler_info(name)
        needs = "starting context" if info.requires_starting_context else "start-free"
        print(f"  {name} (accounting={info.accounting_name}, {needs})")
    print("utilities:")
    for name in available_utilities():
        info = utility_info(name)
        needs = "starting context" if info.needs_starting_context else "start-free"
        print(f"  {name} ({needs})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""PCOR: Private Contextual Outlier Release via Differentially Private Search.

A full reproduction of Shafieinejad, Kerschbaum & Ilyas (SIGMOD 2021):
release a context in which a queried record is an outlier, under
Output-Constrained Differential Privacy, in polynomial time, via
differentially private graph search.

Quickstart
----------
>>> from repro import PCOR, BFSSampler, LOFDetector, salary_reduced
>>> dataset = salary_reduced(n_records=2000, seed=7)
>>> pcor = PCOR(dataset, LOFDetector(k=10), epsilon=0.2,
...             sampler=BFSSampler(n_samples=50))

See ``examples/quickstart.py`` for a runnable end-to-end walk-through.
"""

from repro.analysis import COEStructure, ReleaseSession, analyze_coe, coe_structure_report
from repro.context import Context, ContextGraph, ContextSpace
from repro.core import (
    BFSSampler,
    COEEnumerator,
    DFSSampler,
    DirectPCOR,
    OutlierVerifier,
    OverlapUtility,
    PCOR,
    PCORResult,
    PopulationSizeUtility,
    ProfileStore,
    RandomWalkSampler,
    ReferenceFile,
    Sampler,
    SamplerInfo,
    SparsityUtility,
    StartingDistanceUtility,
    UniformSampler,
    UtilityFunction,
    UtilityInfo,
    available_samplers,
    available_utilities,
    find_starting_context,
    make_sampler,
    make_utility,
    register_sampler,
    register_utility,
    sampler_info,
    starting_context_from_reference,
    utility_info,
    utility_needs_starting_context,
)
from repro.runtime import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.service import EngineMetrics, PipelineSpec, ReleaseEngine, ReleaseRequest
from repro.data import (
    BinSpec,
    Dataset,
    bin_numeric_column,
    PredicateMaskIndex,
    homicide_reduced,
    salary_reduced,
    synthetic_homicide_dataset,
    synthetic_salary_dataset,
    tiny_income_dataset,
)
from repro.exceptions import (
    ContextError,
    DatasetError,
    EnumerationError,
    ExecutionError,
    ExperimentError,
    LedgerError,
    MechanismError,
    PrivacyBudgetError,
    ReproError,
    SamplingError,
    SchemaError,
    ServerError,
    SpecError,
    VerificationError,
)
from repro.mechanisms import (
    ExponentialMechanism,
    FNeighborChecker,
    LaplaceMechanism,
    PrivacyAccountant,
    epsilon_one_for,
    total_epsilon_for,
)
from repro.outliers import (
    GrubbsDetector,
    HistogramDetector,
    IQRDetector,
    LOFDetector,
    OutlierDetector,
    ZScoreDetector,
    available_detectors,
    make_detector,
)
from repro.schema import CategoricalAttribute, MetricAttribute, Predicate, Schema

__version__ = "1.0.0"

# Imported after __version__: the server's HTTP handler advertises it, so
# this import must come last to stay cycle-free.
from repro.server import (  # noqa: E402
    DatasetConfig,
    DatasetRegistry,
    InMemoryLedgerStore,
    JsonlLedgerStore,
    LedgerStore,
    PCORClient,
    PCORServer,
    ServerConfig,
    TenantBudgets,
)
from repro.cluster import PCORRouter  # noqa: E402  (imports repro.server)

__all__ = [
    # schema
    "Schema",
    "CategoricalAttribute",
    "MetricAttribute",
    "Predicate",
    # data
    "Dataset",
    "BinSpec",
    "bin_numeric_column",
    "PredicateMaskIndex",
    "synthetic_salary_dataset",
    "synthetic_homicide_dataset",
    "salary_reduced",
    "homicide_reduced",
    "tiny_income_dataset",
    # context
    "Context",
    "ContextSpace",
    "ContextGraph",
    # outliers
    "OutlierDetector",
    "GrubbsDetector",
    "HistogramDetector",
    "LOFDetector",
    "ZScoreDetector",
    "IQRDetector",
    "make_detector",
    "available_detectors",
    # service layer
    "PipelineSpec",
    "ReleaseRequest",
    "ReleaseEngine",
    "EngineMetrics",
    "SamplerInfo",
    "UtilityInfo",
    "available_samplers",
    "available_utilities",
    "make_sampler",
    "make_utility",
    "register_sampler",
    "register_utility",
    "sampler_info",
    "utility_info",
    "utility_needs_starting_context",
    # server (multi-tenant HTTP release service)
    "PCORServer",
    "PCORClient",
    "PCORRouter",
    "ServerConfig",
    "DatasetConfig",
    "DatasetRegistry",
    "TenantBudgets",
    "LedgerStore",
    "InMemoryLedgerStore",
    "JsonlLedgerStore",
    # execution runtime
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    # mechanisms
    "ExponentialMechanism",
    "LaplaceMechanism",
    "PrivacyAccountant",
    "FNeighborChecker",
    "epsilon_one_for",
    "total_epsilon_for",
    # core
    "PCOR",
    "PCORResult",
    "DirectPCOR",
    "OutlierVerifier",
    "ProfileStore",
    "COEEnumerator",
    "ReferenceFile",
    "UtilityFunction",
    "PopulationSizeUtility",
    "OverlapUtility",
    "SparsityUtility",
    "StartingDistanceUtility",
    "Sampler",
    "UniformSampler",
    "RandomWalkSampler",
    "DFSSampler",
    "BFSSampler",
    "find_starting_context",
    "starting_context_from_reference",
    # analysis
    "COEStructure",
    "analyze_coe",
    "coe_structure_report",
    "ReleaseSession",
    # exceptions
    "ReproError",
    "SchemaError",
    "DatasetError",
    "ContextError",
    "SpecError",
    "ExecutionError",
    "LedgerError",
    "ServerError",
    "PrivacyBudgetError",
    "MechanismError",
    "SamplingError",
    "VerificationError",
    "EnumerationError",
    "ExperimentError",
    "__version__",
]
